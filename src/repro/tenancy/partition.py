"""Tenant-aware partitioning of the hugepage sample cache.

Each tenant with ``cache_share > 0`` gets a chunk quota on the node's
hugepage pool (tracked in a :class:`~repro.hw.memory.ChunkLedger`).
Before the reactor promotes a fetch, the partition decides whether the
owning tenant may take the chunks; a tenant at quota may reclaim its
*own* clean (unreferenced, resident) slots — never another tenant's —
so one tenant's working set cannot squeeze a neighbor below its share.

Progress guarantee: a span larger than the whole quota is still admitted
when the tenant holds nothing else (``charged == 0``), so an oversized
sample degrades to uncached streaming instead of wedging the job.
"""

from __future__ import annotations

from typing import Optional

from ..hw.memory import ChunkLedger, chunk_quotas

__all__ = ["CachePartition"]


class CachePartition:
    """Quota gate between the fair scheduler and the sample cache."""

    def __init__(self, specs: tuple) -> None:
        self.ledger = ChunkLedger()
        self._shares: dict[str, float] = {}
        for spec in specs:
            if spec.cache_share > 0.0:
                self._shares[spec.name] = spec.cache_share
        self.cache = None
        #: key -> (tenant, chunks) for every charged slot or reservation.
        self._owner: dict[object, tuple[str, int]] = {}
        self.reclaims = 0
        self.denials = 0

    @property
    def enabled(self) -> bool:
        return bool(self._shares)

    def attach(self, cache: object, num_chunks: int) -> None:
        """Bind to a client's sample cache and fix absolute quotas.

        Raises :class:`~repro.errors.ConfigError` when the summed quotas
        (each floored, minimum one chunk) oversubscribe the pool.
        """
        self.cache = cache
        cache.on_free = self.on_free
        for name, quota in chunk_quotas(num_chunks, self._shares).items():
            self.ledger.set_quota(name, quota)

    # -- admission ------------------------------------------------------------
    def _reclaimable(self, tenant: str) -> int:
        """Chunks the tenant could free by evicting its own clean slots."""
        total = 0
        for key in self.cache.clean_keys():
            owner = self._owner.get(key)
            if owner is not None and owner[0] == tenant:
                total += owner[1]
        return total

    def can_admit(self, tenant: Optional[str], need: int) -> bool:
        """Pure check (no side effects) used as the scheduler's fetch gate."""
        if self.cache is None or tenant is None:
            return True
        quota = self.ledger.quota(tenant)
        if quota <= 0:
            return True
        used = self.ledger.used(tenant)
        if used + need <= quota:
            return True
        residual = used - self._reclaimable(tenant)
        if residual + need <= quota:
            return True
        if residual == 0 and need > quota:
            # Oversized span: admit solo rather than wedge the tenant.
            return True
        self.denials += 1
        return False

    def reserve(self, tenant: Optional[str], key: object, need: int) -> None:
        """Charge a fetch about to be promoted, reclaiming if at quota.

        Must be preceded by a true ``can_admit`` in the same pump step;
        eviction here frees pool chunks so the cache's ``try_insert``
        finds room.
        """
        if tenant is None:
            return
        quota = self.ledger.quota(tenant)
        if quota > 0:
            limit = max(quota, need)  # the oversized-span escape hatch
            while self.ledger.used(tenant) + need > limit:
                victim = None
                for ck in self.cache.clean_keys():
                    owner = self._owner.get(ck)
                    if owner is not None and owner[0] == tenant:
                        victim = ck
                        break
                if victim is None:
                    break
                self.reclaims += 1
                self.cache.evict(victim)  # on_free uncharges the ledger
        self._owner[key] = (tenant, need)
        self.ledger.charge(tenant, need)

    def cancel(self, key: object) -> None:
        """Undo a reservation whose cache insert failed (global pressure)."""
        owner = self._owner.pop(key, None)
        if owner is not None:
            self.ledger.uncharge(owner[0], owner[1])

    # -- cache hook -----------------------------------------------------------
    def on_free(self, key: object) -> None:
        """Slot chunks returned to the pool (evicted or discarded)."""
        owner = self._owner.pop(key, None)
        if owner is not None:
            self.ledger.uncharge(owner[0], owner[1])

    def usage(self) -> dict[str, dict[str, int]]:
        return self.ledger.as_dict()

    def __repr__(self) -> str:
        return f"<CachePartition shares={len(self._shares)} charged={len(self._owner)}>"
