"""Multi-tenant serving over the DLFS datapath.

Layers (all pay-for-use — with no tenants configured, none of this is
constructed and the single-job datapath is bit-identical):

* :mod:`~repro.tenancy.admission` — per-tenant token buckets with
  deferred admission and bounded queues;
* :mod:`~repro.tenancy.scheduler` — start-time fair queueing over the
  reactor's posting queues, priority classes with bounded bypass,
  per-tenant qpair-depth shares;
* :mod:`~repro.tenancy.partition` — hugepage sample-cache quotas with
  self-only reclaim;
* :mod:`~repro.tenancy.slo` — per-tenant latency/throughput metrics and
  SLO-violation counters on the metrics registry;
* :mod:`~repro.tenancy.traffic` — the seeded open-/closed-loop traffic
  engine.

:class:`TenantRuntime` is the umbrella object a
:class:`~repro.core.api.DLFSClient` builds from
``DLFSConfig.tenants`` and hands to its reactor.
"""

from __future__ import annotations

from typing import Optional

from .admission import AdmissionController, TokenBucket
from .partition import CachePartition
from .scheduler import FairScheduler, TenantSpec
from .slo import TenantAccounting
from .traffic import TenantWorkload, TrafficEngine

__all__ = [
    "TenantRuntime",
    "TenantSpec",
    "TenantWorkload",
    "TrafficEngine",
    "FairScheduler",
    "AdmissionController",
    "TokenBucket",
    "CachePartition",
    "TenantAccounting",
]


class TenantRuntime:
    """Admission + scheduling + partitioning + accounting for one client."""

    def __init__(
        self,
        env,
        specs: tuple,
        queue_depth: int,
        registry=None,
        max_bypass: int = 8,
    ) -> None:
        self.env = env
        self.specs = tuple(specs)
        self.scheduler = FairScheduler(self.specs, queue_depth, max_bypass)
        self.partition = CachePartition(self.specs)
        self.accounting = TenantAccounting(env, self.specs, registry=registry)
        self.admission: Optional[AdmissionController] = None
        self.reactor = None

    def attach(self, reactor) -> None:
        """Called by the reactor's constructor: splice into its queues."""
        self.reactor = reactor
        self.scheduler.attach(reactor)
        cache = reactor.cache
        self.partition.attach(cache, cache.pool.num_chunks)
        self.scheduler.fetch_gate = self._gate
        self.admission = AdmissionController(
            self.env, self.specs, reactor.submit, accounting=self.accounting
        )

    def _gate(self, tenant: str, fetch) -> bool:
        need = self.reactor.cache.chunks_needed(fetch.nbytes)
        return self.partition.can_admit(tenant, need)

    def submit(self, job) -> bool:
        """Admission-controlled job submission; False on rejection."""
        if self.admission is None:
            raise RuntimeError("TenantRuntime is not attached to a reactor")
        return self.admission.submit_job(job)

    def spec(self, name: str) -> Optional[TenantSpec]:
        for s in self.specs:
            if s.name == name:
                return s
        return None

    def __repr__(self) -> str:
        return f"<TenantRuntime tenants={len(self.specs)}>"
