"""Open-loop traffic engine: seeded multi-tenant workload generation.

Tenants come in three kinds:

* ``"poisson"`` — open-loop inference-style scans: job arrivals are a
  Poisson process at ``rate`` jobs/second, regardless of completions;
* ``"bursty"`` — open-loop with heavy-tailed (Pareto) inter-arrivals at
  the same mean rate: long quiet gaps punctuated by arrival bursts, the
  classic noisy neighbor;
* ``"train"`` — closed-loop epoch training: ``concurrency`` workers each
  walk a seeded permutation of the tenant's sample range batch by batch,
  submitting the next job only when the previous completes (plus
  ``think_time``).

Every random draw comes from a blessed per-tenant substream
(``repro.sim.rng``), so two runs with the same seed generate an
identical arrival script — the determinism property
``tests/test_tenancy.py`` checks across runs and the SimSanitizer
checks across same-timestamp event shuffles.

Tenants default to disjoint sample ranges.  Overlapping ranges are
allowed (fetch sharing dedupes the I/O) but a span is charged to
whichever tenant's job reached prep first, so overlap trades strict
accounting isolation for cache efficiency.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import AdmissionRejected, ConfigError
from ..sim import rng as sim_rng

__all__ = ["TenantWorkload", "TrafficEngine"]

#: Deterministic gap between closed-loop worker start instants.  Every
#: worker submitting its first job at exactly t=0 would race in the
#: reactor inbox on the event queue's same-timestamp tiebreak — results
#: would then depend on process creation order, which the SimSanitizer
#: rejects.  Real trainers never start in nanosecond lockstep either;
#: 100 ns is far below any simulated service time, so steady-state
#: behavior is unchanged.
WORKER_START_STAGGER = 100e-9


@dataclass(frozen=True)
class TenantWorkload:
    """One tenant's traffic shape."""

    name: str
    #: "poisson" | "bursty" (open loop) | "train" (closed loop).
    kind: str = "poisson"
    #: Mean job arrival rate (open loop), jobs/second.
    rate: float = 100.0
    #: Samples per job.
    batch: int = 8
    #: Sample range [lo, hi) this tenant reads (hi=0: dataset end).
    sample_lo: int = 0
    sample_hi: int = 0
    #: Closed loop: think time between a completion and the next submit.
    think_time: float = 0.0
    #: Closed loop: concurrent workers.
    concurrency: int = 1
    #: Bursty: Pareto tail index (must be > 1 for a finite mean).
    tail_shape: float = 1.5
    #: Test hook: pin the first arrival instant (None = drawn).  Lets
    #: the sanitizer force same-timestamp arrivals from two tenants.
    start_offset: Optional[float] = None
    #: Open loop only: restrict arrivals to ``[lo, hi)`` sim-seconds.
    #: ``None`` keeps the legacy whole-horizon behavior bit-identical.
    #: Scenario phases compile to one windowed workload per phase step,
    #: so phase-scoped rates (and phase-scoped metrics) need no mid-run
    #: mutation of a live generator.
    window: Optional[tuple] = None

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("workload name must be non-empty")
        if self.kind not in ("poisson", "bursty", "train"):
            raise ConfigError(f"unknown workload kind {self.kind!r}")
        if self.kind != "train" and self.rate <= 0:
            raise ConfigError(f"workload {self.name!r}: rate must be > 0")
        if self.batch < 1:
            raise ConfigError(f"workload {self.name!r}: batch must be >= 1")
        if self.concurrency < 1:
            raise ConfigError(
                f"workload {self.name!r}: concurrency must be >= 1"
            )
        if self.think_time < 0:
            raise ConfigError(f"workload {self.name!r}: think_time must be >= 0")
        if self.kind == "bursty" and self.tail_shape <= 1.0:
            raise ConfigError(
                f"workload {self.name!r}: tail_shape must be > 1 "
                "(finite-mean Pareto)"
            )
        if self.window is not None:
            if self.kind == "train":
                raise ConfigError(
                    f"workload {self.name!r}: window applies to open-loop "
                    "kinds only"
                )
            lo, hi = self.window
            if not 0 <= lo < hi:
                raise ConfigError(
                    f"workload {self.name!r}: bad window [{lo}, {hi})"
                )

    def rate_envelope(
        self, horizon: float, sample_bytes: int, service_time: float = 0.0
    ):
        """This workload's mean sample-rate envelope for fluid lanes.

        The hybrid-fidelity engine (:mod:`repro.sim.fluid`) advances
        bulk traffic from rate envelopes instead of per-job events; this
        emits the envelope matching the generator's mean behavior.  Open
        loops contribute ``rate * batch`` samples/s regardless of
        completions; the closed ``train`` loop's steady state is one
        batch per worker per ``think_time + service_time`` cycle, so a
        service-time estimate is required there (the fluid model has no
        completion feedback to derive it from).
        """
        from ..sim.fluid import RateEnvelope, Segment
        if horizon <= 0:
            raise ConfigError(f"workload {self.name!r}: horizon must be > 0")
        if self.kind == "train":
            cycle = self.think_time + service_time
            if cycle <= 0:
                raise ConfigError(
                    f"workload {self.name!r}: closed-loop envelope needs "
                    "think_time + service_time > 0"
                )
            samples_per_s = self.concurrency * self.batch / cycle
        else:
            samples_per_s = self.rate * self.batch
        return RateEnvelope(
            (Segment(0.0, float(horizon), samples_per_s, int(sample_bytes)),)
        )


class TrafficEngine:
    """Drives many concurrent ReadJobs through a tenant runtime."""

    def __init__(
        self,
        env,
        runtime,
        dataset,
        workloads: tuple,
        seed: int = 0,
        horizon: float = 0.05,
    ) -> None:
        if horizon <= 0:
            raise ConfigError("horizon must be > 0")
        names = []
        for w in workloads:
            w.validate()
            if w.name in names:
                raise ConfigError(f"duplicate workload {w.name!r}")
            names.append(w.name)
        self.env = env
        self.runtime = runtime
        self.dataset = dataset
        self.workloads = tuple(workloads)
        self.seed = seed
        self.horizon = horizon
        self.procs: list = []
        #: Per-tenant {job key -> delivered samples}; keys are
        #: ``(worker_id, seq)`` so the witness order never depends on
        #: completion order.
        self._log: dict[str, dict] = {w.name: {} for w in self.workloads}
        self._outstanding = 0
        self._waiter = None
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.rejected_jobs = 0
        self.delivered = 0
        self.failed = 0

    # -- random substreams ----------------------------------------------------
    def _stream(self, w: TenantWorkload, what: str, extra: int = 0):
        return sim_rng(
            f"tenancy.{what}.{w.name}",
            [self.seed, zlib.crc32(w.name.encode()), extra],
        )

    def _range(self, w: TenantWorkload) -> tuple[int, int]:
        hi = w.sample_hi if w.sample_hi > 0 else self.dataset.num_samples
        lo = w.sample_lo
        if not 0 <= lo < hi <= self.dataset.num_samples:
            raise ConfigError(
                f"workload {w.name!r}: bad sample range [{lo}, {hi})"
            )
        return lo, hi

    def _gap(self, w: TenantWorkload, arr) -> float:
        if w.kind == "bursty":
            # Lomax + 1 => Pareto with mean a/(a-1); scale to the rate.
            a = w.tail_shape
            scale = (a - 1.0) / (a * w.rate)
            return scale * (float(arr.pareto(a)) + 1.0)
        return float(arr.exponential(1.0 / w.rate))

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> list:
        """Spawn one process per open-loop tenant / closed-loop worker."""
        spawn = 0
        for w in self.workloads:
            if w.kind == "train":
                for wid in range(w.concurrency):
                    self.procs.append(
                        self.env.process(
                            self._closed_loop(w, wid, spawn),
                            name=f"traffic.{w.name}.{wid}",
                        )
                    )
                    spawn += 1
            else:
                self.procs.append(
                    self.env.process(
                        self._open_loop(w), name=f"traffic.{w.name}"
                    )
                )
        return self.procs

    def drain(self):
        """Process helper: wait for every outstanding job to complete."""
        while self._outstanding > 0:
            self._waiter = self.env.event()
            yield self._waiter

    # -- generators -----------------------------------------------------------
    def _open_loop(self, w: TenantWorkload):
        arr = self._stream(w, "arrival")
        pick = self._stream(w, "samples", extra=1)
        lo, hi = self._range(w)
        if w.window is not None:
            yield from self._windowed_open_loop(w, arr, pick, lo, hi)
            return
        t = w.start_offset if w.start_offset is not None else self._gap(w, arr)
        seq = 0
        while t <= self.horizon:
            if t > self.env.now:
                yield self.env.timeout(t - self.env.now)
            samples = pick.integers(lo, hi, size=w.batch).astype(np.int64)
            self._submit(w, (0, seq), samples)
            seq += 1
            t += self._gap(w, arr)

    def _windowed_open_loop(self, w: TenantWorkload, arr, pick, lo, hi):
        # Arrivals confined to [win_lo, win_hi): the first instant is
        # win_lo plus a drawn gap, so two phase-step workloads sharing a
        # boundary can never collide on the same timestamp (distinct rng
        # substreams => distinct gaps), and a rate change at a boundary
        # is a clean renewal-process restart.
        win_lo, win_hi = w.window
        t = win_lo + self._gap(w, arr)
        seq = 0
        while t < win_hi and t <= self.horizon:
            if t > self.env.now:
                yield self.env.timeout(t - self.env.now)
            samples = pick.integers(lo, hi, size=w.batch).astype(np.int64)
            self._submit(w, (0, seq), samples)
            seq += 1
            t += self._gap(w, arr)

    def _closed_loop(self, w: TenantWorkload, wid: int, spawn: int = 0):
        lo, hi = self._range(w)
        perm_rng = self._stream(w, "epoch", extra=wid + 2)
        # Worker `wid` owns every concurrency-th sample of the epoch
        # permutation, so workers never contend on log keys and the
        # witness is insensitive to worker interleaving.
        order = (perm_rng.permutation(hi - lo) + lo)[wid :: w.concurrency]
        if len(order) == 0:
            return
        if w.start_offset is not None and w.start_offset > 0:
            yield self.env.timeout(w.start_offset)
        # `spawn` is the engine-wide worker index: distinct first-submit
        # instants for every closed-loop worker (see WORKER_START_STAGGER).
        yield self.env.timeout((spawn + 1) * WORKER_START_STAGGER)
        pos = 0
        seq = 0
        while self.env.now < self.horizon:
            batch = order[pos : pos + w.batch]
            if len(batch) < w.batch:  # epoch wrap
                batch = np.concatenate([batch, order[: w.batch - len(batch)]])
                pos = (pos + w.batch) % len(order)
            else:
                pos += w.batch
            job = self._submit(w, (wid, seq), batch.astype(np.int64))
            seq += 1
            yield job.done
            if w.think_time > 0:
                yield self.env.timeout(w.think_time)

    # -- submission / completion ----------------------------------------------
    def _submit(self, w: TenantWorkload, key: tuple, samples: np.ndarray):
        from ..core.reader import ReadJob  # local import: no core<->tenancy cycle

        job = ReadJob(
            samples=samples, done=self.env.event(), tenant=w.name
        )
        arrival = self.env.now
        self._outstanding += 1
        self.jobs_submitted += 1
        job.done.callbacks.append(
            lambda _ev, w=w, key=key, job=job, arrival=arrival: self._job_done(
                w, key, job, arrival
            )
        )
        self.runtime.submit(job)
        return job

    def _job_done(self, w: TenantWorkload, key: tuple, job, arrival: float) -> None:
        self._outstanding -= 1
        self.jobs_completed += 1
        rejected = False
        failed = 0
        failed_bytes = 0
        sizes = self.dataset.sizes
        for exc in job.errors:
            if isinstance(exc, AdmissionRejected):
                rejected = True
                break
            failed += 1
            exc_key = getattr(exc, "key", None)
            if (
                isinstance(exc_key, tuple)
                and len(exc_key) == 2
                and exc_key[0] == "s"
            ):
                failed_bytes += int(sizes[exc_key[1]])
        if rejected:
            self.rejected_jobs += 1
        else:
            n = len(job.samples)
            ok = n - failed
            nbytes = int(sizes[job.samples].sum()) - failed_bytes
            self.delivered += ok
            self.failed += failed
            self._log[w.name][key] = job.samples
            self.runtime.accounting.on_job_done(
                w.name, self.env.now - arrival, ok, failed, nbytes
            )
        if self._outstanding == 0 and self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.succeed()

    # -- witness --------------------------------------------------------------
    def samples_read(self) -> np.ndarray:
        """All completed jobs' samples in (tenant, job-key) order.

        Deterministic by construction — keys are submission identities,
        not completion order — so it doubles as the bit-identity witness
        for perfcheck and the sanitizer.
        """
        parts = []
        for name in sorted(self._log):
            jobs = self._log[name]
            for key in sorted(jobs):
                parts.append(jobs[key])
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def __repr__(self) -> str:
        return (
            f"<TrafficEngine tenants={len(self.workloads)} "
            f"submitted={self.jobs_submitted} outstanding={self._outstanding}>"
        )
