"""Weighted-fair I/O scheduling for multi-tenant serving.

The :class:`FairScheduler` arbitrates the reactor's two per-shard queues
— ready fetches (``_rpq``) and disassembled NVMe parts (``_postq``) —
by tenant weight using start-time fair queueing (SFQ):

* each shard keeps a virtual time ``v``;
* a fetch enqueued by tenant *t* gets start tag ``S = max(v, finish[t])``
  and finish tag ``F = S + nbytes / weight[t]``; ``finish[t] = F``;
* the scheduler serves the smallest start tag, and advances ``v`` to it.

Parts inherit the start tag of their parent fetch (the fetch was charged
once, at fetch granularity).  Retried or reset-requeued parts re-enter
through the part lane and are charged *again* at part granularity — a
tenant whose injected faults force retries pays for those retries out of
its own share, which is the fault-isolation property.

Priority classes sit in front of the SFQ order: a lower ``priority``
number is served first.  To bound starvation, whenever the overall SFQ
leader (smallest start tag) is passed over for a higher-priority entry
its bypass counter is bumped; after ``max_bypass`` bypasses the leader
is served regardless of class.  Preemption only ever reorders *queued*
work — requests already posted to a qpair are never recalled.

All tie-breaks are on ``(priority, start, tenant name, seq)`` where
``seq`` is a global enqueue counter, so the service order never depends
on dict insertion order across tenants — the property the SimSanitizer
tiebreak sweep checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigError

__all__ = ["TenantSpec", "FairScheduler"]


@dataclass(frozen=True)
class TenantSpec:
    """Static per-tenant serving policy (weights, quotas, rate limits)."""

    name: str
    #: Relative bandwidth weight for fair queueing.
    weight: float = 1.0
    #: Priority class; lower is served first (with bounded bypass).
    priority: int = 1
    #: Token-bucket admission rate in samples/second (0 = unlimited).
    rate: float = 0.0
    #: Token-bucket depth in samples.
    burst: float = 64.0
    #: Max jobs parked awaiting tokens before rejection.
    max_queued_jobs: int = 64
    #: Fraction of the hugepage sample cache this tenant may hold
    #: (0 = unlimited).
    cache_share: float = 0.0
    #: Fraction of each qpair's depth this tenant may occupy in flight.
    qpair_share: float = 1.0
    #: Per-job latency SLO in seconds (0 = no SLO tracking).
    slo_latency: float = 0.0

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name!r}: weight must be > 0")
        if self.rate < 0:
            raise ConfigError(f"tenant {self.name!r}: rate must be >= 0")
        if self.burst <= 0:
            raise ConfigError(f"tenant {self.name!r}: burst must be > 0")
        if self.max_queued_jobs < 0:
            raise ConfigError(
                f"tenant {self.name!r}: max_queued_jobs must be >= 0"
            )
        if not 0.0 <= self.cache_share <= 1.0:
            raise ConfigError(
                f"tenant {self.name!r}: cache_share must be in [0, 1]"
            )
        if not 0.0 < self.qpair_share <= 1.0:
            raise ConfigError(
                f"tenant {self.name!r}: qpair_share must be in (0, 1]"
            )
        if self.slo_latency < 0:
            raise ConfigError(f"tenant {self.name!r}: slo_latency must be >= 0")


#: Tenant name used for work with no tenant tag (e.g. direct submits).
UNTAGGED = "_untagged"


class _TenantState:
    __slots__ = ("spec", "inv_weight", "finish", "inflight", "cap")

    def __init__(self, spec: TenantSpec, queue_depth: int) -> None:
        self.spec = spec
        self.inv_weight = 1.0 / spec.weight
        #: Per-shard SFQ finish tag of the last charged request.
        self.finish: dict[int, float] = {}
        #: Per-shard requests currently posted to the qpair.
        self.inflight: dict[int, int] = {}
        self.cap = max(1, int(queue_depth * spec.qpair_share))


class _Entry:
    """One queued fetch or part with its SFQ tags."""

    __slots__ = ("item", "tenant", "priority", "start", "seq", "bypassed")

    def __init__(
        self, item: object, tenant: str, priority: int, start: float, seq: int
    ) -> None:
        self.item = item
        self.tenant = tenant
        self.priority = priority
        self.start = start
        self.seq = seq
        self.bypassed = 0


class _Lane:
    """Deque-compatible facade over one scheduler queue.

    The reactor's retry/reset/drain paths only use ``append``,
    ``popleft``, truthiness and ``len`` on its ``_rpq``/``_postq``
    deques; this facade keeps those paths working verbatim while
    routing enqueues through SFQ charging.  ``popleft`` pops in strict
    enqueue order (used only by ``_drain_on_stop``, where fairness no
    longer matters and determinism does).
    """

    __slots__ = ("_sched", "_shard", "_kind")

    def __init__(self, sched: "FairScheduler", shard: int, kind: str) -> None:
        self._sched = sched
        self._shard = shard
        self._kind = kind

    def _entries(self) -> list[_Entry]:
        if self._kind == "fetch":
            return self._sched._fetchq[self._shard]
        return self._sched._partq[self._shard]

    def append(self, item: object) -> None:
        if self._kind == "fetch":
            self._sched.enqueue_fetch(self._shard, item)
        else:
            self._sched.enqueue_part_charged(self._shard, item)

    def popleft(self) -> object:
        entries = self._entries()
        if not entries:
            raise IndexError("pop from an empty scheduler lane")
        best = 0
        for i in range(1, len(entries)):
            if entries[i].seq < entries[best].seq:
                best = i
        return entries.pop(best).item

    def __len__(self) -> int:
        return len(self._entries())

    def __bool__(self) -> bool:
        return bool(self._entries())


class FairScheduler:
    """SFQ + priority arbitration over the reactor's per-shard queues."""

    def __init__(
        self,
        specs: tuple,
        queue_depth: int,
        max_bypass: int = 8,
    ) -> None:
        if max_bypass < 1:
            raise ConfigError("max_bypass must be >= 1")
        self.queue_depth = queue_depth
        self.max_bypass = max_bypass
        self.states: dict[str, _TenantState] = {}
        for spec in specs:
            spec.validate()
            if spec.name in self.states:
                raise ConfigError(f"duplicate tenant {spec.name!r}")
            self.states[spec.name] = _TenantState(spec, queue_depth)
        #: Per-shard virtual time.
        self._vtime: dict[int, float] = {}
        self._fetchq: dict[int, list[_Entry]] = {}
        self._partq: dict[int, list[_Entry]] = {}
        self._seq = 0
        #: Optional quota gate: callable(tenant, fetch) -> bool.
        self.fetch_gate: Optional[Callable[[str, object], bool]] = None
        # Counters surfaced through tenancy accounting.
        self.preemptions = 0
        self.forced_serves = 0
        #: Device-service bytes per tenant, counted when a part is taken
        #: for posting.  This is the honest SFQ fairness metric: job-level
        #: byte accounting over-credits backlogged tenants whose jobs hit
        #: already-pending fetches (dedup), but every device byte passes
        #: through exactly one part take.
        self.bytes_served: dict[str, int] = {}

    # -- wiring ---------------------------------------------------------------
    def attach(self, reactor: object) -> None:
        """Replace the reactor's deques with scheduler lanes."""
        for shard in reactor.qpairs:
            self._vtime[shard] = 0.0
            self._fetchq[shard] = []
            self._partq[shard] = []
            reactor._rpq[shard] = _Lane(self, shard, "fetch")
            reactor._postq[shard] = _Lane(self, shard, "part")

    def _state(self, tenant: Optional[str]) -> _TenantState:
        name = tenant if tenant is not None else UNTAGGED
        state = self.states.get(name)
        if state is None:
            state = _TenantState(TenantSpec(name=name), self.queue_depth)
            self.states[name] = state
        return state

    def _tag(self, state: _TenantState, shard: int, nbytes: int) -> float:
        v = self._vtime.setdefault(shard, 0.0)
        start = max(v, state.finish.get(shard, 0.0))
        state.finish[shard] = start + nbytes * state.inv_weight
        return start

    # -- enqueue --------------------------------------------------------------
    def enqueue_fetch(self, shard: int, fetch: object) -> None:
        """Charge a whole fetch and queue it for promotion."""
        state = self._state(getattr(fetch, "tenant", None))
        start = self._tag(state, shard, fetch.nbytes)
        self._seq += 1
        self._fetchq.setdefault(shard, []).append(
            _Entry(fetch, state.spec.name, state.spec.priority, start, self._seq)
        )

    def enqueue_part_inherit(self, shard: int, req: object, start: float) -> None:
        """Queue a part of a just-promoted fetch under the fetch's tag."""
        fetch = req.tag
        state = self._state(getattr(fetch, "tenant", None))
        self._seq += 1
        self._partq.setdefault(shard, []).append(
            _Entry(req, state.spec.name, state.spec.priority, start, self._seq)
        )

    def enqueue_part_charged(self, shard: int, req: object) -> None:
        """Queue a retried/reset part, charging it at part granularity.

        This is the fault-isolation rule: a tenant whose faults force
        retries buys that extra device time out of its own SFQ share.
        """
        fetch = req.tag
        state = self._state(getattr(fetch, "tenant", None))
        start = self._tag(state, shard, req.nbytes)
        self._seq += 1
        self._partq.setdefault(shard, []).append(
            _Entry(req, state.spec.name, state.spec.priority, start, self._seq)
        )

    # -- selection ------------------------------------------------------------
    def _select(self, entries: list[_Entry]) -> Optional[_Entry]:
        """Pick the next entry among eligible ones (peek; no removal).

        ``best`` is the (priority, start, tenant, seq) minimum; ``leader``
        the pure SFQ (start, tenant, seq) minimum.  Passing over the
        leader bumps its bypass counter; at ``max_bypass`` it wins anyway.
        """
        best: Optional[_Entry] = None
        leader: Optional[_Entry] = None
        for e in entries:
            if best is None or (
                (e.priority, e.start, e.tenant, e.seq)
                < (best.priority, best.start, best.tenant, best.seq)
            ):
                best = e
            if leader is None or (
                (e.start, e.tenant, e.seq) < (leader.start, leader.tenant, leader.seq)
            ):
                leader = e
        if best is None or leader is None:
            return None
        if leader is not best:
            self.preemptions += 1
            leader.bypassed += 1
            if leader.bypassed >= self.max_bypass:
                self.forced_serves += 1
                return leader
        return best

    def _eligible(self, shard: int, entries: list[_Entry]) -> list[_Entry]:
        out = []
        for e in entries:
            state = self.states[e.tenant]
            if state.inflight.get(shard, 0) < state.cap:
                out.append(e)
        return out

    def select_part(self, shard: int) -> Optional[_Entry]:
        entries = self._partq.get(shard)
        if not entries:
            return None
        return self._select(self._eligible(shard, entries))

    def select_fetch(self, shard: int) -> Optional[_Entry]:
        entries = self._fetchq.get(shard)
        if not entries:
            return None
        eligible = self._eligible(shard, entries)
        if self.fetch_gate is not None:
            eligible = [
                e for e in eligible if self.fetch_gate(e.tenant, e.item)
            ]
        return self._select(eligible)

    def take(self, shard: int, entry: _Entry, kind: str) -> object:
        """Commit a peeked selection: remove it and advance virtual time."""
        entries = self._fetchq[shard] if kind == "fetch" else self._partq[shard]
        entries.remove(entry)
        v = self._vtime.setdefault(shard, 0.0)
        if entry.start > v:
            self._vtime[shard] = entry.start
        if kind == "part":
            self.bytes_served[entry.tenant] = (
                self.bytes_served.get(entry.tenant, 0) + entry.item.nbytes
            )
        return entry.item

    def service_shares(self) -> dict[str, float]:
        """Fraction of device-service bytes each tenant has received."""
        total = sum(self.bytes_served.values())
        if total == 0:
            return {}
        return {
            t: self.bytes_served[t] / total for t in sorted(self.bytes_served)
        }

    # -- in-flight tracking ---------------------------------------------------
    def on_posted(self, tenant: Optional[str], shard: int) -> None:
        state = self._state(tenant)
        state.inflight[shard] = state.inflight.get(shard, 0) + 1

    def on_complete(self, tenant: Optional[str], shard: int) -> None:
        state = self._state(tenant)
        held = state.inflight.get(shard, 0)
        if held > 0:
            state.inflight[shard] = held - 1

    # -- introspection --------------------------------------------------------
    def queued(self, shard: Optional[int] = None) -> int:
        shards = [shard] if shard is not None else list(self._fetchq)
        total = 0
        for s in shards:
            total += len(self._fetchq.get(s, ())) + len(self._partq.get(s, ()))
        return total

    def __repr__(self) -> str:
        return (
            f"<FairScheduler tenants={len(self.states)} "
            f"queued={self.queued()}>"
        )
