"""Per-tenant SLO accounting on the observability metrics registry.

Every tenant gets namespaced instruments
(``tenant.<name>.jobs_completed``, ``.samples_delivered``,
``.bytes_delivered``, ``.jobs_rejected``, ``.samples_failed``,
``.slo_violations`` counters plus a ``tenant.<name>.job_latency``
histogram).  When the serving run has no metrics registry (obs off),
accounting falls back to a private registry — the same pattern
``RecoveryStats`` uses — so per-tenant shares and p99s are always
available to the benchmarks without forcing tracing on.

Job latency is measured by the caller from *arrival* (traffic-engine
submit time), so admission queueing counts against the SLO — a tenant
throttled at admission sees that delay in its own tail, not hidden.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["TenantAccounting"]


class TenantAccounting:
    """Per-tenant latency/throughput metrics and SLO-violation counters."""

    def __init__(self, env, specs: tuple, registry=None) -> None:
        if registry is None or not registry.enabled:
            from ..obs.metrics import MetricsRegistry

            registry = MetricsRegistry(env)
        self.registry = registry
        self._specs = {}
        for spec in specs:
            self._specs[spec.name] = spec
            self._ensure(spec.name)

    def _ensure(self, name: str) -> None:
        r = self.registry
        r.counter(f"tenant.{name}.jobs_completed")
        r.counter(f"tenant.{name}.jobs_rejected")
        r.counter(f"tenant.{name}.samples_delivered")
        r.counter(f"tenant.{name}.samples_failed")
        r.counter(f"tenant.{name}.bytes_delivered")
        r.counter(f"tenant.{name}.slo_violations")
        r.histogram(f"tenant.{name}.job_latency")
        r.histogram(f"tenant.{name}.xform_wait")

    def _spec(self, name: str):
        spec = self._specs.get(name)
        if spec is None:
            from .scheduler import TenantSpec

            spec = TenantSpec(name=name)
            self._specs[name] = spec
            self._ensure(name)
        return spec

    # -- recording ------------------------------------------------------------
    def on_job_done(
        self,
        tenant: str,
        latency: float,
        delivered: int,
        failed: int,
        nbytes: int,
    ) -> None:
        spec = self._spec(tenant)
        r = self.registry
        r.counter(f"tenant.{tenant}.jobs_completed").incr()
        r.counter(f"tenant.{tenant}.samples_delivered").incr(delivered)
        if failed:
            r.counter(f"tenant.{tenant}.samples_failed").incr(failed)
        r.counter(f"tenant.{tenant}.bytes_delivered").incr(nbytes)
        r.histogram(f"tenant.{tenant}.job_latency").observe(latency)
        if spec.slo_latency > 0.0 and latency > spec.slo_latency:
            r.counter(f"tenant.{tenant}.slo_violations").incr()

    def on_rejected(self, tenant: str, samples: int) -> None:
        self._spec(tenant)
        self.registry.counter(f"tenant.{tenant}.jobs_rejected").incr()

    def on_xform_wait(self, tenant: str, wait: float) -> None:
        """Transform-queue wait for one task (zero when the transform
        tier is off or a job ships direct) — tenancy accounting covers
        both tiers."""
        self._spec(tenant)
        self.registry.histogram(f"tenant.{tenant}.xform_wait").observe(wait)

    # -- reporting ------------------------------------------------------------
    def rows(self) -> list[dict]:
        """One report row per tenant, sorted by name; shares sum to 1."""
        r = self.registry
        names = sorted(self._specs)
        total_bytes = 0
        for name in names:
            total_bytes += r.counter(f"tenant.{name}.bytes_delivered").value
        rows = []
        for name in names:
            spec = self._specs[name]
            hist = r.histogram(f"tenant.{name}.job_latency")
            nbytes = r.counter(f"tenant.{name}.bytes_delivered").value
            rows.append(
                {
                    "tenant": name,
                    "weight": spec.weight,
                    "priority": spec.priority,
                    "jobs": r.counter(f"tenant.{name}.jobs_completed").value,
                    "rejected": r.counter(f"tenant.{name}.jobs_rejected").value,
                    "samples": r.counter(f"tenant.{name}.samples_delivered").value,
                    "failed": r.counter(f"tenant.{name}.samples_failed").value,
                    "bytes": nbytes,
                    "share": (nbytes / total_bytes) if total_bytes else 0.0,
                    "p50": hist.percentile(50.0),
                    "p99": hist.percentile(99.0),
                    "xform_wait_p99": r.histogram(
                        f"tenant.{name}.xform_wait"
                    ).percentile(99.0),
                    "slo_violations": r.counter(
                        f"tenant.{name}.slo_violations"
                    ).value,
                }
            )
        return rows

    def row(self, tenant: str) -> Optional[dict]:
        for r in self.rows():
            if r["tenant"] == tenant:
                return r
        return None

    def __repr__(self) -> str:
        return f"<TenantAccounting tenants={len(self._specs)}>"
