"""Per-tenant admission control: token buckets with deferred admission.

Tokens are *samples*: a tenant configured with ``rate=2000`` may start
2000 samples/second of sim time, with ``burst`` samples of depth.  The
bucket refills lazily from sim time, so conformance is exact and costs
no events while a tenant is under its rate.

A job that does not fit is parked in a per-tenant FIFO and admitted by a
drainer process at the precise instant enough tokens accrue.  When the
FIFO is full the job is *rejected*, not dropped silently: every sample
gets an :class:`~repro.errors.AdmissionRejected` in ``job.errors`` and
the job's done event fires, so open-loop generators never wedge.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..errors import AdmissionRejected

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Deterministic lazily-refilled token bucket (tokens = samples)."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = 0.0

    def _refill(self, now: float) -> None:
        if now > self.last:
            self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
            self.last = now

    def try_take(self, n: float, now: float) -> bool:
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def eta(self, n: float, now: float) -> float:
        """Seconds until ``n`` tokens are available (0 if available now)."""
        self._refill(now)
        if self.tokens >= n:
            return 0.0
        return (n - self.tokens) / self.rate


class AdmissionController:
    """Token-bucket gate in front of the reactor's submit path."""

    def __init__(
        self,
        env,
        specs: tuple,
        submit: Callable[[object], None],
        accounting=None,
    ) -> None:
        self.env = env
        self._submit = submit
        self.accounting = accounting
        self._buckets: dict[str, TokenBucket] = {}
        self._limits: dict[str, int] = {}
        self._queues: dict[str, deque] = {}
        self._draining: dict[str, bool] = {}
        for spec in specs:
            if spec.rate > 0.0:
                self._buckets[spec.name] = TokenBucket(spec.rate, spec.burst)
                self._limits[spec.name] = spec.max_queued_jobs
                self._queues[spec.name] = deque()
                self._draining[spec.name] = False
        self.admitted = 0
        self.deferred = 0
        self.rejected = 0

    def submit_job(self, job) -> bool:
        """Admit, defer, or reject one job.  Returns False on rejection."""
        tenant = getattr(job, "tenant", None)
        bucket = self._buckets.get(tenant) if tenant is not None else None
        if bucket is None:
            self.admitted += 1
            self._submit(job)
            return True
        queue = self._queues[tenant]
        n = len(job.samples)
        if not queue and bucket.try_take(n, self.env.now):
            self.admitted += 1
            self._submit(job)
            return True
        if len(queue) >= self._limits[tenant]:
            self._reject(job, tenant)
            return False
        self.deferred += 1
        queue.append(job)
        if not self._draining[tenant]:
            self._draining[tenant] = True
            self.env.process(self._drain(tenant), name=f"admission.{tenant}")
        return True

    def _drain(self, tenant: str):
        queue = self._queues[tenant]
        bucket = self._buckets[tenant]
        while queue:
            job = queue[0]
            n = len(job.samples)
            while not bucket.try_take(n, self.env.now):
                # eta is exact under lazy refill; the max() guards float
                # round-down from ever busy-looping at zero delay.
                yield self.env.timeout(max(bucket.eta(n, self.env.now), 1e-9))
            queue.popleft()
            self.admitted += 1
            self._submit(job)
        self._draining[tenant] = False

    def _reject(self, job, tenant: str) -> None:
        self.rejected += 1
        for s in job.samples:
            job.errors.append(
                AdmissionRejected(
                    f"tenant {tenant!r} admission queue full",
                    tenant=tenant,
                    key=("s", int(s)),
                )
            )
        job.remaining = 0
        job.done.succeed(job)
        if self.accounting is not None:
            self.accounting.on_rejected(tenant, len(job.samples))

    def queue_depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def __repr__(self) -> str:
        return (
            f"<AdmissionController admitted={self.admitted} "
            f"deferred={self.deferred} rejected={self.rejected}>"
        )
