"""Compile scenarios down to the existing engines' native inputs.

The DSL never grows a runtime of its own: a :class:`~.dsl.Scenario`
compiles to exactly the objects the engines already consume —

* tenancy / cluster / xform: ``(TenantSpec, ...)`` + ``(TenantWorkload,
  ...)`` pairs for :class:`repro.tenancy.TrafficEngine`, plus a
  :class:`repro.faults.FaultPlan` (tenant-keyed media drips, node and
  transform-worker crash schedules);
* fluid: ``(name, RateEnvelope, flows)`` cohort triples for
  :func:`repro.sim.fluid.run_scale` plus a ``ScaleSpec`` carrying the
  lane topology and outage windows.

Phase modulation compiles to *one workload per (tenant, interval)*:
each open-loop tenant's timeline is cut at every realized phase-step
edge plus its own churn/hot-swap instants, and each active interval
becomes a windowed ``TenantWorkload`` named ``tenant@phase.k``.  Every
such workload draws from its own ``repro.sim.rng`` substream (streams
are keyed by workload name), so the compiled scenario is deterministic
and — because per-tenant metrics are keyed by workload name too — every
counter and histogram is phase-scoped for free, with no mid-run
snapshot processes to race same-timestamp events under the sanitizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigError
from .dsl import PhaseStep, Scenario, TenantDef

__all__ = [
    "Interval",
    "compile_workloads",
    "compile_fault_plan",
    "compile_crashes",
    "compile_envelopes",
    "compile_scale_spec",
    "split_workload_name",
]


def split_workload_name(name: str) -> Tuple[str, str]:
    """``"tenant@phase.k"`` -> ``(tenant, phase)``; plain names map to
    the whole-run pseudo-phase ``""``."""
    if "@" not in name:
        return name, ""
    base, rest = name.split("@", 1)
    phase = rest.rsplit(".", 1)[0]
    return base, phase


@dataclass(frozen=True)
class Interval:
    """One compiled slice of a tenant's timeline (horizon fractions)."""

    phase: str
    index: int
    lo: float
    hi: float
    mult: float
    active: bool
    #: True once the dataset hot-swap has happened.
    swapped: bool


def _tenant_intervals(
    steps: Tuple[PhaseStep, ...], t: TenantDef
) -> List[Interval]:
    """Cut the phase-step grid at the tenant's churn/swap instants."""
    edges = set()
    for s in steps:
        edges.add(s.lo)
        edges.add(s.hi)
    for cut in (t.join, t.leave):
        if 0.0 < cut < 1.0:
            edges.add(cut)
    if t.swap_at is not None:
        edges.add(t.swap_at)
    grid = sorted(edges)
    out: List[Interval] = []
    counter = 0
    for a, b in zip(grid, grid[1:]):
        mid = 0.5 * (a + b)
        step = next(s for s in steps if s.lo <= mid < s.hi)
        active = t.join <= mid < t.leave and step.mult > 0.0
        out.append(Interval(
            phase=step.phase,
            index=counter,
            lo=a,
            hi=b,
            mult=step.mult,
            active=active,
            swapped=t.swap_at is not None and mid >= t.swap_at,
        ))
        if active:
            counter += 1
    return out


def _sample_range(t: TenantDef, num_samples: int, swapped: bool) -> Tuple[int, int]:
    lo_f, hi_f = (t.swap_lo, t.swap_hi) if swapped else (t.range_lo, t.range_hi)
    lo = int(lo_f * num_samples)
    hi = int(hi_f * num_samples)
    if hi <= lo:
        hi = lo + 1
    if hi > num_samples:
        raise ConfigError(
            f"tenant {t.name!r}: sample range [{lo}, {hi}) exceeds the "
            f"{num_samples}-sample dataset"
        )
    return lo, hi


def compile_workloads(
    scn: Scenario, quick: bool = False, perturb: float = 0.0
) -> Tuple[tuple, tuple]:
    """The scenario's ``(specs, workloads)`` for the event engines.

    ``perturb`` scales every open-loop rate by ``1 + perturb`` — the
    golden-master self-check's injected drift.
    """
    from ..tenancy import TenantSpec, TenantWorkload

    scn.validate()
    horizon = scn.effective_horizon(quick)
    steps = scn.steps()
    specs: List = []
    workloads: List = []
    for t in scn.tenants:
        if t.kind == "train":
            lo, hi = _sample_range(t, scn.num_samples, swapped=False)
            specs.append(TenantSpec(
                name=t.name, weight=t.weight, priority=t.priority,
                slo_latency=t.slo_latency,
            ))
            workloads.append(TenantWorkload(
                name=t.name, kind="train", batch=t.batch,
                concurrency=t.concurrency, think_time=t.think_time,
                sample_lo=lo, sample_hi=hi,
            ))
            continue
        for iv in _tenant_intervals(steps, t):
            if not iv.active:
                continue
            wname = f"{t.name}@{iv.phase}.{iv.index}"
            lo, hi = _sample_range(t, scn.num_samples, iv.swapped)
            specs.append(TenantSpec(
                name=wname, weight=t.weight, priority=t.priority,
                slo_latency=t.slo_latency,
            ))
            workloads.append(TenantWorkload(
                name=wname, kind=t.kind,
                rate=t.rate * iv.mult * (1.0 + perturb),
                batch=t.batch, tail_shape=t.tail_shape,
                sample_lo=lo, sample_hi=hi,
                window=(iv.lo * horizon, iv.hi * horizon),
            ))
    return tuple(specs), tuple(workloads)


def compile_fault_plan(
    scn: Scenario, quick: bool = False, seed: Optional[int] = None
):
    """The scenario's :class:`FaultPlan` (``None`` when nothing faults).

    Slow-drip media degradation compiles to per-interval tenant-keyed
    media rates: interval ``i``'s rate is ``fault_rate`` scaled by the
    interval's midpoint fraction, so the drip ramps linearly across the
    run while staying a frozen, declarative plan.
    """
    from ..faults import FaultPlan

    horizon = scn.effective_horizon(quick)
    steps = scn.steps()
    tenant_faults: List[Tuple[str, float]] = []
    for t in scn.tenants:
        if t.fault_rate <= 0.0:
            continue
        if t.kind == "train":
            tenant_faults.append((t.name, t.fault_rate * 0.5))
            continue
        for iv in _tenant_intervals(steps, t):
            if not iv.active:
                continue
            wname = f"{t.name}@{iv.phase}.{iv.index}"
            mid = 0.5 * (iv.lo + iv.hi)
            tenant_faults.append((wname, t.fault_rate * mid))
    node_crashes = compile_crashes(scn, "node_crash", horizon)
    xform_crashes = compile_crashes(scn, "worker_crash", horizon)
    if not tenant_faults and not node_crashes and not xform_crashes:
        return None
    return FaultPlan(
        seed=seed if seed is not None else scn.seed,
        tenant_faults=tuple(tenant_faults),
        node_crashes=node_crashes,
        xform_crashes=xform_crashes,
    )


#: Two events declared at the same fraction (a "region" going down)
#: must not share a sim timestamp: same-tick ordering is exactly what
#: the sanitizer perturbs, and crash/rejoin bookkeeping is not
#: commutative (NodeDown notification order reaches the reactors).  A
#: target-keyed nanosecond skew keeps "simultaneous" events at the same
#: wall moment while giving each its own tick.
_EVENT_SKEW = 1e-9


def compile_crashes(scn: Scenario, kind: str, horizon: float) -> tuple:
    """``(target, crash_time, rejoin_time|None)`` tuples for ``kind``."""
    out = []
    for e in scn.events:
        if e.kind != kind:
            continue
        skew = e.target * _EVENT_SKEW
        rejoin = e.until * horizon + skew if e.until is not None else None
        out.append((e.target, e.at * horizon + skew, rejoin))
    return tuple(out)


def compile_envelopes(
    scn: Scenario, quick: bool = False, perturb: float = 0.0
) -> List[Tuple[str, object, int]]:
    """Fluid cohorts: ``(name, RateEnvelope, flows)`` per tenant.

    Each tenant's realized intervals become contiguous envelope segments
    over exactly ``[0, day]``; churn windows and zero-multiplier phases
    are zero-rate segments (the fluid engine treats those as idle).
    """
    from ..sim.fluid import RateEnvelope, Segment

    scn.validate()
    day = scn.effective_horizon(quick)
    steps = scn.steps()
    out: List[Tuple[str, object, int]] = []
    for t in scn.tenants:
        flows = t.users if t.users > 0 else scn.users
        segments = []
        for iv in _tenant_intervals(steps, t):
            rate = (
                flows * t.rate * iv.mult * (1.0 + perturb)
                if iv.active else 0.0
            )
            segments.append(
                Segment(iv.lo * day, iv.hi * day, rate, scn.sample_bytes)
            )
        out.append((t.name, RateEnvelope(segments), flows))
    return out


def compile_scale_spec(scn: Scenario, quick: bool = False, seed=None):
    """The :class:`ScaleSpec` carrying topology and outage windows."""
    from ..sim.fluid import ScaleSpec

    day = scn.effective_horizon(quick)
    faults = tuple(
        (e.target, e.at, e.until)
        for e in scn.events if e.kind == "lane_outage"
    )
    flows = [t.users if t.users > 0 else scn.users for t in scn.tenants]
    return ScaleSpec(
        users=sum(flows),
        cohorts=len(scn.tenants),
        day=day,
        lanes=scn.lanes,
        sample_bytes=scn.sample_bytes,
        tagged_per_cohort=scn.tagged,
        seed=seed if seed is not None else scn.seed,
        bumps=(),
        churn=(),
        faults=faults,
    )
