"""Golden-master recording and drift attribution.

A golden file (``scenarios/golden/<name>.json`` at the repo root) holds
one scenario's reviewed baseline: a human-entered ``label`` (why this
baseline is believed correct — required at record time, à la FBA-Bench's
golden-master tooling) plus the full fingerprint per mode
(``quick``/``full``).

``compare_fingerprints`` walks golden vs current and returns one drift
entry per diverged value, each carrying the metric path, the layer it
lives in (derived from the metric prefix), and — for phase-scoped
metrics — the phase name and its sim-time window.  Digests and counters
compare exactly; floats compare bit-exactly too (JSON round-trips
Python doubles exactly), because the simulator's determinism contract
is bit-identity, not tolerance bands.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigError

__all__ = [
    "golden_dir",
    "golden_path",
    "load_golden",
    "write_golden",
    "compare_fingerprints",
    "render_drifts",
    "Drift",
]

#: Golden files live at ``<repo>/scenarios/golden`` — committed alongside
#: the code so CI diffs them like any other source of truth.
_GOLDEN_SUBDIR = os.path.join("scenarios", "golden")


@dataclass(frozen=True)
class Drift:
    """One diverged value between golden and current fingerprints."""

    metric: str
    layer: str
    golden: object
    current: object
    phase: str = ""
    window: tuple = field(default=())

    def as_dict(self) -> dict:
        out = {
            "metric": self.metric,
            "layer": self.layer,
            "golden": self.golden,
            "current": self.current,
        }
        if self.phase:
            out["phase"] = self.phase
            out["window"] = list(self.window)
        return out


def golden_dir(root: Optional[str] = None) -> str:
    if root is not None:
        return os.path.join(root, _GOLDEN_SUBDIR)
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo, _GOLDEN_SUBDIR)


def golden_path(name: str, root: Optional[str] = None) -> str:
    return os.path.join(golden_dir(root), f"{name}.json")


def load_golden(name: str, root: Optional[str] = None) -> dict:
    path = golden_path(name, root)
    if not os.path.exists(path):
        raise ConfigError(
            f"no golden master for scenario {name!r} (expected {path}; "
            f"record one with `python -m repro scenario record {name} "
            "--label '...'`)"
        )
    with open(path) as fh:
        doc = json.load(fh)
    for key in ("scenario", "label", "recorded"):
        if key not in doc:
            raise ConfigError(f"golden {path}: missing key {key!r}")
    return doc


def write_golden(
    name: str,
    label: str,
    recorded: dict,
    root: Optional[str] = None,
) -> str:
    """Write the golden file; ``recorded`` maps mode -> fingerprint."""
    if not label.strip():
        raise ConfigError(
            "golden masters need a reviewed --label describing why this "
            "baseline is believed correct"
        )
    path = golden_path(name, root)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    doc = {
        "scenario": name,
        "label": label,
        "recorded": recorded,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

_LAYER_PREFIXES = (
    ("tenant.", "tenancy"),
    ("recovery.", "faults"),
    ("lifecycle.", "cluster"),
    ("balancer.", "cluster"),
    ("tier.", "xform"),
    ("routed.", "xform"),
    ("lane.", "fluid"),
    ("bulk_", "fluid"),
    ("fluid_", "fluid"),
    ("tagged", "fluid"),
)


def _layer(metric: str, engine: str) -> str:
    if metric.startswith("digests.") or metric == "sim_time":
        return "engine"
    name = metric
    for section in ("counters.", "percentiles.", "phases."):
        if name.startswith(section):
            name = name[len(section):]
            break
    for prefix, layer in _LAYER_PREFIXES:
        if name.startswith(prefix):
            return layer
    return engine


def _flatten(value, prefix: str, out: dict) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key), out)
    else:
        out[prefix] = value


def compare_fingerprints(golden: dict, current: dict) -> List[Drift]:
    """Every diverged value, most significant sections first."""
    engine = current.get("engine", golden.get("engine", ""))
    drifts: List[Drift] = []

    def _diff_section(section: str, phase: str = "", window: tuple = ()):
        gold_flat: dict = {}
        cur_flat: dict = {}
        _flatten(golden.get(section, {}), section, gold_flat)
        _flatten(current.get(section, {}), section, cur_flat)
        for key in sorted(set(gold_flat) | set(cur_flat)):
            g = gold_flat.get(key)
            c = cur_flat.get(key)
            if g != c:
                drifts.append(Drift(
                    metric=key, layer=_layer(key, engine),
                    golden=g, current=c, phase=phase, window=window,
                ))

    _diff_section("digests")
    if golden.get("sim_time") != current.get("sim_time"):
        drifts.append(Drift(
            metric="sim_time", layer="engine",
            golden=golden.get("sim_time"), current=current.get("sim_time"),
        ))
    _diff_section("counters")
    _diff_section("percentiles")

    gold_phases = {p["name"]: p for p in golden.get("phases", ())}
    cur_phases = {p["name"]: p for p in current.get("phases", ())}
    for name in sorted(set(gold_phases) | set(cur_phases)):
        g = gold_phases.get(name)
        c = cur_phases.get(name)
        if g is None or c is None:
            drifts.append(Drift(
                metric=f"phases.{name}", layer=_layer("phases", engine),
                golden=None if g is None else "present",
                current=None if c is None else "present",
                phase=name,
            ))
            continue
        window = tuple(c.get("window") or g.get("window") or ())
        if g.get("window") != c.get("window"):
            drifts.append(Drift(
                metric=f"phases.{name}.window", layer="engine",
                golden=g.get("window"), current=c.get("window"),
                phase=name, window=window,
            ))
        gold_flat: dict = {}
        cur_flat: dict = {}
        _flatten(g.get("metrics", {}), "", gold_flat)
        _flatten(c.get("metrics", {}), "", cur_flat)
        for key in sorted(set(gold_flat) | set(cur_flat)):
            gv = gold_flat.get(key)
            cv = cur_flat.get(key)
            if gv != cv:
                drifts.append(Drift(
                    metric=f"phases.{name}.{key}",
                    layer=_layer(f"counters.{key}", engine),
                    golden=gv, current=cv,
                    phase=name, window=window,
                ))
    return drifts


def render_drifts(
    scenario: str, mode: str, drifts: List[Drift], label: str = ""
) -> str:
    """Human-readable attribution diff."""
    if not drifts:
        return f"OK {scenario} [{mode}]: fingerprint matches golden master"
    lines = [
        f"DRIFT {scenario} [{mode}]: {len(drifts)} metric(s) diverged "
        f"from golden master"
        + (f" (label: {label})" if label else "")
    ]
    for d in drifts:
        where = ""
        if d.phase:
            lo, hi = (d.window + (None, None))[:2]
            if lo is not None and hi is not None:
                where = f"  [phase {d.phase!r}, window {lo:g}..{hi:g}s]"
            else:
                where = f"  [phase {d.phase!r}]"
        lines.append(
            f"  [{d.layer}] {d.metric}: golden={d.golden!r} "
            f"current={d.current!r}{where}"
        )
    return "\n".join(lines)
