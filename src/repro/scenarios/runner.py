"""Run a compiled scenario and capture its golden-master fingerprint.

A fingerprint is a plain JSON-able dict with four sections:

* ``digests`` — sha1 of the sample-order witness and of the latency
  stream (``float.hex`` — bit-exact, no repr rounding);
* ``counters`` — flat key counters (delivered/failed/jobs, recovery,
  lifecycle, balancer, transform tier, fluid lanes), every key carrying
  its layer in the prefix so a drift attributes itself;
* ``percentiles`` — p50/p90/p99/p999 per tenant (tenancy: merged
  phase-step histograms from the MetricsRegistry; cluster/xform: exact
  nearest-rank over completion records; fluid: tagged-flow set);
* ``phases`` — the same metrics re-cut per phase window, so a drift
  names *which phase* moved, not just which metric.

Work is attributed to the phase that *submitted* it (workload names
carry their phase), never to completion time — so drain-tail
completions cannot smear across phase boundaries and the attribution is
completion-order independent, the same property every witness in this
repo is built on.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional

from ..errors import ConfigError
from .compile import (
    compile_crashes,
    compile_envelopes,
    compile_fault_plan,
    compile_scale_spec,
    compile_workloads,
    split_workload_name,
)
from .dsl import Scenario

__all__ = ["run_scenario", "fingerprint_digest"]

_PCTS = ((50, "p50"), (90, "p90"), (99, "p99"), (99.9, "p999"))


def run_scenario(
    scn: Scenario,
    quick: bool = False,
    seed: Optional[int] = None,
    perturb: float = 0.0,
) -> dict:
    """Execute ``scn`` and return its fingerprint dict."""
    scn.validate()
    eff_seed = seed if seed is not None else scn.seed
    if scn.engine == "tenancy":
        fp = _run_tenancy(scn, quick, eff_seed, perturb)
    elif scn.engine == "cluster":
        fp = _run_cluster(scn, quick, eff_seed, perturb)
    elif scn.engine == "xform":
        fp = _run_xform(scn, quick, eff_seed, perturb)
    elif scn.engine == "fluid":
        fp = _run_fluid(scn, quick, eff_seed, perturb)
    else:  # pragma: no cover - validate() rejects this
        raise ConfigError(f"unknown engine {scn.engine!r}")
    fp["scenario"] = scn.name
    fp["engine"] = scn.engine
    fp["mode"] = "quick" if quick else "full"
    fp["seed"] = eff_seed
    return fp


def fingerprint_digest(fp: dict) -> str:
    """One sha1 over the whole fingerprint (stable key order)."""
    import json

    return hashlib.sha1(
        json.dumps(fp, sort_keys=True).encode("utf-8")
    ).hexdigest()


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _order_digest(samples) -> str:
    return hashlib.sha1(samples.tobytes()).hexdigest()


def _nearest_rank(lats: List[float]) -> dict:
    """Exact nearest-rank percentiles of a latency list."""
    if not lats:
        return {"count": 0}
    lats = sorted(lats)
    out: dict = {"count": len(lats)}
    for p, key in _PCTS:
        i = math.ceil(p / 100.0 * len(lats)) - 1
        out[key] = lats[max(0, min(i, len(lats) - 1))]
    return out


def _merge_histograms(hists) -> Optional[object]:
    """Exact merge of same-bounds registry histograms."""
    from ..obs.metrics import Histogram

    hists = [h for h in hists if h is not None and h.count > 0]
    if not hists:
        return None
    merged = Histogram("merged", bounds=hists[0].bounds)
    for h in hists:
        if h.bounds != merged.bounds:  # pragma: no cover - single default
            raise ConfigError("cannot merge histograms with differing bounds")
        merged.counts = [a + b for a, b in zip(merged.counts, h.counts)]
        merged.count += h.count
        merged.total += h.total
        merged._min = min(merged._min, h._min)
        merged._max = max(merged._max, h._max)
    return merged


def _hist_percentiles(hist) -> dict:
    out = {"count": hist.count}
    for p, key in _PCTS:
        out[key] = hist.percentile(p)
    return out


def _phase_entries(scn: Scenario, horizon: float, per_phase: Dict[str, dict]):
    """Fingerprint ``phases`` section from per-phase metric dicts."""
    out = []
    for name, lo, hi in scn.phase_windows():
        out.append({
            "name": name,
            "window": [lo * horizon, hi * horizon],
            "metrics": per_phase.get(name, {}),
        })
    return out


# ---------------------------------------------------------------------------
# tenancy
# ---------------------------------------------------------------------------

def _run_tenancy(scn: Scenario, quick: bool, seed: int, perturb: float) -> dict:
    from ..bench.workloads import dlfs_tenancy

    horizon = scn.effective_horizon(quick)
    specs, workloads = compile_workloads(scn, quick, perturb)
    plan = compile_fault_plan(scn, quick, seed)
    rep = dlfs_tenancy(
        specs=specs,
        workloads=workloads,
        num_samples=scn.num_samples,
        sample_bytes=scn.sample_bytes,
        horizon=horizon,
        warmup=0.0,
        seed=seed,
        metrics=True,
        fault_plan=plan,
    )
    registry = rep.obs.metrics

    lat = hashlib.sha1()
    names = sorted(
        n[len("tenant."):-len(".job_latency")]
        for n in registry.histograms
        if n.startswith("tenant.") and n.endswith(".job_latency")
    )
    hist_by_name = {}
    for n in names:
        h = registry.histograms[f"tenant.{n}.job_latency"]
        hist_by_name[n] = h
        lat.update(
            f"{n}:{h.count}:{h.total.hex()}:"
            f"{h.minimum.hex()}:{h.maximum.hex()}\n".encode("utf-8")
        )

    counters: dict = {
        "delivered": rep.delivered,
        "failed": rep.failed,
        "rejected_jobs": rep.rejected_jobs,
        "preemptions": rep.preemptions,
        "forced_serves": rep.forced_serves,
    }
    by_base: Dict[str, dict] = {}
    by_phase_base: Dict[str, Dict[str, List[str]]] = {}
    for row in rep.per_tenant:
        base, phase = split_workload_name(row["tenant"])
        agg = by_base.setdefault(base, {
            "jobs": 0, "rejected": 0, "samples": 0, "failed": 0,
            "bytes": 0, "slo_violations": 0,
        })
        for key in agg:
            agg[key] += row[key]
        if phase:
            by_phase_base.setdefault(phase, {}).setdefault(base, []).append(
                row["tenant"]
            )
    for base, agg in sorted(by_base.items()):
        for key, value in agg.items():
            counters[f"tenant.{base}.{key}"] = value

    percentiles: dict = {}
    for base in sorted(by_base):
        merged = _merge_histograms(
            hist_by_name.get(n) for n in names
            if split_workload_name(n)[0] == base
        )
        if merged is not None:
            percentiles[base] = _hist_percentiles(merged)

    per_phase: Dict[str, dict] = {}
    for phase, bases in by_phase_base.items():
        metrics: dict = {}
        for base, wnames in sorted(bases.items()):
            rows = [r for r in rep.per_tenant if r["tenant"] in wnames]
            metrics[f"{base}.jobs"] = sum(r["jobs"] for r in rows)
            metrics[f"{base}.samples"] = sum(r["samples"] for r in rows)
            metrics[f"{base}.failed"] = sum(r["failed"] for r in rows)
            merged = _merge_histograms(hist_by_name.get(n) for n in wnames)
            if merged is not None:
                metrics[f"{base}.p99"] = merged.percentile(99.0)
        per_phase[phase] = metrics

    return {
        "sim_time": rep.sim_time,
        "digests": {
            "order": _order_digest(rep.samples_read),
            "latency": lat.hexdigest(),
        },
        "counters": counters,
        "percentiles": percentiles,
        "phases": _phase_entries(scn, horizon, per_phase),
    }


# ---------------------------------------------------------------------------
# cluster / xform (record-based engines)
# ---------------------------------------------------------------------------

def _records_fingerprint(scn: Scenario, horizon: float, rep) -> dict:
    """Digests / percentiles / phases shared by cluster and xform."""
    lat = hashlib.sha1()
    for t_done, tenant, latency, ok, fail in rep.records:
        lat.update(
            f"{t_done.hex()}:{tenant}:{latency.hex()}:{ok}:{fail}\n"
            .encode("utf-8")
        )
    by_base: Dict[str, List[float]] = {}
    by_phase: Dict[str, Dict[str, List[float]]] = {}
    for _t, tenant, latency, _ok, _fail in rep.records:
        base, phase = split_workload_name(tenant)
        by_base.setdefault(base, []).append(latency)
        if phase:
            by_phase.setdefault(phase, {}).setdefault(base, []).append(latency)
    percentiles = {
        base: _nearest_rank(lats) for base, lats in sorted(by_base.items())
    }
    per_phase: Dict[str, dict] = {}
    for phase, bases in by_phase.items():
        metrics: dict = {}
        for base, lats in sorted(bases.items()):
            metrics[f"{base}.jobs"] = len(lats)
            metrics[f"{base}.p99"] = _nearest_rank(lats)["p99"]
        per_phase[phase] = metrics
    return {
        "digests": {
            "order": _order_digest(rep.samples_read),
            "latency": lat.hexdigest(),
        },
        "percentiles": percentiles,
        "phases": _phase_entries(scn, horizon, per_phase),
    }


def _scalar_items(prefix: str, mapping: dict) -> dict:
    out = {}
    for key in sorted(mapping):
        value = mapping[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[f"{prefix}.{key}"] = value
    return out


def _run_cluster(scn: Scenario, quick: bool, seed: int, perturb: float) -> dict:
    from ..bench.workloads import dlfs_cluster

    horizon = scn.effective_horizon(quick)
    specs, workloads = compile_workloads(scn, quick, perturb)
    rep = dlfs_cluster(
        num_storage=scn.storage,
        num_clients=scn.clients,
        replicas=scn.replicas,
        num_samples=scn.num_samples,
        sample_bytes=scn.sample_bytes,
        horizon=horizon,
        seed=seed,
        node_crashes=compile_crashes(scn, "node_crash", horizon),
        specs=specs,
        workloads=workloads,
    )
    counters = {
        "delivered": rep.delivered,
        "failed": rep.failed,
        "jobs": rep.jobs,
    }
    counters.update(_scalar_items("recovery", rep.recovery))
    counters.update(_scalar_items("lifecycle", rep.lifecycle))
    counters.update(_scalar_items("balancer.routed", rep.balancer["routed"]))
    counters["balancer.failovers"] = rep.balancer["failovers"]
    counters["balancer.cache_routed"] = rep.balancer["cache_routed"]
    fp = _records_fingerprint(scn, horizon, rep)
    fp["sim_time"] = rep.sim_time
    fp["counters"] = counters
    return fp


def _run_xform(scn: Scenario, quick: bool, seed: int, perturb: float) -> dict:
    from ..bench.workloads import dlfs_xform
    from ..xform import XformSpec
    from ..xform.stages import parse_stages

    if not scn.stages:
        raise ConfigError(f"scenario {scn.name!r}: xform engine needs stages")
    horizon = scn.effective_horizon(quick)
    specs, workloads = compile_workloads(scn, quick, perturb)
    rep = dlfs_xform(
        num_storage=scn.storage,
        num_clients=scn.clients,
        num_samples=scn.num_samples,
        sample_bytes=scn.sample_bytes,
        horizon=horizon,
        seed=seed,
        spec=XformSpec(stages=parse_stages(scn.stages), workers=scn.workers),
        xform_crashes=compile_crashes(scn, "worker_crash", horizon),
        replicas=scn.replicas,
        specs=specs,
        workloads=workloads,
    )
    counters = {
        "delivered": rep.delivered,
        "failed": rep.failed,
        "jobs": rep.jobs,
    }
    counters.update(_scalar_items("tier", rep.tier))
    counters.update(_scalar_items("routed", rep.routed))
    fp = _records_fingerprint(scn, horizon, rep)
    fp["sim_time"] = rep.sim_time
    fp["counters"] = counters
    return fp


# ---------------------------------------------------------------------------
# fluid
# ---------------------------------------------------------------------------

def _run_fluid(scn: Scenario, quick: bool, seed: int, perturb: float) -> dict:
    from ..cluster.serving import fluid_bulk_shares
    from ..sim.fluid import ArrivalSchedule, run_scale

    day = scn.effective_horizon(quick)
    envelopes = compile_envelopes(scn, quick, perturb)
    spec = compile_scale_spec(scn, quick, seed)
    report = run_scale(spec, mode="hybrid", envelopes=envelopes)

    counters = {
        "bulk_requests": report.bulk_requests,
        "bulk_bytes": report.bulk_bytes,
        "fluid_requests": report.fluid_requests,
        "fluid_bytes": report.fluid_bytes,
    }
    for lane in report.lanes:
        prefix = f"lane.{lane['name']}"
        counters[f"{prefix}.requests"] = lane["requests"]
        counters[f"{prefix}.bytes"] = lane["bytes"]
        counters[f"{prefix}.tagged_requests"] = lane["tagged_requests"]
        counters[f"{prefix}.latency_sum"] = lane["latency_sum"]

    # Per-phase bulk counts re-derive the schedules exactly as run_scale
    # built them (same envelopes, same shares, same fraction), so the
    # counts are the integer-exact mid-riser grid counts per window.
    shares = fluid_bulk_shares(spec.lanes)
    scheds = []
    for name, envelope, flows in envelopes:
        k = min(spec.tagged_per_cohort, flows)
        bulk_frac = (flows - k) / flows
        scheds.append((
            name,
            [ArrivalSchedule(envelope, fraction=bulk_frac * s) for s in shares],
        ))
    per_phase: Dict[str, dict] = {}
    for phase, lo, hi in scn.phase_windows():
        a, b = lo * day, hi * day
        metrics: dict = {}
        for name, lane_scheds in scheds:
            metrics[f"{name}.bulk_requests"] = sum(
                s.count_between(a, b) for s in lane_scheds
            )
        metrics["tagged_requests"] = sum(
            1 for r in report.tagged if a <= r.t < b
        )
        per_phase[phase] = metrics

    return {
        "sim_time": report.sim_time,
        "digests": {
            "order": report.order_digest,
            "latency": report.latency_digest,
        },
        "counters": counters,
        "percentiles": {"tagged": report.tagged_percentiles()},
        "phases": _phase_entries(scn, day, per_phase),
    }
