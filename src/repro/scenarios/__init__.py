"""Scenario DSL + golden-master regression harness.

Declarative, seeded scenarios (phased traffic shapes, tenant churn,
dataset hot-swaps, node/worker/lane outages, slow-drip media faults)
compile onto the existing engines — tenancy, cluster, xform, and the
hybrid-fidelity fluid engine — and every run folds into a deterministic
fingerprint.  Committed golden masters under ``scenarios/golden/`` turn
those fingerprints into a regression spine: ``python -m repro scenario
check`` fails on any drift with an attribution diff naming the metric,
the layer, and the phase window that moved.
"""

from .compile import (
    compile_crashes,
    compile_envelopes,
    compile_fault_plan,
    compile_scale_spec,
    compile_workloads,
    split_workload_name,
)
from .dsl import EventSpec, PhaseSpec, PhaseStep, Scenario, TenantDef, realize_phases
from .golden import (
    Drift,
    compare_fingerprints,
    golden_dir,
    golden_path,
    load_golden,
    render_drifts,
    write_golden,
)
from .pack import SCENARIOS, get_scenario, rolling_upgrade, scenario_names
from .runner import fingerprint_digest, run_scenario

__all__ = [
    "Scenario",
    "PhaseSpec",
    "PhaseStep",
    "TenantDef",
    "EventSpec",
    "realize_phases",
    "compile_workloads",
    "compile_fault_plan",
    "compile_crashes",
    "compile_envelopes",
    "compile_scale_spec",
    "split_workload_name",
    "run_scenario",
    "fingerprint_digest",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
    "rolling_upgrade",
    "golden_dir",
    "golden_path",
    "load_golden",
    "write_golden",
    "compare_fingerprints",
    "render_drifts",
    "Drift",
]
