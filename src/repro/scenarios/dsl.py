"""The scenario DSL: declarative, seeded traffic/fault shapes over sim-time.

A :class:`Scenario` names an engine (``tenancy``, ``cluster``, ``xform``
or ``fluid``), a cast of :class:`TenantDef` tenants, a timeline of
:class:`PhaseSpec` phases, and a list of :class:`EventSpec` infrastructure
events.  Everything temporal is expressed as a *fraction of the horizon*
(the same convention :class:`repro.sim.fluid.ScaleSpec` uses), so the
``--quick`` mode simply shrinks the horizon and every phase boundary,
churn window, and crash instant scales with it.

Phases multiply each tenant's base rate:

* ``hold`` — constant ``level`` for the whole phase;
* ``ramp`` — linear from the previous phase's end level to ``level``
  (a decay is just a ramp to a lower level);
* ``diurnal`` — a sinusoid around the ``level`` midline with
  ``amplitude``, troughing at the phase start and peaking mid-phase.

Ramps and diurnals are *realized* as piecewise-constant steps (the only
thing the downstream engines — renewal-process arrival generators and
fluid rate envelopes — can consume exactly).  The realization is pure
arithmetic over the spec, so two runs of the same scenario produce
bit-identical step grids; randomness enters only through the blessed
``repro.sim.rng`` substreams inside the engines themselves.

Tenant churn is the ``join``/``leave`` activity window; dataset hot-swap
is ``swap_at`` + a second sample range; slow-drip media degradation is a
``fault_rate`` that ramps linearly from zero over the run.  Cluster
membership events (rolling upgrades, regional failover) and fluid lane
outages are :class:`EventSpec` entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "PhaseSpec",
    "PhaseStep",
    "TenantDef",
    "EventSpec",
    "Scenario",
    "realize_phases",
]

_ENGINES = ("tenancy", "cluster", "xform", "fluid")
_OPEN_LOOP = ("poisson", "bursty")
_EVENT_KINDS = ("node_crash", "worker_crash", "lane_outage")

#: Which event kinds each engine consumes.
_EVENTS_BY_ENGINE = {
    "tenancy": (),
    "cluster": ("node_crash",),
    "xform": ("worker_crash",),
    "fluid": ("lane_outage",),
}

_AUTO_STEPS = {"hold": 1, "ramp": 4, "diurnal": 6}


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of the scenario timeline."""

    name: str
    #: Relative duration weight (normalized over all phases).
    duration: float = 1.0
    #: "hold" | "ramp" | "diurnal".
    shape: str = "hold"
    #: Rate multiplier at the end of the phase (hold: throughout;
    #: diurnal: the midline).
    level: float = 1.0
    #: Piecewise-constant realization steps (0 = shape default).
    steps: int = 0
    #: Diurnal swing as a fraction of ``level`` (ignored otherwise).
    amplitude: float = 0.5

    def validate(self) -> None:
        if not self.name or "@" in self.name or "/" in self.name:
            raise ConfigError(f"bad phase name {self.name!r}")
        if self.duration <= 0:
            raise ConfigError(f"phase {self.name!r}: duration must be > 0")
        if self.shape not in _AUTO_STEPS:
            raise ConfigError(f"phase {self.name!r}: unknown shape {self.shape!r}")
        if self.level < 0:
            raise ConfigError(f"phase {self.name!r}: level must be >= 0")
        if self.steps < 0:
            raise ConfigError(f"phase {self.name!r}: steps must be >= 0")
        if self.shape == "diurnal" and not 0.0 <= self.amplitude < 1.0:
            raise ConfigError(
                f"phase {self.name!r}: amplitude {self.amplitude} outside [0, 1)"
            )

    @property
    def step_count(self) -> int:
        return self.steps if self.steps > 0 else _AUTO_STEPS[self.shape]


@dataclass(frozen=True)
class PhaseStep:
    """One realized piecewise-constant step of the timeline."""

    phase: str
    index: int
    #: Horizon fractions [lo, hi).
    lo: float
    hi: float
    #: Rate multiplier in force over the step.
    mult: float


def realize_phases(phases: Tuple[PhaseSpec, ...]) -> Tuple[PhaseStep, ...]:
    """Realize the phase timeline into steps covering [0, 1) exactly.

    Pure spec arithmetic — no randomness, no float accumulation drift
    (edges come from one division per boundary), so the step grid is a
    deterministic function of the phase tuple.
    """
    if not phases:
        raise ConfigError("scenario needs at least one phase")
    names = set()
    for p in phases:
        p.validate()
        if p.name in names:
            raise ConfigError(f"duplicate phase {p.name!r}")
        names.add(p.name)
    total = sum(p.duration for p in phases)
    steps: list[PhaseStep] = []
    prev_level = 1.0
    elapsed = 0.0
    for p in phases:
        n = p.step_count
        lo_frac = elapsed / total
        hi_frac = (elapsed + p.duration) / total
        for k in range(n):
            a = lo_frac + (hi_frac - lo_frac) * k / n
            b = lo_frac + (hi_frac - lo_frac) * (k + 1) / n
            u = (k + 0.5) / n  # phase-local midpoint
            if p.shape == "hold":
                mult = p.level
            elif p.shape == "ramp":
                mult = prev_level + (p.level - prev_level) * u
            else:  # diurnal
                mult = p.level * (
                    1.0 + p.amplitude * math.sin(2.0 * math.pi * u - 0.5 * math.pi)
                )
            steps.append(PhaseStep(p.name, k, a, b, mult))
        if p.shape == "diurnal":
            prev_level = p.level * (1.0 - p.amplitude)
        else:
            prev_level = p.level
        elapsed += p.duration
    # Pin the outer edges exactly (guards against total/total != 1.0).
    steps[0] = replace(steps[0], lo=0.0)
    steps[-1] = replace(steps[-1], hi=1.0)
    return tuple(steps)


@dataclass(frozen=True)
class TenantDef:
    """One tenant's base traffic shape (phases multiply ``rate``)."""

    name: str
    #: "poisson" | "bursty" (open loop) | "train" (closed loop; phases
    #: do not modulate a completion-driven loop).
    kind: str = "poisson"
    #: Base job arrival rate, jobs/second (open loop).
    rate: float = 200.0
    batch: int = 8
    weight: float = 1.0
    priority: int = 1
    slo_latency: float = 0.0
    tail_shape: float = 1.5
    #: Activity window (tenant churn), fractions of the horizon.
    join: float = 0.0
    leave: float = 1.0
    #: Sample range as dataset fractions.
    range_lo: float = 0.0
    range_hi: float = 1.0
    #: Dataset hot-swap: at ``swap_at`` (horizon fraction) the tenant's
    #: reads move to [swap_lo, swap_hi).
    swap_at: Optional[float] = None
    swap_lo: float = 0.0
    swap_hi: float = 1.0
    #: Slow-drip media degradation: per-sample media-error probability
    #: ramping linearly from 0 at t=0 to this value at the horizon.
    fault_rate: float = 0.0
    #: Closed loop (train) only.
    concurrency: int = 2
    think_time: float = 0.0
    #: Fluid engine only: flows in this cohort (0 = scenario default).
    users: int = 0

    def validate(self) -> None:
        if not self.name or "@" in self.name:
            raise ConfigError(f"bad tenant name {self.name!r} ('@' is reserved)")
        if self.kind not in _OPEN_LOOP + ("train",):
            raise ConfigError(f"tenant {self.name!r}: unknown kind {self.kind!r}")
        if self.kind != "train" and self.rate <= 0:
            raise ConfigError(f"tenant {self.name!r}: rate must be > 0")
        if self.batch < 1 or self.concurrency < 1:
            raise ConfigError(
                f"tenant {self.name!r}: batch and concurrency must be >= 1"
            )
        if not 0.0 <= self.join < self.leave <= 1.0:
            raise ConfigError(
                f"tenant {self.name!r}: bad activity window "
                f"[{self.join}, {self.leave})"
            )
        for lo, hi, what in (
            (self.range_lo, self.range_hi, "range"),
            (self.swap_lo, self.swap_hi, "swap range"),
        ):
            if not 0.0 <= lo < hi <= 1.0:
                raise ConfigError(
                    f"tenant {self.name!r}: bad {what} [{lo}, {hi})"
                )
        if self.swap_at is not None and not 0.0 < self.swap_at < 1.0:
            raise ConfigError(
                f"tenant {self.name!r}: swap_at {self.swap_at} outside (0, 1)"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigError(
                f"tenant {self.name!r}: fault_rate is a probability"
            )
        if self.kind == "train" and (
            self.swap_at is not None or self.join > 0.0 or self.leave < 1.0
        ):
            raise ConfigError(
                f"tenant {self.name!r}: churn/hot-swap apply to open-loop "
                "tenants (a closed loop has no arrival schedule to window)"
            )
        if self.users < 0:
            raise ConfigError(f"tenant {self.name!r}: users must be >= 0")


@dataclass(frozen=True)
class EventSpec:
    """One infrastructure event on the scenario timeline."""

    #: "node_crash" (cluster) | "worker_crash" (xform) | "lane_outage"
    #: (fluid).
    kind: str
    #: Start instant, fraction of the horizon.
    at: float
    #: End (rejoin / service-restored) instant; ``None`` = permanent
    #: (node/worker crashes only).
    until: Optional[float] = None
    #: Lane / node / worker index.
    target: int = 0

    def validate(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ConfigError(f"unknown event kind {self.kind!r}")
        if not 0.0 <= self.at < 1.0:
            raise ConfigError(f"event at={self.at} outside [0, 1)")
        if self.until is not None and not self.at < self.until <= 1.0:
            raise ConfigError(
                f"event until={self.until} must be in ({self.at}, 1]"
            )
        if self.kind == "lane_outage" and self.until is None:
            raise ConfigError("lane_outage events need an until")
        if self.target < 0:
            raise ConfigError(f"event target {self.target} < 0")


@dataclass(frozen=True)
class Scenario:
    """One named, seeded, composable scenario."""

    name: str
    #: "tenancy" | "cluster" | "xform" | "fluid".
    engine: str
    title: str = ""
    description: str = ""
    seed: int = 42
    #: Full-run horizon in simulated seconds (fluid: the "day").
    horizon: float = 0.05
    #: ``--quick`` multiplies the horizon by this.
    quick_factor: float = 0.25
    tenants: Tuple[TenantDef, ...] = ()
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec("steady"),)
    events: Tuple[EventSpec, ...] = ()
    num_samples: int = 3072
    sample_bytes: int = 16 * 1024
    #: Cluster / xform topology.
    storage: int = 4
    clients: int = 2
    replicas: int = 2
    #: Xform tier: stage grammar (``repro.xform.parse_stages``) and
    #: worker count.  Empty stages = no tier.
    stages: str = ""
    workers: int = 2
    #: Fluid engine: lanes, tagged flows per cohort, default cohort size.
    lanes: int = 4
    tagged: int = 2
    users: int = 64

    def validate(self) -> None:
        if not self.name:
            raise ConfigError("scenario name must be non-empty")
        if self.engine not in _ENGINES:
            raise ConfigError(
                f"scenario {self.name!r}: unknown engine {self.engine!r}"
            )
        if self.horizon <= 0 or not 0.0 < self.quick_factor <= 1.0:
            raise ConfigError(
                f"scenario {self.name!r}: need horizon > 0 and "
                "quick_factor in (0, 1]"
            )
        if not self.tenants:
            raise ConfigError(f"scenario {self.name!r}: needs tenants")
        names = set()
        for t in self.tenants:
            t.validate()
            if t.name in names:
                raise ConfigError(
                    f"scenario {self.name!r}: duplicate tenant {t.name!r}"
                )
            names.add(t.name)
        realize_phases(self.phases)  # validates the timeline
        allowed = _EVENTS_BY_ENGINE[self.engine]
        limits = {
            "node_crash": self.storage,
            "worker_crash": self.workers,
            "lane_outage": self.lanes,
        }
        for e in self.events:
            e.validate()
            if e.kind not in allowed:
                raise ConfigError(
                    f"scenario {self.name!r}: event {e.kind!r} does not "
                    f"apply to engine {self.engine!r}"
                )
            if e.target >= limits[e.kind]:
                raise ConfigError(
                    f"scenario {self.name!r}: event target {e.target} "
                    f"out of range for {e.kind!r} (< {limits[e.kind]})"
                )
        if self.engine == "fluid":
            for t in self.tenants:
                if t.kind == "train":
                    raise ConfigError(
                        f"scenario {self.name!r}: fluid cohorts are open "
                        f"loop (tenant {t.name!r} is 'train')"
                    )
        if self.num_samples < 1 or self.sample_bytes < 1:
            raise ConfigError(
                f"scenario {self.name!r}: num_samples and sample_bytes "
                "must be >= 1"
            )
        if min(self.storage, self.clients, self.replicas, self.workers,
               self.lanes, self.tagged, self.users) < 1:
            raise ConfigError(
                f"scenario {self.name!r}: topology counts must be >= 1"
            )

    def effective_horizon(self, quick: bool) -> float:
        return self.horizon * self.quick_factor if quick else self.horizon

    def steps(self) -> Tuple[PhaseStep, ...]:
        return realize_phases(self.phases)

    def phase_windows(self) -> Tuple[Tuple[str, float, float], ...]:
        """(name, lo_frac, hi_frac) per phase, in timeline order."""
        out: list[Tuple[str, float, float]] = []
        for s in self.steps():
            if out and out[-1][0] == s.phase:
                out[-1] = (s.phase, out[-1][1], s.hi)
            else:
                out.append((s.phase, s.lo, s.hi))
        return tuple(out)
