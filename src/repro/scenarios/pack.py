"""The shipped scenario pack: production traffic shapes as regression spine.

Eight named scenarios spanning the four engines.  Each is small enough
to run in seconds at full scale (golden `check` runs every one twice)
yet exercises a distinct production shape the ROADMAP calls for:

=================  =======  ==================================================
name               engine   shape under test
=================  =======  ==================================================
flash-crowd        tenancy  ramp/hold/decay surge on an SLO-bound API tenant
tenant-churn       tenancy  mid-run tenant arrival and departure
dataset-hotswap    tenancy  reader flips to a new sample range mid-run
media-slow-drip    tenancy  per-tenant media error rate ramping from zero
rolling-upgrade    cluster  staggered node crash/rejoin wave under traffic
regional-failover  cluster  two nodes (a "region") down and back together
pushdown-surge     xform    load surge + transform-worker crash/re-dispatch
diurnal-day        fluid    hybrid-fidelity day: diurnal + churn + outage
=================  =======  ==================================================
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigError
from .dsl import EventSpec, PhaseSpec, Scenario, TenantDef

__all__ = ["SCENARIOS", "get_scenario", "scenario_names", "rolling_upgrade"]


def rolling_upgrade(
    nodes: int, start: float, stagger: float, downtime: float
) -> Tuple[EventSpec, ...]:
    """One crash/rejoin event per node, ``stagger`` apart — an upgrade wave."""
    events = []
    for i in range(nodes):
        at = start + i * stagger
        until = at + downtime
        if until > 1.0:
            raise ConfigError("rolling upgrade wave runs past the horizon")
        events.append(EventSpec("node_crash", at=at, until=until, target=i))
    return tuple(events)


def _pack() -> Dict[str, Scenario]:
    scenarios = [
        Scenario(
            name="flash-crowd",
            engine="tenancy",
            title="Flash crowd on an SLO-bound API tenant",
            description=(
                "A steady API tenant surges to 3.5x over a ramp, holds the "
                "peak, and decays back while a low-priority bursty scan "
                "tenant keeps its background load. Checks surge admission, "
                "tail latencies per phase, and fair-queue isolation."
            ),
            horizon=0.04,
            tenants=(
                TenantDef(
                    name="api", kind="poisson", rate=2500.0, batch=4,
                    weight=2.0, slo_latency=2e-3, range_lo=0.0, range_hi=0.5,
                ),
                TenantDef(
                    name="scan", kind="bursty", rate=400.0, batch=16,
                    weight=0.5, priority=2, range_lo=0.5, range_hi=1.0,
                ),
            ),
            phases=(
                PhaseSpec("steady", duration=2.0),
                PhaseSpec("surge", duration=1.0, shape="ramp", level=3.5, steps=3),
                PhaseSpec("peak", duration=1.0, level=3.5),
                PhaseSpec("decay", duration=1.0, shape="ramp", level=1.0, steps=3),
            ),
        ),
        Scenario(
            name="tenant-churn",
            engine="tenancy",
            title="Tenant arrival and departure mid-run",
            description=(
                "An anchor tenant serves throughout; a newcomer joins at "
                "35% of the run and a leaver departs at 60%. Checks that "
                "shares re-converge and nobody's tail moves when the mix "
                "changes."
            ),
            horizon=0.04,
            tenants=(
                TenantDef(
                    name="anchor", kind="poisson", rate=1500.0, batch=8,
                    weight=2.0, slo_latency=5e-3, range_lo=0.0, range_hi=0.4,
                ),
                TenantDef(
                    name="newcomer", kind="poisson", rate=1200.0, batch=8,
                    join=0.35, range_lo=0.4, range_hi=0.7,
                ),
                TenantDef(
                    name="leaver", kind="poisson", rate=1200.0, batch=8,
                    leave=0.6, range_lo=0.7, range_hi=1.0,
                ),
            ),
            phases=(
                PhaseSpec("early", duration=1.0),
                PhaseSpec("late", duration=1.0),
            ),
        ),
        Scenario(
            name="dataset-hotswap",
            engine="tenancy",
            title="Dataset hot-swap under a training neighbor",
            description=(
                "An open-loop reader flips from the first dataset half to "
                "the second at the midpoint (a new dataset version going "
                "live) while a closed-loop trainer keeps its cache-resident "
                "epoch walk. Checks the swap is clean in the sample-order "
                "witness and the trainer is unperturbed."
            ),
            horizon=0.04,
            tenants=(
                TenantDef(
                    name="reader", kind="poisson", rate=2000.0, batch=8,
                    range_lo=0.0, range_hi=0.5,
                    swap_at=0.5, swap_lo=0.5, swap_hi=1.0,
                ),
                TenantDef(
                    name="trainer", kind="train", batch=16, concurrency=2,
                    weight=2.0, range_lo=0.0, range_hi=0.5,
                ),
            ),
            phases=(
                PhaseSpec("v1", duration=1.0),
                PhaseSpec("v2", duration=1.0),
            ),
        ),
        Scenario(
            name="media-slow-drip",
            engine="tenancy",
            title="Slow-drip media degradation on one tenant",
            description=(
                "A victim tenant's media error rate ramps linearly from "
                "zero to 15% across the run (a device dying slowly); a "
                "bystander shares the node. Checks failures concentrate in "
                "late phases and the bystander's counters stay clean."
            ),
            horizon=0.04,
            tenants=(
                TenantDef(
                    name="victim", kind="poisson", rate=2000.0, batch=8,
                    fault_rate=0.15, range_lo=0.0, range_hi=0.5,
                ),
                TenantDef(
                    name="bystander", kind="poisson", rate=1000.0, batch=8,
                    range_lo=0.5, range_hi=1.0,
                ),
            ),
            phases=(
                PhaseSpec("clean", duration=1.0),
                PhaseSpec("drip", duration=1.0),
                PhaseSpec("sick", duration=1.0),
            ),
        ),
        Scenario(
            name="rolling-upgrade",
            engine="cluster",
            title="Rolling node upgrade wave under live traffic",
            description=(
                "Four replicated storage nodes take a staggered "
                "crash/rejoin wave (an in-place upgrade) while a trainer "
                "and an SLO-bound server keep their traffic up. Checks "
                "zero-loss failover, handoff/rewarm counts, and bounded "
                "per-phase tails. Single client: like the sanitizer sweep "
                "targets, cluster scenarios falsify tiebreak dependence in "
                "the failover datapath, not arrival races between "
                "symmetric clients."
            ),
            horizon=0.02,
            num_samples=4096,
            sample_bytes=32 * 1024,
            storage=4,
            clients=1,
            replicas=2,
            tenants=(
                TenantDef(
                    name="train", kind="train", batch=16, concurrency=4,
                    weight=2.0, slo_latency=5e-3, range_lo=0.0, range_hi=0.5,
                ),
                TenantDef(
                    name="serve", kind="poisson", rate=1500.0, batch=8,
                    slo_latency=2e-3, range_lo=0.5, range_hi=1.0,
                ),
            ),
            phases=(
                PhaseSpec("wave1", duration=1.0),
                PhaseSpec("wave2", duration=1.0),
            ),
            events=rolling_upgrade(4, start=0.12, stagger=0.21, downtime=0.07),
        ),
        Scenario(
            name="regional-failover",
            engine="cluster",
            title="Regional failover: two nodes down together",
            description=(
                "Nodes 4 and 5 of six (a 'region') crash at the same "
                "instant and rejoin together later. Shards with both "
                "replicas in the region park until rejoin; everything else "
                "fails over. Checks no loss, recovery accounting, and the "
                "outage phase's tail. Single client, same envelope rationale "
                "as rolling-upgrade."
            ),
            horizon=0.02,
            num_samples=4096,
            sample_bytes=32 * 1024,
            storage=6,
            clients=1,
            replicas=2,
            tenants=(
                TenantDef(
                    name="train", kind="train", batch=16, concurrency=4,
                    weight=2.0, range_lo=0.0, range_hi=0.5,
                ),
                TenantDef(
                    name="serve", kind="poisson", rate=2500.0, batch=8,
                    slo_latency=2e-3, range_lo=0.5, range_hi=1.0,
                ),
            ),
            phases=(
                PhaseSpec("pre", duration=1.0),
                PhaseSpec("outage", duration=1.0),
                PhaseSpec("post", duration=1.0),
            ),
            events=(
                EventSpec("node_crash", at=0.35, until=0.65, target=4),
                EventSpec("node_crash", at=0.35, until=0.65, target=5),
            ),
        ),
        Scenario(
            name="pushdown-surge",
            engine="xform",
            title="Transform-tier surge with a worker crash",
            description=(
                "Inference load ramps to 2.5x through the pushdown "
                "transform tier while transform worker 0 crashes mid-surge "
                "and rejoins. Checks re-dispatch accounting, transform-wait "
                "tails per phase, and the cost-placement boundary under "
                "pressure."
            ),
            horizon=0.01,
            num_samples=2048,
            sample_bytes=64 * 1024,
            storage=2,
            clients=2,
            replicas=1,
            stages="parse,augment:0.5",
            workers=2,
            tenants=(
                TenantDef(
                    name="train", kind="train", batch=16, concurrency=4,
                    weight=2.0, range_lo=0.0, range_hi=0.5,
                ),
                TenantDef(
                    name="infer", kind="poisson", rate=2000.0, batch=8,
                    slo_latency=5e-3, range_lo=0.5, range_hi=1.0,
                ),
            ),
            phases=(
                PhaseSpec("ramp", duration=1.0, shape="ramp", level=2.5, steps=3),
                PhaseSpec("surge", duration=1.0, level=2.5),
                PhaseSpec("cool", duration=1.0, shape="ramp", level=1.0, steps=2),
            ),
            events=(
                EventSpec("worker_crash", at=0.3, until=0.6, target=0),
            ),
        ),
        Scenario(
            name="diurnal-day",
            engine="fluid",
            title="Hybrid-fidelity day: diurnal cycle, churn, lane outage",
            description=(
                "Two fluid cohorts ride a day curve: nighttime trough, a "
                "diurnal daytime hump, a flash spike, and an evening "
                "wind-down, with one cohort active only mid-day (churn) "
                "and a lane outage during the spike. Checks the "
                "tagged-flow digests and integer-exact bulk counts per "
                "phase."
            ),
            horizon=120.0,
            sample_bytes=256 * 1024,
            lanes=4,
            tagged=2,
            users=64,
            tenants=(
                TenantDef(name="home", kind="poisson", rate=0.6),
                TenantDef(
                    name="work", kind="poisson", rate=0.4,
                    join=0.1, leave=0.9, users=48,
                ),
            ),
            phases=(
                PhaseSpec("night", duration=1.0, level=0.5),
                PhaseSpec(
                    "day", duration=2.0, shape="diurnal", level=1.2,
                    amplitude=0.6, steps=8,
                ),
                PhaseSpec("flash", duration=0.25, level=3.0),
                PhaseSpec("evening", duration=1.0, shape="ramp", level=0.6,
                          steps=3),
            ),
            events=(
                EventSpec("lane_outage", at=0.55, until=0.6, target=0),
            ),
        ),
    ]
    out: Dict[str, Scenario] = {}
    for scn in scenarios:
        scn.validate()
        out[scn.name] = scn
    return out


SCENARIOS: Dict[str, Scenario] = _pack()


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> Scenario:
    scn = SCENARIOS.get(name)
    if scn is None:
        raise ConfigError(
            f"unknown scenario {name!r} (have: {', '.join(scenario_names())})"
        )
    return scn
