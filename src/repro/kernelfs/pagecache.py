"""Linux page-cache model (4 KB pages, LRU).

The kernel read path checks the page cache page by page; misses are
coalesced into contiguous block-layer requests.  Random sample reads
over a dataset much larger than memory mostly miss — which is exactly
the regime the paper's microbenchmarks put Ext4 in.
"""

from __future__ import annotations

from ..errors import ConfigError
from .lru import LRUCache

__all__ = ["PageCache", "PAGE_SIZE"]

PAGE_SIZE = 4096


class PageCache:
    """Per-filesystem page cache keyed by (inode, page index)."""

    def __init__(self, capacity_bytes: int, name: str = "pagecache") -> None:
        if capacity_bytes < PAGE_SIZE:
            raise ConfigError("page cache smaller than one page")
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self._lru: LRUCache[tuple[int, int], bool] = LRUCache(
            self.capacity_pages, name
        )

    # -- queries --------------------------------------------------------------
    @staticmethod
    def page_span(offset: int, nbytes: int) -> range:
        """Page indices covered by the byte range."""
        if nbytes <= 0:
            raise ConfigError("page_span needs a positive size")
        first = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        return range(first, last + 1)

    def lookup(self, inode: int, offset: int, nbytes: int) -> list[range]:
        """Check all pages of a read; returns *missing* page runs.

        Each returned range is a maximal run of consecutive missing
        pages — the block layer submits one request per run.
        Present pages are promoted (LRU touch).
        """
        missing: list[range] = []
        run_start = None
        span = self.page_span(offset, nbytes)
        for page in span:
            if self._lru.get((inode, page)) is None:
                if run_start is None:
                    run_start = page
            else:
                if run_start is not None:
                    missing.append(range(run_start, page))
                    run_start = None
        if run_start is not None:
            missing.append(range(run_start, span.stop))
        return missing

    def fill(self, inode: int, pages: range) -> None:
        """Insert pages after a block-layer read completes."""
        for page in pages:
            self._lru.put((inode, page), True)

    def invalidate_inode(self, inode: int) -> None:
        """Drop all pages of one inode (O(cache) — test/teardown use only)."""
        stale = [k for k in self._lru if k[0] == inode]
        for key in stale:
            self._lru.discard(key)

    @property
    def cached_pages(self) -> int:
        return len(self._lru)

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def __repr__(self) -> str:
        return (
            f"<PageCache {self.cached_pages}/{self.capacity_pages} pages "
            f"hit_rate={self.hit_rate:.2f}>"
        )
