"""Kernel I/O stack baseline: VFS + Ext4 + page cache + block layer."""

from .ext4 import Ext4FD, Ext4File, Ext4FileSystem, READ_SEGMENT_BYTES
from .lru import LRUCache
from .pagecache import PAGE_SIZE, PageCache

__all__ = [
    "Ext4FileSystem",
    "Ext4File",
    "Ext4FD",
    "READ_SEGMENT_BYTES",
    "PageCache",
    "PAGE_SIZE",
    "LRUCache",
]
