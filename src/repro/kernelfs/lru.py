"""Bounded LRU sets/maps used by the kernel cache models.

The kernel baseline needs three caches — dentries, inodes, and the page
cache — all with the same recency semantics: lookup promotes, insert
evicts the coldest entry past capacity.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, Optional, TypeVar

from ..errors import ConfigError

__all__ = ["LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A capacity-bounded mapping with least-recently-used eviction."""

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ConfigError("LRU capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._entries: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        """Membership test without recency promotion or stats."""
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def get(self, key: K) -> Optional[V]:
        """Lookup with promotion; records hit/miss. None on miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: K, value: V) -> Optional[tuple[K, V]]:
        """Insert/refresh; returns the evicted (key, value) if any."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return None
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self.evictions += 1
            return self._entries.popitem(last=False)
        return None

    def discard(self, key: K) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<LRUCache {self.name!r} {len(self._entries)}/{self.capacity} "
            f"hit_rate={self.hit_rate:.2f}>"
        )
