"""Ext4-over-NVMe baseline: the kernel I/O stack DLFS is compared against.

Models the costs Fig 2(b) of the paper attributes to the generic stack:

* **syscall boundary** — mode-switch pair per open/read/close;
* **VFS** — per-component dentry walk, with a bounded dentry cache whose
  misses read a directory block from the device;
* **inode/extent management** — bounded inode cache; misses read an
  inode-table block; every read pays an extent-tree walk;
* **page cache** — 4 KB pages, LRU; missing runs become block requests;
* **block layer + interrupts** — request construction per missing run,
  the issuing thread *blocks* (releases its core, two context switches)
  and an interrupt fires on completion;
* **copy_to_user** — kernel-to-user copy of the payload.

Large reads are served in ``read_segment_bytes`` slices, sequentially,
as the synchronous read path does for uncached random I/O.  All CPU
costs execute on the caller's :class:`~repro.hw.cpu.BoundThread`, so
core contention and Ext4's multi-core scaling (Ext4-MC) emerge from the
simulation rather than being assumed.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..errors import ConfigError, FileNotFound, InvalidHandle
from ..hw import NVMeDevice
from ..hw.cpu import BoundThread
from ..hw.platform import GB, KB, OSSpec
from ..sim import Environment, Event, Tally
from .pagecache import PAGE_SIZE, PageCache
from .lru import LRUCache

__all__ = ["Ext4FileSystem", "Ext4File", "Ext4FD"]

#: Sync read path slice size (kernel readahead window for ext4 default).
READ_SEGMENT_BYTES = 128 * KB
#: Metadata region reserved at the top of the device for directory and
#: inode-table blocks.
META_REGION_BYTES = 1 * GB


@dataclass(frozen=True)
class Ext4File:
    """One regular file: a single contiguous extent (mkfs-time layout)."""

    path: str
    inode: int
    device_offset: int
    length: int


@dataclass(eq=False)
class Ext4FD:
    """An open file descriptor."""

    _ids = itertools.count(3)  # 0-2 are stdio, as tradition demands

    file: Ext4File
    fd: int = field(default_factory=lambda: next(Ext4FD._ids))
    closed: bool = False


class Ext4FileSystem:
    """A kernel file system instance over one NVMe device."""

    def __init__(
        self,
        env: Environment,
        device: NVMeDevice,
        os_spec: Optional[OSSpec] = None,
        page_cache_bytes: int = 4 * GB,
        dentry_cache_entries: int = 262_144,
        inode_cache_entries: int = 262_144,
    ) -> None:
        self.env = env
        self.device = device
        self.os = os_spec or OSSpec()
        self.os.validate()
        if device.capacity <= META_REGION_BYTES:
            raise ConfigError("device too small for the metadata region")
        self.page_cache = PageCache(page_cache_bytes, name=f"{device.name}.pc")
        self.dentries: LRUCache[str, int] = LRUCache(
            dentry_cache_entries, name=f"{device.name}.dentries"
        )
        self.inodes: LRUCache[int, Ext4File] = LRUCache(
            inode_cache_entries, name=f"{device.name}.inodes"
        )
        self._files: dict[str, Ext4File] = {}
        self._next_inode = 16
        self._meta_base = device.capacity - META_REGION_BYTES
        self._meta_blocks = META_REGION_BYTES // PAGE_SIZE
        self.open_latency = Tally(f"{device.name}.open_latency")
        self.read_latency = Tally(f"{device.name}.read_latency")

    # -- namespace ----------------------------------------------------------
    def register_file(self, path: str, device_offset: int, length: int) -> Ext4File:
        """Create a file whose data already sits at ``device_offset``.

        Ingest-time helper: the benchmarks lay data out via
        :class:`~repro.data.DatasetLayout` and register the resulting
        extents here, mirroring a staged dataset.
        """
        if path in self._files:
            raise ConfigError(f"file {path!r} already exists")
        if length <= 0:
            raise ConfigError("file length must be positive")
        if device_offset % PAGE_SIZE:
            raise ConfigError(
                "ext4 allocates whole 4 KB blocks; extents must be "
                f"page-aligned (got {device_offset})"
            )
        if device_offset < 0 or device_offset + length > self._meta_base:
            raise ConfigError(
                f"extent [{device_offset}, {device_offset + length}) "
                "overlaps the metadata region or exceeds the device"
            )
        f = Ext4File(path, self._next_inode, device_offset, length)
        self._next_inode += 1
        self._files[path] = f
        return f

    @property
    def num_files(self) -> int:
        return len(self._files)

    def _meta_block_offset(self, key: str) -> int:
        """Device offset of the directory/inode block backing ``key``."""
        block = zlib.crc32(key.encode()) % self._meta_blocks
        return self._meta_base + block * PAGE_SIZE

    # -- metadata reads -------------------------------------------------------
    def _read_meta_block(
        self, thread: BoundThread, key: str
    ) -> Generator[Event, Any, None]:
        """One 4 KB metadata read: block request + interrupt-driven wait."""
        yield from thread.run(self.os.block_request)
        cmd = self.device.read(self._meta_block_offset(key), PAGE_SIZE)
        yield from thread.run(self.os.context_switch)  # schedule out
        yield from thread.block(cmd.completion)
        yield from thread.run(self.os.interrupt_overhead + self.os.context_switch)

    # -- POSIX surface ------------------------------------------------------------
    def open(self, thread: BoundThread, path: str) -> Generator[Event, Any, Ext4FD]:
        """``open(2)``: path walk + inode fetch.  Returns an FD."""
        t0 = self.env.now
        yield from thread.run(self.os.syscall_overhead)
        file = self._files.get(path)
        if file is None:
            raise FileNotFound(path)
        # Path walk: each component costs a dentry-cache probe; the final
        # component's miss reads a directory block.
        components = path.split("/")
        for depth in range(1, len(components) + 1):
            prefix = "/".join(components[:depth])
            yield from thread.run(self.os.dentry_lookup)
            if self.dentries.get(prefix) is None:
                yield from self._read_meta_block(thread, "D:" + prefix)
                self.dentries.put(prefix, file.inode)
        # Inode fetch: cache miss reads an inode-table block.
        yield from thread.run(self.os.inode_lookup)
        if self.inodes.get(file.inode) is None:
            yield from self._read_meta_block(thread, f"I:{file.inode}")
            self.inodes.put(file.inode, file)
        self.open_latency.observe(self.env.now - t0)
        return Ext4FD(file=file)

    def read(
        self, thread: BoundThread, fd: Ext4FD, offset: int, nbytes: int
    ) -> Generator[Event, Any, int]:
        """``pread(2)``: page-cache-mediated read of ``nbytes``."""
        if fd.closed:
            raise InvalidHandle(f"fd {fd.fd} is closed")
        if offset < 0 or nbytes <= 0:
            raise ConfigError("offset must be >= 0 and nbytes positive")
        t0 = self.env.now
        file = fd.file
        nbytes = min(nbytes, file.length - offset)
        if nbytes <= 0:
            return 0
        yield from thread.run(self.os.syscall_overhead)
        # Extent-tree walk to map the file range to device blocks.
        yield from thread.run(self.os.inode_lookup / 4)
        done = 0
        while done < nbytes:
            seg = min(READ_SEGMENT_BYTES, nbytes - done)
            yield from self._read_segment(thread, file, offset + done, seg)
            done += seg
        # Kernel -> user copy of the payload.
        yield from thread.run(nbytes / self.os.copy_to_user_bandwidth)
        self.read_latency.observe(self.env.now - t0)
        return nbytes

    def _read_segment(
        self, thread: BoundThread, file: Ext4File, offset: int, nbytes: int
    ) -> Generator[Event, Any, None]:
        """One synchronous slice of the read path."""
        span = PageCache.page_span(offset, nbytes)
        yield from thread.run(self.os.page_cache_op * len(span))
        missing = self.page_cache.lookup(file.inode, offset, nbytes)
        if not missing:
            return
        # One block request per missing run, submitted together, then the
        # thread sleeps until all complete (sync readpages behaviour).
        completions = []
        for run in missing:
            yield from thread.run(self.os.block_request)
            # Extents are page-aligned, so file page p sits at
            # device_offset + p * PAGE_SIZE.
            dev_offset = file.device_offset + run.start * PAGE_SIZE
            length = len(run) * PAGE_SIZE
            cmd = self.device.read(dev_offset, length)
            completions.append(cmd.completion)
        yield from thread.run(self.os.context_switch)  # schedule out
        yield from thread.block(self.env.all_of(completions))
        yield from thread.run(
            self.os.interrupt_overhead * len(missing) + self.os.context_switch
        )
        for run in missing:
            self.page_cache.fill(file.inode, run)

    def close(self, thread: BoundThread, fd: Ext4FD) -> Generator[Event, Any, None]:
        """``close(2)``."""
        if fd.closed:
            raise InvalidHandle(f"fd {fd.fd} already closed")
        yield from thread.run(self.os.syscall_overhead)
        fd.closed = True

    def ingest_dataset(
        self,
        dataset,
        sample_indices=None,
        start_offset: int = 0,
    ) -> dict[int, Ext4File]:
        """Register one file per sample, each in its own 4 KB-aligned extent.

        Ext4 allocates whole blocks, so every file is padded up to the
        next page boundary (small files waste the tail of their block —
        a real Ext4 effect the page-granular read path then amplifies).
        Returns {sample index -> file}.
        """
        import numpy as np

        if start_offset % PAGE_SIZE:
            raise ConfigError("start_offset must be page-aligned")
        if sample_indices is None:
            sample_indices = range(dataset.num_samples)
        offset = start_offset
        out: dict[int, Ext4File] = {}
        for i in sample_indices:
            i = int(i)
            length = int(dataset.sizes[i])
            out[i] = self.register_file(dataset.sample_name(i), offset, length)
            padded = (length + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE
            offset += padded
            if offset > self._meta_base:
                raise ConfigError("dataset does not fit on the device")
        return out

    def warm_metadata(self) -> None:
        """Pre-populate the dentry and inode caches for all files.

        The paper reports five-run averages, after which the kernel's
        metadata caches are warm; throughput figures (6, 8, 9, 12) use
        this state, while the lookup-time figure (10) measures cold
        opens.  No simulated time is charged.
        """
        for path, file in self._files.items():
            components = path.split("/")
            for depth in range(1, len(components) + 1):
                self.dentries.put("/".join(components[:depth]), file.inode)
            self.inodes.put(file.inode, file)

    def read_sample(
        self, thread: BoundThread, path: str
    ) -> Generator[Event, Any, int]:
        """open + full read + close — one sample fetch, as the paper's
        Ext4 microbenchmark performs it."""
        fd = yield from self.open(thread, path)
        file_len = fd.file.length
        got = yield from self.read(thread, fd, 0, file_len)
        yield from self.close(thread, fd)
        return got

    def __repr__(self) -> str:
        return f"<Ext4FileSystem on {self.device.name!r} files={self.num_files}>"
