"""The DLFS backend reactor: prep / post / poll / copy (paper §III-C, Fig 4).

One reactor per DLFS client runs pinned to a core (SPDK busy-polling).
Its inbox is the **shared completion queue (SCQ)**: every I/O qpair's
completion sink points at it, and frontend read jobs arrive through it
too, so a single poll loop balances progress across all NVMe targets —
exactly the design of Fig 4(b).

Flow per the paper's four stages:

* **prep** — a job's samples are resolved through the in-memory sample
  directory; misses become fetch intents on the per-device *request
  posting queue* (RPQ), each allocated hugepage cache chunks (one data
  chunk per sample by default; larger spans are disassembled into
  chunk-size SPDK requests);
* **post** — intents are posted to the device's I/O qpair up to its
  queue depth;
* **poll** — the reactor consumes SCQ completions (while holding its
  core: busy-poll semantics);
* **copy** — delivered samples are copied from the sample cache to the
  application buffer, inline on the reactor core or by the copy-thread
  pool, and the directory V bit is set.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

import numpy as np

from ..cluster.serving import NodeDown, NodeUp
from ..errors import (
    ConfigError,
    MediaError,
    NotMounted,
    RequestTimeout,
    SampleReadError,
)
from ..faults import FaultInjector, RecoveryPolicy
from ..hw import STATUS_ABORTED_RESET, STATUS_MEDIA_ERROR, STATUS_OK
from ..hw.cpu import BoundThread, Core
from ..hw.platform import CPUSpec, NetworkSpec
from ..obs import NULL_METRICS, NULL_TRACER
from ..sim import Environment, Event, RecoveryStats, Store, Tally, ThroughputMeter
from ..sim import rng as sim_rng
from ..spdk import IOQPair, SPDKRequest, aligned_span
from .batching import REQ_CHUNK, ChunkPlan
from .cache import RESIDENT, SampleCache
from .directory import LocalValidBits, SampleDirectory

__all__ = ["Reactor", "ReadJob", "LookupJob", "CopyPool", "SHUTDOWN"]

#: Inbox sentinel: stop the reactor.
SHUTDOWN = object()
#: Inbox sentinel: re-run the pump (memory freed by a copy worker).
KICK = object()


class _DeadlineCheck:
    """A posted request's deadline timer fired; check if it is stuck."""

    __slots__ = ("req", "attempt")

    def __init__(self, req: SPDKRequest, attempt: int) -> None:
        self.req = req
        self.attempt = attempt


class _HedgeCheck:
    """A posted request's hedge timer fired; maybe post a replica twin."""

    __slots__ = ("req", "attempt")

    def __init__(self, req: SPDKRequest, attempt: int) -> None:
        self.req = req
        self.attempt = attempt


class _RetryRequest:
    """A backoff timer elapsed; the request is ready to repost."""

    __slots__ = ("req",)

    def __init__(self, req: SPDKRequest) -> None:
        self.req = req


class _QPairReset:
    """Forced (plan-injected) reset of one shard's qpair."""

    __slots__ = ("shard",)

    def __init__(self, shard: int) -> None:
        self.shard = shard


class _QPairUp:
    """A disconnected qpair finished reconnecting."""

    __slots__ = ("shard",)

    def __init__(self, shard: int) -> None:
        self.shard = shard


@dataclass(eq=False)
class ReadJob:
    """A frontend read request: deliver these samples, then fire ``done``."""

    samples: np.ndarray
    done: Event
    #: Chunk-mode requirement per sample: (kind, id); None => per-sample
    #: fetches through the directory (base / sample-level batching).
    requirements: Optional[list[tuple[int, int]]] = None
    #: Chunk-mode lookahead: requirement keys to prefetch with no waiter.
    prefetch: tuple = ()
    submit_time: float = 0.0
    remaining: int = field(init=False)
    #: Zero-copy mode: cache keys handed to the application, released
    #: only when it moves on to the next batch.
    retained: list = field(default_factory=list)
    #: Per-sample failures (:class:`repro.errors.SampleReadError`): the
    #: job still completes — graceful degradation — with the losses here.
    errors: list = field(default_factory=list)
    #: Observability: the batch span covering this job (None = untraced).
    span: Optional[object] = None
    #: Multi-tenant serving: owning tenant name (None = untagged, which
    #: schedules at weight 1 when a FairScheduler is attached).
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        self.remaining = len(self.samples)
        if self.requirements is not None and len(self.requirements) != len(self.samples):
            raise ConfigError("requirements must align with samples")


@dataclass(eq=False)
class LookupJob:
    """A metadata-only job (``dlfs_open``): resolve a name or index."""

    done: Event
    name: Optional[str] = None
    index: Optional[int] = None


class _PendingFetch:
    """One in-flight span: its cache slot, parts, and waiting deliveries."""

    __slots__ = ("key", "shard", "lane", "offset", "nbytes", "samples",
                 "parts_remaining", "waiters", "posted", "failed", "span",
                 "tenant", "done_parts", "hedged_parts")

    def __init__(self, key, shard: int, offset: int, nbytes: int,
                 samples: np.ndarray, tenant: Optional[str] = None) -> None:
        self.key = key
        self.shard = shard
        #: Serving lane (storage node) the fetch is routed to.  Equal to
        #: ``shard`` outside cluster mode; the front-end balancer picks
        #: it at creation and rewrites it on failover.
        self.lane = shard
        self.offset = offset          # aligned layout offset
        self.nbytes = nbytes          # aligned span size
        self.samples = samples        # samples validated on completion
        self.parts_remaining = 0
        self.waiters: list[tuple[ReadJob, int]] = []
        self.posted = False
        #: Set to the first unrecoverable error; once set, remaining
        #: parts only count down so the span can be retired exactly once.
        self.failed: Optional[BaseException] = None
        #: Observability: trace span covering the fetch (None = untraced).
        self.span: Optional[object] = None
        #: Tenant that first requested the span (charged for it by the
        #: fair scheduler); later cross-tenant waiters share it free.
        self.tenant = tenant
        #: Cluster mode only (set by the balancer at routing): layout
        #: offsets of parts already settled — landed or terminally
        #: failed exactly once; a hedge twin's later completion is
        #: dropped on membership — and of parts already hedged.
        self.done_parts: Optional[set] = None
        self.hedged_parts: Optional[set] = None


class CopyPool:
    """Copy threads (paper Fig 4a): memcpy offload to extra cores."""

    def __init__(self, env: Environment, cores: list[Core], kick: Callable[[], None]) -> None:
        if not cores:
            raise ConfigError("CopyPool needs at least one core")
        self.env = env
        self.tasks: Store = Store(env, name="copypool.tasks")
        self._kick = kick
        self.num_workers = len(cores)
        self._shut_down = False
        for core in cores:
            env.process(self._worker(core), name=f"copy@{core.name}")

    def submit(self, cost: float, callback: Callable[[], None]) -> None:
        self.tasks.put_nowait((cost, callback))

    def _worker(self, core: Core) -> Generator[Event, Any, None]:
        while True:
            task = yield self.tasks.get()
            if task is SHUTDOWN:
                return
            cost, callback = task
            yield from core.execute(cost)
            callback()
            self._kick()

    def shutdown(self, workers: Optional[int] = None) -> None:
        """Stop the copy workers (all of them by default).

        Idempotent with no ``workers`` argument, so the owning reactor
        can call it unconditionally at drain time without double-killing
        a pool the application already shut down.
        """
        if workers is None:
            if self._shut_down:
                return
            workers = self.num_workers
        self._shut_down = True
        for _ in range(workers):
            self.tasks.put_nowait(SHUTDOWN)


class Reactor:
    """The per-client DLFS backend loop."""

    def __init__(
        self,
        env: Environment,
        thread: BoundThread,
        qpairs: dict[int, IOQPair],
        cache: SampleCache,
        vbits: LocalValidBits,
        directory: SampleDirectory,
        plan: ChunkPlan,
        cpu_spec: CPUSpec,
        net_spec: NetworkSpec,
        select_overhead: float = 0.15e-6,
        completion_overhead: float = 0.20e-6,
        injected_compute: float = 0.0,
        copy_pool: Optional[CopyPool] = None,
        inbox: Optional[Store] = None,
        use_scq: bool = True,
        zero_copy: bool = False,
        injector: Optional[FaultInjector] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tenancy: Optional[object] = None,
        balancer: Optional[object] = None,
        name: str = "dlfs.reactor",
    ) -> None:
        self.env = env
        self.thread = thread
        self.qpairs = qpairs
        self.cache = cache
        self.vbits = vbits
        self.directory = directory
        self.plan = plan
        self.cpu = cpu_spec
        self.net = net_spec
        self.select_overhead = select_overhead
        self.completion_overhead = completion_overhead
        self.injected_compute = injected_compute
        self.copy_pool = copy_pool
        #: §III-C2 ablation: with the shared completion queue (SCQ)
        #: disabled, every completion pays a scan over all per-qpair
        #: completion queues instead of one consolidated check.
        self.use_scq = use_scq
        #: Paper future work: hand out cache references instead of
        #: copying into application buffers.
        self.zero_copy = zero_copy
        self.name = name

        #: The SCQ: completions from every qpair plus frontend jobs.
        self.inbox: Store = (
            inbox if inbox is not None else Store(env, name=f"{name}.scq")
        )
        self._rpq: dict[int, deque[_PendingFetch]] = {
            shard: deque() for shard in qpairs
        }
        self._postq: dict[int, deque[SPDKRequest]] = {
            shard: deque() for shard in qpairs
        }
        #: Multi-tenant serving (pay-for-use: None keeps the single-job
        #: datapath bit-identical).  When set, the runtime's scheduler
        #: replaces the rpq/postq deques with weighted-fair lanes.
        self.tenancy = tenancy
        if tenancy is not None:
            tenancy.attach(self)
        #: Cluster serving tier (pay-for-use: None keeps the single-node
        #: datapath bit-identical).  A :class:`FrontEndBalancer` routes
        #: each fetch to a replica lane, fails it over when the lane
        #: dies, and supplies deadline-driven hedged reads.
        self.balancer = balancer
        if balancer is not None and tenancy is not None:
            raise ConfigError(
                "cluster balancer and tenancy SFQ lanes are mutually "
                "exclusive (the balancer arbitrates in cluster mode)"
            )
        self._pending: dict[object, _PendingFetch] = {}
        self.read_meter = ThroughputMeter(env, name=f"{name}.delivered")
        self.job_latency = Tally(f"{name}.job_latency")
        self.lookup_time = Tally(f"{name}.lookup_time")
        self.samples_delivered = 0
        self._inline_copy_cost = 0.0
        self._inline_done_list: list[Callable[[], None]] = []
        self._stopped = env.event()
        self._stopping = False

        #: Observability (null objects until install_observability).
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self._layers = NULL_METRICS.layers("")
        self._h_job = NULL_METRICS.histogram("")
        self._c_delivered = NULL_METRICS.counter("")

        #: Fault injection + recovery (pay-for-use: both default off and
        #: the healthy datapath is bit-identical with them unset).
        self.injector = injector
        self.recovery = recovery
        if injector is not None and not injector.plan.is_zero and recovery is None:
            raise ConfigError(
                "a non-zero fault plan needs a RecoveryPolicy "
                "(pass recovery=RecoveryPolicy())"
            )
        self.recovery_stats = RecoveryStats(env, name=f"{name}.recovery")
        self._pending_retries = 0
        self._jitter_rng: Optional[np.random.Generator] = None
        if recovery is not None:
            recovery.validate()
            self._jitter_rng = sim_rng(
                f"recovery.jitter.{name}",
                [recovery.seed, zlib.crc32(name.encode())],
            )
        if injector is not None and injector.resets_enabled:
            for shard in qpairs:
                env.process(
                    self._reset_driver(shard), name=f"{name}.reset[{shard}]"
                )

        self._process = env.process(self._run(), name=name)

    def install_observability(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle.

        Call before the simulation runs: recovery accounting is re-homed
        onto the shared registry, which only works while all counts are
        still zero.
        """
        self.tracer = obs.tracer
        self.metrics = obs.metrics
        self._layers = obs.metrics.layers(self.name)
        self._h_job = obs.metrics.histogram("reactor.job_latency")
        self._c_delivered = obs.metrics.counter("reactor.samples_delivered")
        if obs.metrics.enabled:
            self.recovery_stats = RecoveryStats(
                self.env, name=f"{self.name}.recovery", registry=obs.metrics
            )

    # -- frontend entry points (called from application processes) -------------
    def submit(self, job) -> None:
        self.inbox.put_nowait(job)

    def stop(self) -> Event:
        """Request shutdown; returns an event firing once the core is freed."""
        self.inbox.put_nowait(SHUTDOWN)
        return self._stopped

    # -- main loop -----------------------------------------------------------------
    def _run(self) -> Generator[Event, Any, None]:
        yield from self.thread.acquire()  # busy-polling: core held for life
        try:
            while True:
                # Analytic idle fast-forward: the Store-backed SCQ wakes
                # us exactly when work lands, so empty poll iterations
                # are never simulated one by one — but the core *is*
                # spinning for that whole gap, so charge it to the layer
                # breakdown as poll_idle busy-time.
                idle_from = self.env.now
                msg = yield self.inbox.get()
                if self.env.now > idle_from:
                    self._layers.add("poll_idle", self.env.now - idle_from)
                # Completions dominate the SCQ: dispatch them without
                # the _dispatch generator hop.
                if type(msg) is SPDKRequest:
                    yield from self._on_completion(msg)
                    stop = False
                else:
                    stop = yield from self._dispatch(msg)
                # Drain whatever else is already queued this instant.
                while not stop and len(self.inbox):
                    msg = yield self.inbox.get()
                    if type(msg) is SPDKRequest:
                        yield from self._on_completion(msg)
                    else:
                        stop = yield from self._dispatch(msg)
                if stop:
                    yield from self._drain_on_stop()
                    return
                if self._pump_needed():
                    yield from self._pump()
        finally:
            self.thread.release()
            self._stopped.succeed()

    def _dispatch(self, msg) -> Generator[Event, Any, bool]:
        if isinstance(msg, SPDKRequest):
            yield from self._on_completion(msg)
        elif isinstance(msg, ReadJob):
            yield from self._on_job(msg)
        elif isinstance(msg, LookupJob):
            yield from self._on_lookup(msg)
        elif isinstance(msg, _RetryRequest):
            self._on_retry_ready(msg.req)
        elif isinstance(msg, _DeadlineCheck):
            self._on_deadline(msg)
        elif isinstance(msg, _QPairReset):
            self._reset_qpair(msg.shard, forced=True)
        elif isinstance(msg, _QPairUp):
            self._on_qpair_up(msg.shard)
        elif isinstance(msg, _HedgeCheck):
            self._on_hedge(msg)
        elif isinstance(msg, NodeDown):
            self._on_node_down(msg.lane)
        elif isinstance(msg, NodeUp):
            self._on_node_up(msg.lane)
        elif msg is KICK:
            pass
        elif msg is SHUTDOWN:
            self._stopping = True
            return True
        else:
            raise ConfigError(f"unknown reactor message: {msg!r}")
        return False

    # -- job intake (prep stage) -----------------------------------------------------
    def _on_lookup(self, job: LookupJob) -> Generator[Event, Any, None]:
        t0 = self.env.now
        try:
            if job.index is not None:
                result = self.directory.lookup_index(job.index)
            elif job.name is not None:
                result = self.directory.lookup_name(job.name)
            else:
                raise ConfigError("LookupJob needs a name or an index")
        except Exception as exc:
            # Failed lookups surface at the caller, not in the reactor.
            self._layers.add("prep", self.cpu.hash_cost)
            if self.cpu.hash_cost > 0.0:
                yield self.thread.delay(self.cpu.hash_cost)
            job.done.fail(exc)
            return
        cost = self.cpu.hash_cost + result.visits * self.cpu.tree_node_visit
        self._layers.add("prep", cost)
        if cost > 0.0:
            yield self.thread.delay(cost)
        self.lookup_time.observe(self.env.now - t0)
        job.done.succeed(result)

    def _on_job(self, job: ReadJob) -> Generator[Event, Any, None]:
        job.submit_time = self.env.now
        if self.tracer.enabled:
            job.span = self.tracer.start(
                "reactor.batch", track=self.name, cat="reactor",
                samples=len(job.samples),
            )
        if len(job.samples) == 0:
            if job.span is not None:
                job.span.finish(delivered=0)
            job.done.succeed(job)
            return
        if job.requirements is None:
            yield from self._intake_samples(job)
        else:
            yield from self._intake_requirements(job)
        # Cache hits at intake queued copies; charge them now.
        yield from self._flush_inline_copies()
        if self.injected_compute > 0.0:
            # Fig 7(b): application compute folded into the polling loop,
            # once per batch of samples, on the reactor's core.  Devices
            # and the fabric keep making progress; only completion
            # *processing* waits.
            yield from self._pump()
            self._layers.add("compute", self.injected_compute)
            yield from self.thread.run(self.injected_compute)

    def _intake_samples(self, job: ReadJob) -> Generator[Event, Any, None]:
        """Base / sample-level batching: per-sample directory lookups."""
        cost = 0.0
        for s in job.samples:
            s = int(s)
            result = self.directory.lookup_index(s)
            cost += (
                self.cpu.hash_cost
                + result.visits * self.cpu.tree_node_visit
                + self.cpu.request_setup
            )
            key = ("s", s)
            if self.vbits.is_valid(s) and self.cache.lookup(key) is not None:
                self._start_delivery(job, key, result.length)
                continue
            fetch = self._pending.get(key)
            if fetch is None:
                offset, nbytes = aligned_span(result.offset, result.length)
                fetch = _PendingFetch(
                    key, result.shard, offset, nbytes,
                    samples=np.array([s], dtype=np.int64),
                    tenant=job.tenant,
                )
                if self.tracer.enabled:
                    fetch.span = self.tracer.start(
                        "reactor.fetch", track=self.name, parent=job.span,
                        cat="reactor", key=str(key), nbytes=nbytes,
                    )
                self._pending[key] = fetch
                if self.balancer is not None:
                    fetch.lane = self.balancer.route(fetch)
                self._rpq[fetch.lane].append(fetch)
            fetch.waiters.append((job, result.length))
        self._layers.add("prep", cost)
        if cost > 0.0:
            yield self.thread.delay(cost)

    def _intake_requirements(self, job: ReadJob) -> Generator[Event, Any, None]:
        """Chunk-level batching: samples arrive via chunk / edge fetches."""
        cost = self.cpu.request_setup  # one bread dispatch
        sizes = self.directory.dataset.sizes
        for s, (kind, rid) in zip(job.samples, job.requirements):
            s = int(s)
            key = ("c", rid) if kind == REQ_CHUNK else ("e", rid)
            slot = self.cache.slot(key)
            if slot is not None and slot.state == RESIDENT:
                self.cache.hits += 1
                self._start_delivery(job, key, int(sizes[s]))
                continue
            self.cache.misses += 1
            fetch = self._ensure_fetch(
                key, kind, rid, parent=job.span, tenant=job.tenant
            )
            fetch.waiters.append((job, int(sizes[s])))
        for kind, rid in job.prefetch:
            key = ("c", rid) if kind == REQ_CHUNK else ("e", rid)
            slot = self.cache.slot(key)
            if slot is None and key not in self._pending:
                self._ensure_fetch(
                    key, kind, rid, parent=job.span, tenant=job.tenant
                )
        self._layers.add("prep", cost)
        if cost > 0.0:
            yield self.thread.delay(cost)

    def _ensure_fetch(
        self,
        key,
        kind: int,
        rid: int,
        parent: Optional[object] = None,
        tenant: Optional[str] = None,
    ) -> _PendingFetch:
        fetch = self._pending.get(key)
        if fetch is not None:
            return fetch
        if kind == REQ_CHUNK:
            shard, offset, nbytes = self.plan.chunk_span(rid)
            offset, nbytes = aligned_span(offset, nbytes)
            samples = self.plan.chunk_members[rid]
        else:
            loc = self.directory.layout.location(rid)
            shard = loc.shard
            offset, nbytes = aligned_span(loc.offset, loc.length)
            samples = np.array([rid], dtype=np.int64)
        fetch = _PendingFetch(key, shard, offset, nbytes, samples, tenant=tenant)
        if self.tracer.enabled:
            fetch.span = self.tracer.start(
                "reactor.fetch", track=self.name, parent=parent,
                cat="reactor", key=str(key), nbytes=nbytes,
            )
        self._pending[key] = fetch
        if self.balancer is not None:
            fetch.lane = self.balancer.route(fetch)
        self._rpq[fetch.lane].append(fetch)
        return fetch

    # -- post stage -------------------------------------------------------------------
    def _pump_needed(self) -> bool:
        """Cheap pre-check so the per-message loop can skip ``_pump``.

        ``_pump`` yields (and mutates state) only when it can post: some
        shard has queued work *and* a free qpair slot.  When that holds
        for no shard, the call is a no-op generator — skip the frame.
        """
        for shard, qp in self.qpairs.items():
            if qp.free_slots > 0 and (self._postq[shard] or self._rpq[shard]):
                return True
        return False

    def _pump(self) -> Generator[Event, Any, None]:
        if self.tenancy is not None:
            yield from self._pump_fair()
            return
        cost = 0.0
        for shard, qp in self.qpairs.items():
            postq = self._postq[shard]
            rpq = self._rpq[shard]
            while qp.free_slots > 0:
                if not postq:
                    if not rpq:
                        break
                    fetch = rpq[0]
                    slot = self.cache.try_insert(fetch.key, fetch.nbytes)
                    if slot is None:
                        break  # memory pressure; retried on next message
                    rpq.popleft()
                    chunk_size = self.cache.pool.chunk_size
                    # Cluster mode: the part's device offset is the
                    # layout offset shifted to where this lane maps the
                    # shard; ``rel`` keeps the layout offset so failover
                    # and hedging can re-translate for another replica.
                    delta = (
                        0 if self.balancer is None
                        else self.balancer.delta(fetch.shard, fetch.lane)
                    )
                    offset = fetch.offset
                    remaining = fetch.nbytes
                    ci = 0
                    while remaining > 0:
                        part = min(chunk_size, remaining)
                        postq.append(
                            SPDKRequest(
                                offset=offset + delta,
                                nbytes=part,
                                chunks=[slot.chunks[ci]],
                                tag=fetch,
                                parent_span=fetch.span,
                                rel=offset,
                            )
                        )
                        fetch.parts_remaining += 1
                        offset += part
                        remaining -= part
                        ci += 1
                    cost += self.cpu.request_setup * fetch.parts_remaining
                req = postq.popleft()
                if req.tag.failed is not None:
                    # A sibling part already doomed this span; don't
                    # waste a queue slot on it.
                    self._req_failed(req, req.tag.failed)
                    continue
                if self._already_settled(req):
                    continue  # hedge twin whose part already landed
                qp.post(req)
                if self.recovery is not None:
                    self._arm_watchdog(req)
                if self.balancer is not None and self.balancer.hedge_delay > 0.0:
                    self._arm_hedge(req)
                # Each doorbell write is serialized work on this core,
                # paid *between* posts: a submission burst therefore
                # never lands at one instant, and downstream FIFO
                # arrival order (NIC, target reactor, device command
                # processor) is fixed by post order — not by
                # same-timestamp event tiebreaks (SimSanitizer
                # invariant).
                self._layers.add("post", self.net.rdma_post_overhead)
                if self.net.rdma_post_overhead > 0.0:
                    yield self.thread.delay(self.net.rdma_post_overhead)
        if cost > 0.0:
            self._layers.add("post", cost)
            yield self.thread.delay(cost)

    def _pump_fair(self) -> Generator[Event, Any, None]:
        """Multi-tenant post stage: SFQ arbitration over queued work.

        Same mechanics as ``_pump`` — promote ready fetches into parts,
        post parts up to the qpair depth, pay the doorbell between posts
        (the SimSanitizer arrival-order invariant) — but *which* queued
        item goes next is decided by the fair scheduler: weighted start
        tags, priority classes with bounded bypass, per-tenant in-flight
        caps, and the cache-partition quota gate on promotions.
        """
        sched = self.tenancy.scheduler
        partition = self.tenancy.partition
        cost = 0.0
        for shard, qp in self.qpairs.items():
            while qp.free_slots > 0:
                entry = sched.select_part(shard)
                if entry is None:
                    fentry = sched.select_fetch(shard)
                    if fentry is None:
                        break
                    fetch = fentry.item
                    need = self.cache.chunks_needed(fetch.nbytes)
                    partition.reserve(fetch.tenant, fetch.key, need)
                    slot = self.cache.try_insert(fetch.key, fetch.nbytes)
                    if slot is None:
                        # Global memory pressure (not a quota denial);
                        # retried on the next message, like _pump.
                        partition.cancel(fetch.key)
                        break
                    sched.take(shard, fentry, "fetch")
                    chunk_size = self.cache.pool.chunk_size
                    offset = fetch.offset
                    remaining = fetch.nbytes
                    ci = 0
                    while remaining > 0:
                        part = min(chunk_size, remaining)
                        sched.enqueue_part_inherit(
                            shard,
                            SPDKRequest(
                                offset=offset,
                                nbytes=part,
                                chunks=[slot.chunks[ci]],
                                tag=fetch,
                                parent_span=fetch.span,
                            ),
                            fentry.start,
                        )
                        fetch.parts_remaining += 1
                        offset += part
                        remaining -= part
                        ci += 1
                    cost += self.cpu.request_setup * fetch.parts_remaining
                    continue  # reselect: the new parts now compete
                req = sched.take(shard, entry, "part")
                if req.tag.failed is not None:
                    self._req_failed(req, req.tag.failed)
                    continue
                qp.post(req)
                sched.on_posted(entry.tenant, shard)
                if self.recovery is not None:
                    self._arm_watchdog(req)
                self._layers.add("post", self.net.rdma_post_overhead)
                if self.net.rdma_post_overhead > 0.0:
                    yield self.thread.delay(self.net.rdma_post_overhead)
        if cost > 0.0:
            self._layers.add("post", cost)
            yield self.thread.delay(cost)

    # -- poll + copy stages -----------------------------------------------------------
    def _on_completion(self, req: SPDKRequest) -> Generator[Event, Any, None]:
        poll_cost = self.cpu.poll_iteration
        if not self.use_scq:
            # No SCQ: each completion round scans every qpair's CQ.
            poll_cost *= max(len(self.qpairs), 1)
        poll_cost += self.completion_overhead
        self._layers.add("poll", poll_cost)
        if poll_cost > 0.0:
            yield self.thread.delay(poll_cost)
        fetch: _PendingFetch = req.tag
        if self.tenancy is not None:
            # Every sink delivery closes exactly one post (retries and
            # reset-aborted parts are re-posted, and re-counted, later).
            self.tenancy.scheduler.on_complete(fetch.tenant, fetch.shard)
        if self.recovery is not None and req.status != STATUS_OK:
            self._recover(req)
            return
        if self._already_settled(req):
            return  # hedge twin: the other copy of this part landed first
        self._settle_part(req)
        fetch.parts_remaining -= 1
        if fetch.failed is not None:
            if fetch.parts_remaining == 0:
                self._finalize_failed(fetch)
            return
        if fetch.parts_remaining > 0:
            return
        # All parts of the span have landed: mark resident, set V bits.
        self.cache.mark_resident(fetch.key)
        self.vbits.set_valid_many(fetch.samples)
        if fetch.span is not None:
            fetch.span.finish(status="ok")
        del self._pending[fetch.key]
        if self.balancer is not None:
            self.balancer.fetch_done(fetch)
        for job, nbytes in fetch.waiters:
            self._start_delivery(job, fetch.key, nbytes)
        fetch.waiters.clear()
        # Copy work for this completion happens via _start_delivery; the
        # inline path charges it on this core inside the loop below.
        yield from self._flush_inline_copies()

    # -- failure recovery --------------------------------------------------------------
    def _already_settled(self, req: SPDKRequest) -> bool:
        """Cluster hedging: has this (fetch, part) already been accounted?

        Each layout part settles — lands or terminally fails — exactly
        once; the losing copy of a hedged pair is dropped here.  Always
        False outside cluster mode (``done_parts`` is None).
        """
        fetch: _PendingFetch = req.tag
        if fetch.done_parts is None or req.rel not in fetch.done_parts:
            return False
        self.recovery_stats.incr("hedges_dropped")
        return True

    def _settle_part(self, req: SPDKRequest) -> None:
        fetch: _PendingFetch = req.tag
        if fetch.done_parts is not None:
            fetch.done_parts.add(req.rel)

    def _req_failed(self, req: SPDKRequest, exc: BaseException) -> None:
        """Settle one part as failed (hedge-aware: a pair settles once)."""
        if self._already_settled(req):
            return
        self._settle_part(req)
        self._part_failed(req.tag, exc)

    def _requeue_part(self, req: SPDKRequest) -> None:
        """Put an aborted or backed-off part back on a post queue.

        Flat mode: back to the fetch's (only) lane.  Cluster mode: if
        the fetch's lane died, fail the whole fetch over to a surviving
        replica, then re-translate this part's device offset for
        wherever the fetch now points.  With every replica dead the part
        parks on the dead lane (zero free slots) until a rejoin.
        """
        fetch: _PendingFetch = req.tag
        if self.balancer is not None:
            if not self.balancer.is_alive(fetch.lane) and self.balancer.reroute(fetch):
                self.recovery_stats.incr("failovers")
                if fetch.span is not None:
                    fetch.span.event("failover", lane=fetch.lane)
            req.offset = req.rel + self.balancer.delta(fetch.shard, fetch.lane)
        self._postq[fetch.lane].append(req)

    def _recover(self, req: SPDKRequest) -> None:
        """Route one failed part: requeue, retry with backoff, or give up."""
        fetch: _PendingFetch = req.tag
        recovery = self.recovery
        status = req.status
        if self._already_settled(req):
            return  # hedge twin of a part that already settled
        self.recovery_stats.incr(
            "aborted" if status == STATUS_ABORTED_RESET else status
        )
        if self._stopping:
            self._settle_part(req)
            self._part_failed(
                fetch,
                SampleReadError(
                    f"sample span {fetch.key!r} aborted: reactor stopping",
                    key=fetch.key,
                ),
            )
        elif fetch.failed is not None:
            # Span already doomed by a sibling part; just count down.
            self._settle_part(req)
            self._part_failed(fetch, fetch.failed)
        elif status == STATUS_ABORTED_RESET:
            # Reset aborts are a recovery action, not a device fault:
            # requeue at no cost against the retry budget.
            if fetch.span is not None:
                fetch.span.event("requeued_after_reset")
            self._requeue_part(req)
        elif req.retries >= recovery.max_retries:
            self.recovery_stats.incr("budget_exhausted")
            exc_type = MediaError if status == STATUS_MEDIA_ERROR else RequestTimeout
            self._settle_part(req)
            self._part_failed(
                fetch,
                exc_type(f"{fetch.key!r}: {status} after {req.retries} retries"),
            )
        else:
            req.retries += 1
            self.recovery_stats.incr("retries")
            self._pending_retries += 1
            delay = self._backoff_delay(req.retries)
            if fetch.span is not None:
                fetch.span.event(
                    "retry_backoff", status=status, retry=req.retries,
                    delay=delay,
                )
            self.env.process(
                self._retry_later(req, delay), name=f"{self.name}.retry"
            )

    def _part_failed(self, fetch: _PendingFetch, exc: BaseException) -> None:
        if fetch.failed is None:
            fetch.failed = exc
        fetch.parts_remaining -= 1
        if fetch.parts_remaining == 0:
            self._finalize_failed(fetch)

    def _finalize_failed(self, fetch: _PendingFetch) -> None:
        """Retire a doomed span: free its cache slot, fail its waiters.

        Graceful degradation (ISSUE acceptance): each waiting job records
        a :class:`SampleReadError` and still completes — one lost sample
        never wedges a batch.
        """
        self._pending.pop(fetch.key, None)
        if self.balancer is not None and fetch.done_parts is not None:
            self.balancer.fetch_done(fetch)
        if self.cache.slot(fetch.key) is not None:
            self.cache.discard(fetch.key)
        if fetch.span is not None:
            fetch.span.finish(status="failed", error=str(fetch.failed))
        for job, _nbytes in fetch.waiters:
            exc = SampleReadError(
                f"sample span {fetch.key!r} failed: {fetch.failed}",
                key=fetch.key,
            )
            exc.__cause__ = fetch.failed
            job.errors.append(exc)
            self.recovery_stats.incr("failed_samples")
            job.remaining -= 1
            if job.remaining == 0:
                self.job_latency.observe(self.env.now - job.submit_time)
                self._h_job.observe(self.env.now - job.submit_time)
                if job.span is not None:
                    job.span.finish(errors=len(job.errors))
                job.done.succeed(job)
        fetch.waiters.clear()

    def _backoff_delay(self, retry: int) -> float:
        """Capped exponential backoff with seeded jitter."""
        delay = self.recovery.backoff(retry)
        if self.recovery.jitter > 0.0:
            delay *= 1.0 + self.recovery.jitter * float(self._jitter_rng.random())
        return delay

    def _retry_later(
        self, req: SPDKRequest, delay: float
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(delay)
        self.inbox.put_nowait(_RetryRequest(req))

    def _on_retry_ready(self, req: SPDKRequest) -> None:
        self._pending_retries -= 1
        fetch: _PendingFetch = req.tag
        if fetch.failed is not None or self._stopping:
            self._req_failed(
                req,
                fetch.failed
                or SampleReadError(
                    f"sample span {fetch.key!r} aborted: reactor stopping",
                    key=fetch.key,
                ),
            )
            return
        if self._already_settled(req):
            return  # the hedge twin settled this part during the backoff
        self._requeue_part(req)

    def _arm_watchdog(self, req: SPDKRequest) -> None:
        """Deadline timer for a posted request (cost-free on the core)."""
        self.env.process(
            self._watchdog(req, req.attempts), name=f"{self.name}.watchdog"
        )

    def _watchdog(
        self, req: SPDKRequest, attempt: int
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.recovery.deadline)
        if req.status is None and req.attempts == attempt:
            self.inbox.put_nowait(_DeadlineCheck(req, attempt))

    def _arm_hedge(self, req: SPDKRequest) -> None:
        """Hedge timer for a posted request (cost-free on the core)."""
        self.env.process(
            self._hedge_timer(req, req.attempts), name=f"{self.name}.hedge"
        )

    def _hedge_timer(
        self, req: SPDKRequest, attempt: int
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(self.balancer.hedge_delay)
        if req.status is None and req.attempts == attempt:
            self.inbox.put_nowait(_HedgeCheck(req, attempt))

    def _on_hedge(self, msg: _HedgeCheck) -> None:
        """Deadline-driven hedged read: post a twin on another replica.

        The slow original keeps running; whichever copy completes first
        settles the part and the loser is dropped by the ``done_parts``
        dedup.  Each part is hedged at most once per post attempt.
        """
        req = msg.req
        fetch: _PendingFetch = req.tag
        if req.status is not None or req.attempts != msg.attempt:
            return  # completed (or reposted) since the timer was armed
        if fetch.failed is not None or self._stopping:
            return
        if req.rel in fetch.done_parts or req.rel in fetch.hedged_parts:
            return
        alt = self.balancer.pick_hedge(fetch, exclude=fetch.lane)
        if alt is None:
            return  # no other live replica holds the shard
        fetch.hedged_parts.add(req.rel)
        twin = SPDKRequest(
            offset=req.rel + self.balancer.delta(fetch.shard, alt),
            nbytes=req.nbytes,
            chunks=req.chunks,
            tag=fetch,
            parent_span=fetch.span,
            rel=req.rel,
        )
        self._postq[alt].append(twin)
        self.recovery_stats.incr("hedges_posted")
        if fetch.span is not None:
            fetch.span.event("hedged", lane=alt)

    def _on_deadline(self, msg: _DeadlineCheck) -> None:
        req = msg.req
        if req.status is not None or req.attempts != msg.attempt:
            return  # completed (or reposted) since the timer was armed
        fetch: _PendingFetch = req.tag
        self.recovery_stats.incr("deadline_timeouts")
        if self.tracer.enabled:
            self.tracer.instant(
                "deadline_miss", track=self.name, key=str(fetch.key),
                attempt=msg.attempt,
            )
        req.retries += 1
        if req.retries > self.recovery.max_retries and fetch.failed is None:
            fetch.failed = RequestTimeout(
                f"{fetch.key!r}: missed {req.retries} deadlines"
            )
        # A stuck command is recovered NVMe-style: reset the qpair, which
        # aborts everything in flight back to us for requeueing.  The
        # request flies on the fetch's *lane* (== shard in flat mode;
        # the routed replica in cluster mode).
        self._reset_qpair(fetch.lane, forced=False)

    def _reset_qpair(self, shard: int, forced: bool) -> None:
        qp = self.qpairs[shard]
        if not qp.connected:
            return  # reset already in progress
        if forced and self.injector is not None:
            self.injector.record(self.env.now, qp.name, "qpair_reset")
        qp.reset()
        self.recovery_stats.incr("resets")
        self.recovery_stats.enter_degraded()
        self.env.process(
            self._reconnect_later(shard), name=f"{self.name}.reconnect"
        )

    def _reconnect_later(self, shard: int) -> Generator[Event, Any, None]:
        delay = self.recovery.reconnect_delay if self.recovery is not None else 0.0
        yield self.env.timeout(delay)
        self.inbox.put_nowait(_QPairUp(shard))

    def _on_qpair_up(self, shard: int) -> None:
        qp = self.qpairs[shard]
        if qp.torn_down:
            return  # node died mid-reset; only a NodeUp revives the lane
        if not qp.connected:
            qp.reconnect()
            self.recovery_stats.exit_degraded()

    # -- cluster node lifecycle ---------------------------------------------------
    def _on_node_down(self, lane: int) -> None:
        """A serving node died: tear the lane down, route around it.

        The teardown aborts in-flight parts back to us as
        ``ABORTED_RESET`` (re-routed by :meth:`_recover`); queued work —
        ready fetches and promoted parts — fails over immediately.  With
        every replica of a shard dead its work parks on the dead lane
        and resumes on rejoin.
        """
        qp = self.qpairs[lane]
        self.balancer.mark_dead(lane)
        was_connected = qp.connected
        qp.teardown()
        if was_connected:
            self.recovery_stats.enter_degraded()
        self.recovery_stats.incr("node_down")
        if self.tracer.enabled:
            self.tracer.instant("node_down", track=self.name, lane=lane)
        rpq = self._rpq[lane]
        parked = list(rpq)
        rpq.clear()
        for fetch in parked:
            if self.balancer.reroute(fetch):
                self.recovery_stats.incr("failovers")
                if fetch.span is not None:
                    fetch.span.event("failover", lane=fetch.lane)
                self._rpq[fetch.lane].append(fetch)
            else:
                rpq.append(fetch)  # every replica dead: park here
        postq = self._postq[lane]
        parts = list(postq)
        postq.clear()
        for req in parts:
            if self._already_settled(req):
                continue  # orphaned hedge twin; drop it
            self._requeue_part(req)

    def _on_node_up(self, lane: int) -> None:
        """A crashed node rejoined the fleet: revive its lane."""
        qp = self.qpairs[lane]
        if not qp.torn_down:
            return  # duplicate NodeUp
        self.balancer.mark_alive(lane)
        qp.rejoin()
        self.recovery_stats.exit_degraded()
        self.recovery_stats.incr("node_up")
        if self.tracer.enabled:
            self.tracer.instant("node_up", track=self.name, lane=lane)

    def _reset_driver(self, shard: int) -> Generator[Event, Any, None]:
        """Plan-driven periodic qpair resets (chaos injection)."""
        qp = self.qpairs[shard]
        while True:
            delay = self.injector.next_reset_delay(qp.name)
            yield self.env.timeout(delay)
            if self._stopping:
                return
            self.inbox.put_nowait(_QPairReset(shard))

    def _drain_on_stop(self) -> Generator[Event, Any, None]:
        """Shutdown drain: abort queued work, await in-flight completions.

        Leaving in-flight requests orphaned at stop time wedges the
        simulation (their completions land in an inbox nobody reads,
        while cache slots stay FILLING forever) — the CopyPool/stop
        deadlock of the ISSUE.  Instead: fail everything not yet posted,
        then keep servicing the inbox until the qpairs and retry timers
        are quiet.
        """

        def stop_error(fetch: _PendingFetch) -> SampleReadError:
            return SampleReadError(
                f"sample span {fetch.key!r} aborted: reactor stopped",
                key=fetch.key,
            )

        for rpq in self._rpq.values():
            while rpq:
                fetch = rpq.popleft()
                fetch.failed = stop_error(fetch)
                self._finalize_failed(fetch)
        for postq in self._postq.values():
            while postq:
                req = postq.popleft()
                fetch = req.tag
                self._req_failed(req, fetch.failed or stop_error(fetch))
        while (
            any(qp.inflight for qp in self.qpairs.values())
            or self._pending_retries > 0
        ):
            idle_from = self.env.now
            msg = yield self.inbox.get()
            if self.env.now > idle_from:
                self._layers.add("poll_idle", self.env.now - idle_from)
            if isinstance(
                msg,
                (SPDKRequest, _RetryRequest, _DeadlineCheck, _QPairUp,
                 NodeDown, NodeUp),
            ):
                yield from self._dispatch(msg)
                for postq in self._postq.values():
                    while postq:
                        req = postq.popleft()
                        fetch = req.tag
                        self._req_failed(
                            req, fetch.failed or stop_error(fetch)
                        )
            elif isinstance(msg, ReadJob):
                # Late job during teardown: fail every sample, but let
                # the caller's await complete.
                msg.submit_time = self.env.now
                for s in msg.samples:
                    msg.errors.append(
                        SampleReadError(
                            f"sample {int(s)} rejected: reactor stopped",
                            key=int(s),
                        )
                    )
                    self.recovery_stats.incr("failed_samples")
                msg.remaining = 0
                msg.done.succeed(msg)
            elif isinstance(msg, LookupJob):
                msg.done.fail(NotMounted("reactor is stopped"))
            # KICK / _QPairReset / SHUTDOWN: ignored during drain.
        yield from self._flush_inline_copies()
        if self.copy_pool is not None:
            self.copy_pool.shutdown()

    def _start_delivery(self, job: ReadJob, key, nbytes: int) -> None:
        """Hand one sample from the cache to the application: a copy to
        its buffer, or (zero-copy mode) a retained cache reference."""
        self.cache.acquire(key)
        if self.zero_copy:
            cost = self.select_overhead  # no memcpy: buffer is the cache
        else:
            cost = self.select_overhead + nbytes / self.cpu.memcpy_bandwidth
        span = None
        if self.tracer.enabled:
            track = (
                f"{self.name}.copy" if self.copy_pool is not None else self.name
            )
            span = self.tracer.start(
                "deliver", track=track, parent=job.span, cat="reactor",
                key=str(key), nbytes=nbytes,
            )

        def finish() -> None:
            if self.zero_copy:
                job.retained.append(key)
            else:
                self.cache.release(key)
            self.samples_delivered += 1
            self._c_delivered.incr()
            self.read_meter.record(nbytes=nbytes)
            if span is not None:
                span.finish()
            job.remaining -= 1
            if job.remaining == 0:
                self.job_latency.observe(self.env.now - job.submit_time)
                self._h_job.observe(self.env.now - job.submit_time)
                if job.span is not None:
                    job.span.finish(errors=len(job.errors))
                job.done.succeed(job)

        self._layers.add("copy", cost)
        if self.copy_pool is not None:
            self.copy_pool.submit(cost, finish)
        else:
            # Inline copies accumulate; charged in one run() per batch.
            self._inline_copy_cost += cost
            self._inline_done_list.append(finish)

    def _flush_inline_copies(self) -> Generator[Event, Any, None]:
        if self.copy_pool is not None:
            return
        pending = self._inline_done_list
        if not pending:
            return
        cost = self._inline_copy_cost
        self._inline_copy_cost = 0.0
        self._inline_done_list = []
        if cost > 0.0:
            yield self.thread.delay(cost)
        for finish in pending:
            finish()

    def _kick(self) -> None:
        """Wake the loop after an off-reactor event freed resources."""
        self.inbox.put_nowait(KICK)

    def __repr__(self) -> str:
        return f"<Reactor {self.name!r} pending={len(self._pending)}>"
