"""128-bit sample directory entries (paper Fig 3b).

Each entry is two 64-bit units:

* unit 1 — ``NID`` (16 bits, storage-node/shard id) | ``key`` (48 bits,
  hash of the sample name and attributes);
* unit 2 — ``offset`` (40 bits, byte offset on the NVMe device) |
  ``len`` (23 bits, sample length) | ``V`` (1 bit, copy present in the
  local sample cache).

Packing is real: the directory stores entries as ``uint64`` pairs, and
all field access goes through the shift/mask helpers below (scalar and
numpy-vectorized forms).  A 40-bit offset addresses 1 TB per device and
a 23-bit length caps samples at 8 MB — both comfortably above the
paper's workloads, and both enforced.
"""

from __future__ import annotations

import numpy as np

from ..errors import EntryFormatError

__all__ = [
    "NID_BITS",
    "KEY_BITS",
    "OFFSET_BITS",
    "LEN_BITS",
    "MAX_NID",
    "MAX_KEY",
    "MAX_OFFSET",
    "MAX_LEN",
    "pack_unit1",
    "pack_unit2",
    "unpack_unit1",
    "unpack_unit2",
    "nid_of",
    "key_of",
    "offset_of",
    "len_of",
    "v_of",
    "with_v",
    "pack_entries",
    "fnv1a_48",
    "fnv1a_64",
    "hash_sample_name",
    "hash_sample_names",
]

NID_BITS = 16
KEY_BITS = 48
OFFSET_BITS = 40
LEN_BITS = 23
V_BITS = 1

assert NID_BITS + KEY_BITS == 64
assert OFFSET_BITS + LEN_BITS + V_BITS == 64

MAX_NID = (1 << NID_BITS) - 1
MAX_KEY = (1 << KEY_BITS) - 1
MAX_OFFSET = (1 << OFFSET_BITS) - 1
MAX_LEN = (1 << LEN_BITS) - 1

_KEY_MASK = MAX_KEY
_OFFSET_SHIFT = LEN_BITS + V_BITS  # offset occupies the top 40 bits
_LEN_SHIFT = V_BITS
_LEN_MASK = MAX_LEN
_V_MASK = 1


# -- scalar packing -----------------------------------------------------------
def pack_unit1(nid: int, key: int) -> int:
    """First 64-bit unit: NID in the top 16 bits, key in the low 48."""
    if not 0 <= nid <= MAX_NID:
        raise EntryFormatError(f"NID {nid} does not fit in {NID_BITS} bits")
    if not 0 <= key <= MAX_KEY:
        raise EntryFormatError(f"key {key} does not fit in {KEY_BITS} bits")
    return (nid << KEY_BITS) | key


def pack_unit2(offset: int, length: int, v: bool = False) -> int:
    """Second 64-bit unit: offset | len | V."""
    if not 0 <= offset <= MAX_OFFSET:
        raise EntryFormatError(f"offset {offset} does not fit in {OFFSET_BITS} bits")
    if not 0 < length <= MAX_LEN:
        raise EntryFormatError(
            f"length {length} outside (0, {MAX_LEN}] for {LEN_BITS} bits"
        )
    return (offset << _OFFSET_SHIFT) | (length << _LEN_SHIFT) | int(bool(v))


def unpack_unit1(unit1: int) -> tuple[int, int]:
    """-> (nid, key)."""
    return (unit1 >> KEY_BITS) & MAX_NID, unit1 & _KEY_MASK


def unpack_unit2(unit2: int) -> tuple[int, int, bool]:
    """-> (offset, length, v)."""
    return (
        (unit2 >> _OFFSET_SHIFT) & MAX_OFFSET,
        (unit2 >> _LEN_SHIFT) & _LEN_MASK,
        bool(unit2 & _V_MASK),
    )


def nid_of(unit1: int) -> int:
    return (unit1 >> KEY_BITS) & MAX_NID


def key_of(unit1: int) -> int:
    return unit1 & _KEY_MASK


def offset_of(unit2: int) -> int:
    return (unit2 >> _OFFSET_SHIFT) & MAX_OFFSET


def len_of(unit2: int) -> int:
    return (unit2 >> _LEN_SHIFT) & _LEN_MASK


def v_of(unit2: int) -> bool:
    return bool(unit2 & _V_MASK)


def with_v(unit2: int, v: bool) -> int:
    """Copy of unit2 with the V bit set/cleared."""
    return (unit2 & ~_V_MASK) | int(bool(v))


# -- vectorized packing --------------------------------------------------------
def pack_entries(
    nids: np.ndarray, keys: np.ndarray, offsets: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pack whole arrays into (unit1[], unit2[]) with V=0.

    Used at mount time to build millions of entries without a Python
    loop.  Range violations raise :class:`EntryFormatError`.
    """
    nids = np.asarray(nids, dtype=np.uint64)
    keys = np.asarray(keys, dtype=np.uint64)
    offsets = np.asarray(offsets, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.uint64)
    if (nids > MAX_NID).any():
        raise EntryFormatError("an NID exceeds 16 bits")
    if (keys > MAX_KEY).any():
        raise EntryFormatError("a key exceeds 48 bits")
    if (offsets > MAX_OFFSET).any():
        raise EntryFormatError("an offset exceeds 40 bits")
    if (lengths > MAX_LEN).any() or (lengths == 0).any():
        raise EntryFormatError("a length is zero or exceeds 23 bits")
    unit1 = (nids << np.uint64(KEY_BITS)) | keys
    unit2 = (offsets << np.uint64(_OFFSET_SHIFT)) | (lengths << np.uint64(_LEN_SHIFT))
    return unit1, unit2


# -- hashing ---------------------------------------------------------------------
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64 = (1 << 64) - 1


def fnv1a_64(data: bytes) -> int:
    """FNV-1a over ``data`` (64-bit)."""
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & _U64
    return h


def fnv1a_48(data: bytes) -> int:
    """48-bit key: xor-fold of the 64-bit FNV-1a hash."""
    h = fnv1a_64(data)
    return (h ^ (h >> 48)) & MAX_KEY


def hash_sample_name(name: str) -> tuple[int, int]:
    """(48-bit directory key, 16-bit disambiguation check).

    The key indexes the AVL tree; the check distinguishes colliding
    names (the paper's "other attributes such as its class" folded into
    the hash).
    """
    h = fnv1a_64(name.encode())
    key = (h ^ (h >> 48)) & MAX_KEY
    check = (h >> 48) & 0xFFFF
    return key, check


def hash_sample_names(dataset_name: str, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`hash_sample_name` for canonical dataset names.

    Bit-exact with the scalar path on ``f"{dataset_name}/{i:08d}"`` but
    hashes millions of names in a handful of numpy passes: the FNV state
    after the fixed prefix is computed once, then the eight decimal
    digits are folded in columnwise.

    Returns (keys[uint64 48-bit], checks[uint64 16-bit]).
    """
    indices = np.asarray(indices, dtype=np.uint64)
    if (indices > 99_999_999).any():
        raise EntryFormatError("vectorized hashing supports indices < 1e8")
    prime = np.uint64(_FNV_PRIME)
    h = np.full(
        indices.shape,
        fnv1a_64((dataset_name + "/").encode()),
        dtype=np.uint64,
    )
    ascii_zero = np.uint64(ord("0"))
    with np.errstate(over="ignore"):  # uint64 wraparound is the algorithm
        for place in range(7, -1, -1):
            digit = (indices // np.uint64(10**place)) % np.uint64(10)
            h = (h ^ (digit + ascii_zero)) * prime
    keys = (h ^ (h >> np.uint64(48))) & np.uint64(MAX_KEY)
    checks = (h >> np.uint64(48)) & np.uint64(0xFFFF)
    return keys, checks
