"""The DLFS sample cache (paper §III-C1).

Hugepage-backed staging memory for data arriving from NVMe devices.
The cache is organized in fixed-size chunks (256 KB by default) from the
node's :class:`~repro.hw.memory.HugePagePool`; a *slot* is the set of
chunks backing one fetched span (a sample, an edge sample, or a data
chunk).

Slots move through three states:

* ``FILLING`` — I/O in flight;
* ``RESIDENT`` with references — consumers not yet served;
* ``RESIDENT`` clean (zero refs) — retained for reuse (the V bit in the
  sample directory stays set) until memory pressure evicts it, oldest
  first, at which point the eviction callback clears the V bits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from ..errors import AllocationError, DirectoryError
from ..hw.memory import HugePageChunk, HugePagePool

__all__ = ["SampleCache", "CacheSlot", "FILLING", "RESIDENT"]

FILLING = "filling"
RESIDENT = "resident"


class CacheSlot:
    """One cached span and its hugepage chunks."""

    __slots__ = ("key", "chunks", "nbytes", "state", "refs")

    def __init__(self, key: object, chunks: list[HugePageChunk], nbytes: int) -> None:
        self.key = key
        self.chunks = chunks
        self.nbytes = nbytes
        self.state = FILLING
        self.refs = 0

    def __repr__(self) -> str:
        return (
            f"<CacheSlot {self.key!r} {self.state} refs={self.refs} "
            f"{self.nbytes}B x{len(self.chunks)}>"
        )


class SampleCache:
    """Slot map over a hugepage pool with clean-slot eviction."""

    def __init__(
        self,
        pool: HugePagePool,
        on_evict: Optional[Callable[[object], None]] = None,
        on_free: Optional[Callable[[object], None]] = None,
    ) -> None:
        self.pool = pool
        self.on_evict = on_evict
        # Fires whenever a slot's chunks return to the pool (eviction AND
        # discard) — unlike on_evict, which only marks V-bit invalidation.
        # The tenancy cache partition uncharges quotas here.
        self.on_free = on_free
        self._slots: dict[object, CacheSlot] = {}
        # Clean (evictable) slots in eviction order, oldest first.
        self._clean: OrderedDict[object, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- introspection ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: object) -> bool:
        return key in self._slots

    @property
    def clean_slots(self) -> int:
        return len(self._clean)

    def slot(self, key: object) -> Optional[CacheSlot]:
        """Raw slot access without hit/miss accounting."""
        return self._slots.get(key)

    # -- lookup ------------------------------------------------------------------
    def lookup(self, key: object) -> Optional[CacheSlot]:
        """Resident-slot lookup (the V-bit fast path); counts hit/miss.

        A ``FILLING`` slot does not count as a hit — the caller must
        attach to the pending fetch instead.
        """
        slot = self._slots.get(key)
        if slot is not None and slot.state == RESIDENT:
            self.hits += 1
            return slot
        self.misses += 1
        return None

    # -- allocation / state ---------------------------------------------------------
    def chunks_needed(self, nbytes: int) -> int:
        return -(-nbytes // self.pool.chunk_size)

    def try_insert(self, key: object, nbytes: int) -> Optional[CacheSlot]:
        """Start a fetch: allocate chunks (evicting clean slots if needed).

        Returns the FILLING slot, or ``None`` if memory cannot be found
        without touching in-use slots (caller retries after completions
        free memory).
        """
        if key in self._slots:
            raise DirectoryError(f"cache slot {key!r} already exists")
        if nbytes <= 0:
            raise AllocationError("cannot cache an empty span")
        need = self.chunks_needed(nbytes)
        if need > self.pool.num_chunks:
            raise AllocationError(
                f"span of {nbytes} B needs {need} chunks; pool has only "
                f"{self.pool.num_chunks}"
            )
        while self.pool.free_chunks < need and self._clean:
            self._evict_one()
        if self.pool.free_chunks < need:
            return None
        chunks = []
        for _ in range(need):
            chunk = self.pool.try_alloc()
            assert chunk is not None  # guaranteed by the free_chunks check
            chunk.owner = key
            chunks.append(chunk)
        slot = CacheSlot(key, chunks, nbytes)
        self._slots[key] = slot
        return slot

    def mark_resident(self, key: object) -> CacheSlot:
        """Fetch completed: data is valid in the slot's chunks."""
        slot = self._require(key)
        if slot.state != FILLING:
            raise DirectoryError(f"slot {key!r} is not filling")
        slot.state = RESIDENT
        if slot.refs == 0:
            self._clean[key] = None
        return slot

    def acquire(self, key: object) -> CacheSlot:
        """Register one consumer (undelivered sample) on a slot."""
        slot = self._require(key)
        slot.refs += 1
        self._clean.pop(key, None)
        return slot

    def release(self, key: object) -> None:
        """Consumer served; slot becomes clean at zero refs."""
        slot = self._require(key)
        if slot.refs <= 0:
            raise DirectoryError(f"release of unreferenced slot {key!r}")
        slot.refs -= 1
        if slot.refs == 0 and slot.state == RESIDENT:
            self._clean[key] = None

    def clean_keys(self) -> tuple:
        """Keys of evictable slots, oldest (next-to-evict) first."""
        return tuple(self._clean)

    def evict(self, key: object) -> None:
        """Targeted eviction of one clean slot (tenant quota reclaim)."""
        slot = self._require(key)
        if slot.refs or slot.state != RESIDENT or key not in self._clean:
            raise DirectoryError(f"slot {key!r} is not clean; cannot evict")
        self._clean.pop(key)
        self.evictions += 1
        self._free_slot(slot)
        if self.on_evict is not None:
            self.on_evict(key)

    def discard(self, key: object) -> None:
        """Forcibly drop a slot (abort path); must be unreferenced."""
        slot = self._require(key)
        if slot.refs:
            raise DirectoryError(f"cannot discard referenced slot {key!r}")
        self._clean.pop(key, None)
        self._free_slot(slot)

    # -- internals ----------------------------------------------------------------
    def _require(self, key: object) -> CacheSlot:
        slot = self._slots.get(key)
        if slot is None:
            raise DirectoryError(f"no cache slot {key!r}")
        return slot

    def _evict_one(self) -> None:
        key, _ = self._clean.popitem(last=False)
        slot = self._slots[key]
        self.evictions += 1
        self._free_slot(slot)
        if self.on_evict is not None:
            self.on_evict(key)

    def _free_slot(self, slot: CacheSlot) -> None:
        del self._slots[slot.key]
        for chunk in slot.chunks:
            self.pool.free(chunk)
        slot.chunks = []
        if self.on_free is not None:
            self.on_free(slot.key)

    def __repr__(self) -> str:
        return (
            f"<SampleCache slots={len(self._slots)} clean={self.clean_slots} "
            f"free_chunks={self.pool.free_chunks}>"
        )
