"""Balanced AVL tree for the in-memory sample directory (paper Fig 3a).

A classic AVL tree implemented from scratch: integer keys (the 48-bit
sample-name hashes), arbitrary payloads, strict height balancing with
single/double rotations.  Hash collisions are handled by chaining
payloads under one key node.

Two operations matter for the reproduction:

* :meth:`search` returns the payloads **and the number of nodes
  visited**, which is what the simulated lookup cost is charged from
  (``visits * CPUSpec.tree_node_visit``);
* :meth:`build_sorted` bulk-builds a perfectly balanced tree in O(n)
  from sorted input — the mount path uses it so constructing million-
  entry directories stays fast in wall-clock terms, while incremental
  :meth:`insert`/:meth:`delete` keep full AVL semantics for the tests.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from ..errors import DirectoryError

__all__ = ["AVLTree", "AVLNode"]


class AVLNode:
    __slots__ = ("key", "payloads", "left", "right", "height")

    def __init__(self, key: int, payload: Any) -> None:
        self.key = key
        self.payloads: list[Any] = [payload]
        self.left: Optional["AVLNode"] = None
        self.right: Optional["AVLNode"] = None
        self.height = 1

    def __repr__(self) -> str:
        return f"<AVLNode key={self.key} h={self.height}>"


def _h(node: Optional[AVLNode]) -> int:
    return node.height if node is not None else 0


def _balance(node: AVLNode) -> int:
    return _h(node.left) - _h(node.right)


def _fix_height(node: AVLNode) -> None:
    node.height = 1 + max(_h(node.left), _h(node.right))


def _rotate_right(y: AVLNode) -> AVLNode:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _fix_height(y)
    _fix_height(x)
    return x


def _rotate_left(x: AVLNode) -> AVLNode:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _fix_height(x)
    _fix_height(y)
    return y


def _rebalance(node: AVLNode) -> AVLNode:
    _fix_height(node)
    balance = _balance(node)
    if balance > 1:
        assert node.left is not None
        if _balance(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AVLTree:
    """An AVL tree with duplicate-key chaining."""

    def __init__(self) -> None:
        self._root: Optional[AVLNode] = None
        self._size = 0  # payload count (>= node count)
        self._nodes = 0

    # -- introspection ----------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def num_nodes(self) -> int:
        return self._nodes

    @property
    def height(self) -> int:
        return _h(self._root)

    # -- mutation -------------------------------------------------------------
    def insert(self, key: int, payload: Any) -> None:
        """Insert; equal keys chain onto the existing node."""
        self._root = self._insert(self._root, key, payload)
        self._size += 1

    def _insert(self, node: Optional[AVLNode], key: int, payload: Any) -> AVLNode:
        if node is None:
            self._nodes += 1
            return AVLNode(key, payload)
        if key == node.key:
            node.payloads.append(payload)
            return node
        if key < node.key:
            node.left = self._insert(node.left, key, payload)
        else:
            node.right = self._insert(node.right, key, payload)
        return _rebalance(node)

    def delete(self, key: int) -> list[Any]:
        """Remove a key (all chained payloads); returns them."""
        removed: list[Any] = []
        self._root = self._delete(self._root, key, removed)
        if not removed:
            raise DirectoryError(f"key {key} not in tree")
        self._size -= len(removed)
        self._nodes -= 1
        return removed

    def _delete(
        self, node: Optional[AVLNode], key: int, removed: list[Any]
    ) -> Optional[AVLNode]:
        if node is None:
            return None
        if key < node.key:
            node.left = self._delete(node.left, key, removed)
        elif key > node.key:
            node.right = self._delete(node.right, key, removed)
        else:
            removed.extend(node.payloads)
            if node.left is None:
                return node.right
            if node.right is None:
                return node.left
            # Replace with in-order successor.
            succ = node.right
            while succ.left is not None:
                succ = succ.left
            node.key = succ.key
            node.payloads = succ.payloads
            # Structurally remove the successor (it has no left child).
            node.right = self._delete_min(node.right)
        return _rebalance(node)

    def _delete_min(self, node: AVLNode) -> Optional[AVLNode]:
        if node.left is None:
            return node.right
        node.left = self._delete_min(node.left)
        return _rebalance(node)

    # -- queries --------------------------------------------------------------
    def search(self, key: int) -> tuple[list[Any], int]:
        """-> (payloads-or-empty, nodes visited during the descent)."""
        node = self._root
        visits = 0
        while node is not None:
            visits += 1
            if key == node.key:
                return node.payloads, visits
            node = node.left if key < node.key else node.right
        return [], visits

    def __contains__(self, key: int) -> bool:
        return bool(self.search(key)[0])

    def min_key(self) -> int:
        if self._root is None:
            raise DirectoryError("tree is empty")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> int:
        if self._root is None:
            raise DirectoryError("tree is empty")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key

    def items(self) -> Iterator[tuple[int, Any]]:
        """In-order (key, payload) pairs."""
        stack: list[AVLNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            for payload in node.payloads:
                yield node.key, payload
            node = node.right

    def keys(self) -> Iterator[int]:
        seen_last: Optional[int] = None
        for key, _ in self.items():
            if key != seen_last:
                seen_last = key
                yield key

    # -- bulk construction ---------------------------------------------------------
    @classmethod
    def build_sorted(
        cls, keys: Sequence[int], payloads: Sequence[Any]
    ) -> "AVLTree":
        """O(n) build from keys sorted ascending (duplicates adjacent)."""
        if len(keys) != len(payloads):
            raise DirectoryError("keys and payloads must align")
        tree = cls()
        if not len(keys):
            return tree
        # Collapse duplicates into chained nodes first.
        uniq_keys: list[int] = []
        uniq_payloads: list[list[Any]] = []
        prev: Optional[int] = None
        for k, p in zip(keys, payloads):
            if prev is not None and k < prev:
                raise DirectoryError("build_sorted requires ascending keys")
            if k == prev:
                uniq_payloads[-1].append(p)
            else:
                uniq_keys.append(k)
                uniq_payloads.append([p])
                prev = k
        tree._root = tree._build(uniq_keys, uniq_payloads, 0, len(uniq_keys))
        tree._nodes = len(uniq_keys)
        tree._size = len(keys)
        return tree

    def _build(
        self,
        keys: list[int],
        payloads: list[list[Any]],
        lo: int,
        hi: int,
    ) -> Optional[AVLNode]:
        if lo >= hi:
            return None
        mid = (lo + hi) // 2
        node = AVLNode(keys[mid], None)
        node.payloads = payloads[mid]
        left = self._build(keys, payloads, lo, mid)
        right = self._build(keys, payloads, mid + 1, hi)
        node.left = left
        node.right = right
        # Heights come straight off the children — same values
        # _fix_height computes, minus three calls per node on a build
        # that runs at every mount.
        lh = left.height if left is not None else 0
        rh = right.height if right is not None else 0
        node.height = lh + 1 if lh >= rh else rh + 1
        return node

    # -- invariant checking (used by tests) --------------------------------------
    def check_invariants(self) -> None:
        """Raises DirectoryError if AVL/BST invariants are violated."""

        def walk(node: Optional[AVLNode]) -> tuple[int, int, int]:
            """-> (height, min_key, max_key) of the subtree."""
            lh = rh = 0
            min_key = max_key = node.key
            if node.left is not None:
                lh, lmin, lmax = walk(node.left)
                if lmax >= node.key:
                    raise DirectoryError("BST order violated (left)")
                min_key = lmin
            if node.right is not None:
                rh, rmin, rmax = walk(node.right)
                if rmin <= node.key:
                    raise DirectoryError("BST order violated (right)")
                max_key = rmax
            if abs(lh - rh) > 1:
                raise DirectoryError(f"AVL balance violated at key {node.key}")
            height = 1 + max(lh, rh)
            if node.height != height:
                raise DirectoryError(f"stale height at key {node.key}")
            return height, min_key, max_key

        if self._root is not None:
            walk(self._root)

    def __repr__(self) -> str:
        return f"<AVLTree n={self._size} nodes={self._nodes} h={self.height}>"
