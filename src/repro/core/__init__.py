"""DLFS core: the paper's primary contribution.

Sub-modules:

* :mod:`entry` — 128-bit packed sample entries + name hashing;
* :mod:`avltree` — the balanced tree under the sample directory;
* :mod:`directory` — partitioned, replicated in-memory sample directory;
* :mod:`sequence` — seeded global sample sequences (``dlfs_sequence``);
* :mod:`batching` — chunk plans, access lists, DLFS-determined ordering;
* :mod:`cache` — the hugepage sample cache;
* :mod:`reader` — the prep/post/poll/copy reactor (RPQ + shared CQ);
* :mod:`api` — ``DLFS`` / ``DLFSClient`` public surface.
"""

from .api import DLFS, DLFSClient, DLFSConfig, DLFSFile, MountReport
from .avltree import AVLTree
from .batching import ChunkEpoch, ChunkPlan, DEFAULT_CHUNK_BYTES, delivery_order
from .cache import CacheSlot, SampleCache
from .directory import (
    LocalValidBits,
    LookupResult,
    SampleDirectory,
    aggregate_directory,
)
from .entry import (
    hash_sample_name,
    hash_sample_names,
    pack_entries,
    pack_unit1,
    pack_unit2,
    unpack_unit1,
    unpack_unit2,
)
from .reader import CopyPool, LookupJob, Reactor, ReadJob
from .sequence import GlobalSequence

__all__ = [
    "DLFS",
    "DLFSClient",
    "DLFSConfig",
    "DLFSFile",
    "MountReport",
    "AVLTree",
    "ChunkPlan",
    "ChunkEpoch",
    "DEFAULT_CHUNK_BYTES",
    "delivery_order",
    "SampleCache",
    "CacheSlot",
    "SampleDirectory",
    "LocalValidBits",
    "LookupResult",
    "aggregate_directory",
    "GlobalSequence",
    "Reactor",
    "ReadJob",
    "LookupJob",
    "CopyPool",
    "pack_unit1",
    "pack_unit2",
    "unpack_unit1",
    "unpack_unit2",
    "pack_entries",
    "hash_sample_name",
    "hash_sample_names",
]
