"""The DLFS public API (paper §III-A).

``DLFS.mount`` plays the role of ``dlfs_mount``: it lays the dataset out
over the allocated NVMe devices, builds the in-memory sample directory,
and prepares the chunk plan.  Per-node :class:`DLFSClient` objects then
expose the thin API:

=================  ==========================================
paper API          this library
=================  ==========================================
``dlfs_mount``     ``DLFS.mount(...)`` / ``DLFS.mount_timed``
``dlfs_open``      ``client.open(name)``
``dlfs_read``      ``client.read(file_or_index)``
``dlfs_close``     ``client.close_file(f)``
``dlfs_sequence``  ``client.sequence(seed)``
``dlfs_bread``     ``client.bread(n)``
=================  ==========================================

All I/O entry points are *process helpers*: call them with ``yield
from`` inside a simulation process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Union

import numpy as np

from ..cluster import (
    Cluster,
    ClusterLifecycle,
    ClusterSpec,
    ClusterState,
    Communicator,
    FrontEndBalancer,
    Node,
    NodeReadCache,
    ShardMap,
)
from ..data import Dataset, DatasetLayout, ParallelFS
from ..errors import ConfigError, InvalidHandle, NotMounted
from ..faults import FaultInjector, FaultPlan, RecoveryPolicy
from ..hw import MB, NVMeDevice
from ..hw.cpu import BoundThread
from ..obs import OBS_OFF, Observability
from ..sim import Event, Store
from ..sim import rng as sim_rng
from ..spdk import IOQPair, NVMeoFTarget, SPDKDriver
from .batching import ChunkEpoch, ChunkPlan, delivery_order
from .directory import LocalValidBits, SampleDirectory, aggregate_directory
from .reader import CopyPool, LookupJob, Reactor, ReadJob
from .sequence import GlobalSequence

__all__ = ["DLFS", "DLFSClient", "DLFSConfig", "DLFSFile", "MountReport"]

#: Batching modes (paper §III-D).
BATCH_NONE = "none"       # DLFS-Base: synchronous per-sample reads
BATCH_SAMPLE = "sample"   # frontend sample-level batching
BATCH_CHUNK = "chunk"     # + backend chunk-level batching (full DLFS)


@dataclass(frozen=True)
class DLFSConfig:
    """Tunables of a DLFS instance."""

    #: "none" (DLFS-Base), "sample", or "chunk" (the full system).
    batching: str = BATCH_CHUNK
    #: SPDK I/O qpair queue depth.
    queue_depth: int = 128
    #: Chunk-pipeline window: in-cache data chunks the copy threads pick
    #: from (and the prefetch depth).
    window: int = 8
    #: Extra core indices for the copy-thread pool ((): copy inline on
    #: the reactor core — the paper's single-core configuration).
    copy_cores: tuple = ()
    #: Fig 7(b): application compute injected per polling-loop
    #: iteration, in seconds.
    injected_compute: float = 0.0
    #: Per-sample cost of the copy stage beyond the memcpy itself:
    #: selecting the next valid sample, V-bit bookkeeping, and handing
    #: the buffer across the API (calibrated against Fig 6's
    #: DLFS/Ext4-MC ratio).
    select_overhead: float = 0.60e-6
    #: Per-completion handling beyond the raw poll iteration.
    completion_overhead: float = 0.20e-6
    #: Default samples per bread() mini-batch (paper: 32).
    batch_per_rank: int = 32
    #: §III-C2 ablation: False polls every qpair's completion queue
    #: separately instead of the shared completion queue.
    use_scq: bool = True
    #: The paper's future-work extension (§III-C2): application buffers
    #: live on hugepages, so delivery hands out references into the
    #: sample cache instead of copying.  The previous batch's cache
    #: references are released when the next ``bread`` is issued
    #: (double-buffer discipline), so the application must be done with
    #: a batch before requesting the next.
    zero_copy: bool = False
    #: Deterministic fault injection (:mod:`repro.faults`).  ``None``
    #: (and a zero plan) keep the datapath bit-identical to a build
    #: without the fault subsystem — pay-for-use.
    fault_plan: Optional[FaultPlan] = None
    #: Recovery policy for the reactors.  ``None`` with a non-zero
    #: fault plan resolves to ``RecoveryPolicy()`` defaults.
    recovery: Optional[RecoveryPolicy] = None
    #: Observability (:mod:`repro.obs`): record end-to-end spans for
    #: every datapath operation (Chrome-trace exportable).  Off keeps
    #: the datapath bit-identical to an uninstrumented build.
    trace: bool = False
    #: Observability: collect counters/histograms/layer attribution in
    #: a unified :class:`repro.obs.MetricsRegistry`.
    metrics: bool = False
    #: Metrics time-series snapshot period in simulated seconds
    #: (0 = no periodic snapshots).  Pull-based — never extends a run.
    snapshot_period: float = 0.0
    #: Multi-tenant serving (:mod:`repro.tenancy`): per-tenant
    #: :class:`~repro.tenancy.TenantSpec` policies.  Empty keeps the
    #: single-job datapath bit-identical — pay-for-use, like faults/obs.
    tenants: tuple = ()
    #: Priority-bypass bound of the fair scheduler: how many times the
    #: SFQ leader may be passed over for a higher class before it is
    #: served regardless.
    tenancy_max_bypass: int = 8
    #: Replicated cluster serving tier (:mod:`repro.cluster`): R-way
    #: shard placement, front-end balancing, crash/rejoin failover.
    #: ``None`` — or a flat spec (``replicas=1``, balancer off) — keeps
    #: single-node construction bit-identical (pay-for-use).
    cluster: Optional[ClusterSpec] = None

    def validate(self) -> None:
        if self.batching not in (BATCH_NONE, BATCH_SAMPLE, BATCH_CHUNK):
            raise ConfigError(f"unknown batching mode {self.batching!r}")
        if self.queue_depth < 1 or self.window < 1 or self.batch_per_rank < 1:
            raise ConfigError("queue_depth, window, batch_per_rank must be >= 1")
        if self.injected_compute < 0 or self.select_overhead < 0:
            raise ConfigError("overheads must be >= 0")
        if self.snapshot_period < 0:
            raise ConfigError("snapshot_period must be >= 0")
        if self.fault_plan is not None:
            self.fault_plan.validate()
        if self.recovery is not None:
            self.recovery.validate()
        if self.tenancy_max_bypass < 1:
            raise ConfigError("tenancy_max_bypass must be >= 1")
        seen = []
        for spec in self.tenants:
            spec.validate()
            if spec.name in seen:
                raise ConfigError(f"duplicate tenant {spec.name!r}")
            seen.append(spec.name)
        if self.cluster is not None:
            self.cluster.validate()
            if self.tenants and not self.cluster.is_flat:
                raise ConfigError(
                    "cluster serving and tenancy SFQ are mutually exclusive "
                    "(cluster mode accounts tenants via ClusterRuntime)"
                )


@dataclass(eq=False)
class DLFSFile:
    """Handle returned by ``open`` (``dlfs_open``)."""

    sample_index: int
    length: int
    closed: bool = False


@dataclass(frozen=True)
class MountReport:
    """Timing breakdown of a timed ``dlfs_mount``."""

    staging_time: float
    directory_build_time: float
    aggregation_time: float

    @property
    def total(self) -> float:
        return self.staging_time + self.directory_build_time + self.aggregation_time


class DLFS:
    """A mounted DLFS instance: dataset, layout, directory, devices."""

    def __init__(
        self,
        cluster: Cluster,
        dataset: Dataset,
        config: Optional[DLFSConfig] = None,
        placement: Optional[list[tuple[int, int]]] = None,
        interleaved: bool = False,
        layout: Optional[DatasetLayout] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.dataset = dataset
        self.config = config or DLFSConfig()
        self.config.validate()
        if placement is None:
            placement = [(n.index, 0) for n in cluster if n.devices]
        if not placement:
            raise ConfigError("no NVMe devices available for DLFS")
        for node_idx, dev_idx in placement:
            node = cluster.node(node_idx)
            if dev_idx >= len(node.devices):
                raise ConfigError(
                    f"placement names device {dev_idx} on {node.name}, "
                    f"which has {len(node.devices)}"
                )
        self.placement = placement
        chunk_bytes = cluster.hugepage_chunk_size
        if layout is None:
            layout = DatasetLayout(
                dataset, num_shards=len(placement), interleaved=interleaved
            )
        elif layout.num_shards != len(placement):
            raise ConfigError(
                f"layout has {layout.num_shards} shards but placement "
                f"names {len(placement)} devices"
            )
        self.layout = layout
        self.directory = SampleDirectory(dataset, self.layout)
        self.plan = ChunkPlan(self.layout, chunk_bytes)
        # One NVMe-oF target per shard device, for remote clients.
        self.targets: list[NVMeoFTarget] = []
        for node_idx, dev_idx in placement:
            node = cluster.node(node_idx)
            self.targets.append(
                NVMeoFTarget(
                    self.env, node.name, node.devices[dev_idx], cluster.fabric
                )
            )
        # Replicated cluster serving tier (pay-for-use: a missing or
        # flat spec builds nothing and keeps the exact single-node
        # datapath).  Lanes are the shard index space: lane s is the
        # storage node that staged shard s (its anchored primary), so
        # replicas=1 placement is identical to flat mode by design.
        self.cluster_spec: Optional[ClusterSpec] = self.config.cluster
        self.shard_map: Optional[ShardMap] = None
        self.cluster_state: Optional[ClusterState] = None
        self.lifecycle: Optional[ClusterLifecycle] = None
        cspec = self.cluster_spec
        if cspec is not None and not cspec.is_flat:
            nodes_used = [node_idx for node_idx, _ in placement]
            if len(set(nodes_used)) != len(nodes_used):
                raise ConfigError(
                    "cluster serving needs one storage node per shard "
                    "(placement reuses a node)"
                )
            lanes = list(range(len(placement)))
            self.shard_map = ShardMap(
                num_shards=len(placement), nodes=lanes,
                replicas=cspec.replicas, anchors=lanes,
            )
            self.cluster_state = ClusterState(self.shard_map, self.layout, cspec)
            if cspec.read_cache_chunks > 0:
                for lane, target in enumerate(self.targets):
                    rc = NodeReadCache(
                        f"{target.name}.rcache",
                        cspec.read_cache_chunks,
                        chunk_bytes,
                    )
                    target.read_cache = rc
                    self.cluster_state.read_caches[lane] = rc
        # Fault injection: one shared injector drives every fault site
        # (devices, fabric, NVMe-oF targets, reactor reset schedules)
        # from one seed.  A zero plan builds nothing, so the healthy
        # datapath stays bit-identical (pay-for-use).
        self.injector: Optional[FaultInjector] = None
        self.recovery: Optional[RecoveryPolicy] = self.config.recovery
        plan = self.config.fault_plan
        if plan is not None and not plan.is_zero:
            self.injector = FaultInjector(plan)
            if self.recovery is None:
                self.recovery = RecoveryPolicy()
            cluster.fabric.install_fault_injector(self.injector)
            for node_idx, dev_idx in placement:
                device = cluster.node(node_idx).devices[dev_idx]
                device.install_fault_injector(self.injector)
            for target in self.targets:
                target.install_fault_injector(self.injector)
        # Observability mirrors the injector's install pattern: one
        # bundle per instance, wired onto every datapath component; the
        # default (both off) shares the null bundle and installs nothing.
        self.obs: Observability = OBS_OFF
        if self.config.trace or self.config.metrics:
            self.obs = Observability(
                self.env,
                trace=self.config.trace,
                metrics=self.config.metrics,
                snapshot_period=self.config.snapshot_period,
            )
            cluster.fabric.install_observability(self.obs)
            for node_idx, dev_idx in placement:
                node = cluster.node(node_idx)
                device = node.devices[dev_idx]
                device.install_observability(self.obs)
                self.obs.tracer.set_process(device.name, node.name)
            for target in self.targets:
                target.install_observability(self.obs)
                self.obs.tracer.set_process(target.name, target.host)
        # Node crash/rejoin lifecycle: needs the cluster state (to drive
        # failover) and the injector/obs hooks built above.
        crashes = () if plan is None else plan.node_crashes
        if crashes:
            if self.cluster_state is None:
                raise ConfigError(
                    "fault plan schedules node crashes but config.cluster "
                    "is off (need a ClusterSpec with replicas>1 or the "
                    "balancer enabled)"
                )
            self.lifecycle = ClusterLifecycle(
                self.env,
                self.cluster_state,
                cspec,
                crashes,
                targets=dict(enumerate(self.targets)),
                devices={
                    lane: self.device_for_shard(lane)
                    for lane in range(len(placement))
                },
                fabric=cluster.fabric,
                injector=self.injector,
                tracer=self.obs.tracer,
            )
        self._clients: list["DLFSClient"] = []
        self._mounted = False

    # -- mount -------------------------------------------------------------------
    @classmethod
    def mount(
        cls,
        cluster: Cluster,
        dataset: Dataset,
        config: Optional[DLFSConfig] = None,
        placement: Optional[list[tuple[int, int]]] = None,
        interleaved: bool = False,
    ) -> "DLFS":
        """Instant (untimed) mount: builds all structures, charges no
        simulated time.  Steady-state experiments use this."""
        fs = cls(cluster, dataset, config, placement, interleaved)
        fs.directory.build_all_shards()
        fs._mounted = True
        return fs

    @classmethod
    def mount_batched(
        cls,
        cluster: Cluster,
        dataset: Dataset,
        files,
        config: Optional[DLFSConfig] = None,
        placement: Optional[list[tuple[int, int]]] = None,
    ) -> "DLFS":
        """Mount a dataset stored as batched files (TFRecord/CIFAR style).

        Every sample keeps its own directory entry pointing at its
        payload inside the enclosing file (paper §III-B1: direct access
        to any sample in a TFRecord), and each batched file also gets a
        whole-file entry for file-oriented access
        (``directory.lookup_file``).
        """
        from ..data.batched_layout import BatchedFileLayout

        if placement is None:
            placement = [(n.index, 0) for n in cluster if n.devices]
        layout = BatchedFileLayout(dataset, files, num_shards=len(placement))
        fs = cls(cluster, dataset, config, placement, layout=layout)
        fs.directory.build_all_shards()
        for i, f in enumerate(files):
            shard, offset, nbytes = layout.file_extent(i)
            fs.directory.register_file_entry(f.name, shard, offset, nbytes)
        fs._mounted = True
        return fs

    def mount_timed(
        self,
        comm: Communicator,
        pfs: ParallelFS,
        write_chunk: int = 8 * MB,
    ) -> Generator[Event, Any, MountReport]:
        """Timed collective ``dlfs_mount`` (paper §III-A/B2).

        Every shard node stages its portion from the parallel file
        system onto its NVMe device, builds its local AVL tree, and one
        allgather replicates the directory.  Process helper.
        """
        env = self.env
        t0 = env.now

        def stage(shard: int) -> Generator[Event, Any, None]:
            node_idx, dev_idx = self.placement[shard]
            device = self.cluster.node(node_idx).devices[dev_idx]
            total = self.layout.shard_bytes(shard)
            start, _ = self.layout.shard_extent(shard)
            offset, remaining = start, total
            while remaining > 0:
                step = min(write_chunk, remaining)
                yield from pfs.read(step)
                cmd = device.write(offset - offset % 512, step + (-step % 512))
                yield cmd.completion
                offset += step
                remaining -= step

        staging = [
            env.process(stage(s), name=f"dlfs.stage{s}")
            for s in range(len(self.placement))
        ]
        yield env.all_of(staging)
        t1 = env.now

        # Local tree construction: each node hashes + inserts its share.
        spec = self.cluster.testbed.cpu
        build_times = []
        for shard in range(self.layout.num_shards):
            n_local = len(self.layout.shard_samples(shard))
            depth = max(1, int(np.ceil(np.log2(n_local + 1))))
            build_times.append(
                n_local * (spec.hash_cost + depth * spec.tree_node_visit)
            )
        yield env.timeout(max(build_times))  # nodes build in parallel
        t2 = env.now

        yield from aggregate_directory(comm, self.directory)
        t3 = env.now
        self._mounted = True
        return MountReport(
            staging_time=t1 - t0,
            directory_build_time=t2 - t1,
            aggregation_time=t3 - t2,
        )

    # -- clients ---------------------------------------------------------------
    def client(
        self,
        rank: int = 0,
        num_ranks: int = 1,
        node: Optional[Node] = None,
        core_index: int = 0,
    ) -> "DLFSClient":
        """Create the DLFS client for one training task."""
        if not self._mounted:
            raise NotMounted("DLFS.mount() (or mount_timed) must run first")
        if not 0 <= rank < num_ranks:
            raise ConfigError(f"rank {rank} out of range ({num_ranks} ranks)")
        if node is None:
            node = self.cluster.node(rank % len(self.cluster))
        client = DLFSClient(self, rank, num_ranks, node, core_index)
        self._clients.append(client)
        return client

    def device_for_shard(self, shard: int) -> NVMeDevice:
        node_idx, dev_idx = self.placement[shard]
        return self.cluster.node(node_idx).devices[dev_idx]

    def __repr__(self) -> str:
        return (
            f"<DLFS {self.dataset.name!r} shards={len(self.placement)} "
            f"mode={self.config.batching!r}>"
        )


class DLFSClient:
    """Per-task DLFS frontend + its pinned backend reactor."""

    def __init__(
        self,
        fs: DLFS,
        rank: int,
        num_ranks: int,
        node: Node,
        core_index: int,
    ) -> None:
        self.fs = fs
        self.env = fs.env
        self.rank = rank
        self.num_ranks = num_ranks
        self.node = node
        config = fs.config
        self.config = config

        self.driver = SPDKDriver(node)
        self.vbits = LocalValidBits(fs.directory)
        from .cache import SampleCache  # local import to avoid cycle

        self.cache = SampleCache(node.hugepages, on_evict=self._on_evict)
        inbox = Store(self.env, name=f"dlfs.{node.name}.r{rank}.scq")

        # One qpair per shard: direct to local devices, NVMe-oF otherwise.
        qpairs: dict[int, IOQPair] = {}
        for shard, (node_idx, dev_idx) in enumerate(fs.placement):
            if node_idx == node.index:
                device = node.devices[dev_idx]
                if not self.driver.is_unbound(device):
                    self.driver.unbind_from_kernel(device)
                qpairs[shard] = self.driver.connect(
                    device, queue_depth=config.queue_depth, completion_sink=inbox
                )
            else:
                qpairs[shard] = self.driver.connect(
                    fs.targets[shard],
                    queue_depth=config.queue_depth,
                    completion_sink=inbox,
                )
        self.qpairs = qpairs

        # Multi-tenant serving: build the runtime (admission + fair
        # scheduler + cache partition + accounting) only when tenants
        # are configured — pay-for-use like faults and obs.
        self.tenancy = None
        if config.tenants:
            from ..tenancy import TenantRuntime  # local import, no cycle

            self.tenancy = TenantRuntime(
                self.env,
                config.tenants,
                queue_depth=config.queue_depth,
                registry=fs.obs.metrics if fs.obs.enabled else None,
                max_bypass=config.tenancy_max_bypass,
            )
            # Tenant-keyed fault plans draw at completion delivery.
            if fs.injector is not None and fs.injector.has_tenant_faults:
                for qp in qpairs.values():
                    qp.injector = fs.injector

        # Cluster serving: each client gets its own front-end balancer
        # view over the shared cluster state (pay-for-use: None off).
        self.balancer = None
        if fs.cluster_state is not None:
            self.balancer = FrontEndBalancer(
                fs.cluster_state, hedge_delay=fs.cluster_spec.hedge_delay
            )

        thread = BoundThread(node.cpu.core(core_index), f"dlfs.r{rank}.io")
        testbed = fs.cluster.testbed
        self.reactor = Reactor(
            env=self.env,
            thread=thread,
            qpairs=qpairs,
            cache=self.cache,
            vbits=self.vbits,
            directory=fs.directory,
            plan=fs.plan,
            cpu_spec=testbed.cpu,
            net_spec=testbed.network,
            select_overhead=config.select_overhead,
            completion_overhead=config.completion_overhead,
            injected_compute=config.injected_compute,
            inbox=inbox,
            use_scq=config.use_scq,
            zero_copy=config.zero_copy,
            injector=fs.injector,
            recovery=fs.recovery,
            tenancy=self.tenancy,
            balancer=self.balancer,
            name=f"dlfs.{node.name}.r{rank}",
        )
        if fs.lifecycle is not None:
            fs.lifecycle.register(self.reactor)
        if config.copy_cores:
            cores = [node.cpu.core(i) for i in config.copy_cores]
            pool = CopyPool(self.env, cores, kick=self.reactor._kick)
            self.reactor.copy_pool = pool
        if fs.obs.enabled:
            for qp in qpairs.values():
                qp.install_observability(fs.obs)
                fs.obs.tracer.set_process(qp.name, node.name)
            self.reactor.install_observability(fs.obs)
            fs.obs.tracer.set_process(self.reactor.name, node.name)
            fs.obs.tracer.set_process(f"{self.reactor.name}.copy", node.name)
        # Zero-copy mode: cache keys lent to the application by the
        # previous batch, released when the next one is requested.
        self._lent_keys: list = []
        #: Per-sample failures surfaced by completed jobs (graceful
        #: degradation: jobs finish, losses are reported here).
        self.error_log: list = []
        # Epoch state (set by sequence()).
        self._global_seq: Optional[GlobalSequence] = None
        self._epoch: Optional[ChunkEpoch] = None
        self._delivery = None
        self._pos = 0
        self._batch_counter = 0

    # -- eviction: clear the directory V bits of evicted spans --------------------
    def _on_evict(self, key) -> None:
        kind = key[0]
        if kind in ("s", "e"):
            self.vbits.clear_valid(key[1])
        else:  # ("c", gid)
            self.vbits.clear_valid_many(self.fs.plan.chunk_members[key[1]])

    # -- dlfs_open / dlfs_read / dlfs_close ---------------------------------------
    def open(self, name: str) -> Generator[Event, Any, DLFSFile]:
        """``dlfs_open``: resolve a sample name through the directory."""
        job = LookupJob(done=self.env.event(), name=name)
        self.reactor.submit(job)
        result = yield job.done
        return DLFSFile(sample_index=result.sample_index, length=result.length)

    def read(self, target: Union[DLFSFile, int]) -> Generator[Event, Any, int]:
        """``dlfs_read``: synchronous full read of one sample."""
        if isinstance(target, DLFSFile):
            if target.closed:
                raise InvalidHandle("file handle is closed")
            index = target.sample_index
        else:
            index = int(target)
        self._release_lent()
        job = ReadJob(
            samples=np.array([index], dtype=np.int64), done=self.env.event()
        )
        self.reactor.submit(job)
        yield job.done
        self._collect_lent(job)
        return int(self.fs.dataset.sizes[index])

    def close_file(self, f: DLFSFile) -> None:
        """``dlfs_close``."""
        if f.closed:
            raise InvalidHandle("file handle already closed")
        f.closed = True

    def read_batch(self, sample_indices) -> Generator[Event, Any, int]:
        """Sample-level batched read of explicit samples (one job, many
        overlapped fetches)."""
        samples = np.asarray(sample_indices, dtype=np.int64)
        self._release_lent()
        job = ReadJob(samples=samples, done=self.env.event())
        self.reactor.submit(job)
        yield job.done
        self._collect_lent(job)
        return int(self.fs.dataset.sizes[samples].sum())

    # -- dlfs_sequence / dlfs_bread --------------------------------------------------
    def sequence(self, seed: int, batch_per_rank: Optional[int] = None) -> None:
        """``dlfs_sequence``: arm a new epoch from a shared seed."""
        batch = batch_per_rank or self.config.batch_per_rank
        if self.config.batching == BATCH_CHUNK:
            self._epoch = ChunkEpoch(self.fs.plan, seed, self.num_ranks)
            # Per-rank generator stream derived from (seed, rank).
            order_seed = int(
                sim_rng("dlfs.sequence.rank", [seed, self.rank]).integers(2**31)
            )
            self._delivery = delivery_order(
                self.fs.plan,
                self._epoch.rank_chunks(self.rank),
                self._epoch.rank_edges(self.rank),
                seed=order_seed,
                window=self.config.window,
            )
            self._pos = 0
        else:
            self._global_seq = GlobalSequence(
                self.fs.dataset.num_samples,
                seed,
                num_ranks=self.num_ranks,
                batch_per_rank=batch,
            )
            self._rank_order = self._global_seq.epoch_order_for_rank(self.rank)
            self._pos = 0

    @property
    def epoch_remaining(self) -> int:
        """Samples left before the epoch is exhausted."""
        if self.config.batching == BATCH_CHUNK:
            if self._delivery is None:
                return 0
            return len(self._delivery) - self._pos
        if self._global_seq is None:
            return 0
        return len(self._rank_order) - self._pos

    def bread(self, count: Optional[int] = None) -> Generator[Event, Any, np.ndarray]:
        """``dlfs_bread``: deliver the next mini-batch of samples.

        Returns the indices of the delivered samples.  Requires a prior
        :meth:`sequence` call.
        """
        count = count or self.config.batch_per_rank
        if self.config.batching == BATCH_CHUNK:
            samples = yield from self._bread_chunk(count)
        elif self.config.batching == BATCH_SAMPLE:
            samples = yield from self._bread_sample(count)
        else:
            samples = yield from self._bread_base(count)
        return samples

    def _bread_chunk(self, count: int) -> Generator[Event, Any, np.ndarray]:
        if self._delivery is None:
            raise NotMounted("call sequence() before bread()")
        if self._pos >= len(self._delivery):
            raise ConfigError("epoch exhausted; call sequence() with a new seed")
        end = min(self._pos + count, len(self._delivery))
        d = self._delivery
        samples = d.order[self._pos:end]
        requirements = [
            (int(d.req_kind[i]), int(d.req_id[i])) for i in range(self._pos, end)
        ]
        prefetch = self._prefetch_keys(end)
        self._pos = end
        self._release_lent()
        job = ReadJob(
            samples=samples,
            done=self.env.event(),
            requirements=requirements,
            prefetch=prefetch,
        )
        self.reactor.submit(job)
        yield job.done
        self._collect_lent(job)
        return samples

    def _prefetch_keys(self, from_pos: int) -> tuple:
        """Distinct upcoming requirements, up to the window depth."""
        d = self._delivery
        seen: list[tuple[int, int]] = []
        i = from_pos
        while i < len(d) and len(seen) < self.config.window:
            req = (int(d.req_kind[i]), int(d.req_id[i]))
            if req not in seen:
                seen.append(req)
            i += 1
        return tuple(seen)

    def _next_portion(self, count: int) -> np.ndarray:
        if self._global_seq is None:
            raise NotMounted("call sequence() before bread()")
        if self._pos >= len(self._rank_order):
            raise ConfigError("epoch exhausted; call sequence() with a new seed")
        end = min(self._pos + count, len(self._rank_order))
        portion = self._rank_order[self._pos:end]
        self._pos = end
        return portion

    def _bread_sample(self, count: int) -> Generator[Event, Any, np.ndarray]:
        portion = self._next_portion(count)
        self._release_lent()
        job = ReadJob(samples=portion, done=self.env.event())
        self.reactor.submit(job)
        yield job.done
        self._collect_lent(job)
        return portion

    def _bread_base(self, count: int) -> Generator[Event, Any, np.ndarray]:
        """DLFS-Base: one synchronous dlfs_read per sample (§III-D's
        motivating anti-pattern)."""
        portion = self._next_portion(count)
        for idx in portion:
            yield from self.read(int(idx))
        return portion

    # -- zero-copy buffer lending --------------------------------------------------
    def _release_lent(self) -> None:
        """Return the previous batch's cache references (zero-copy)."""
        for key in self._lent_keys:
            self.cache.release(key)
        self._lent_keys.clear()

    def _collect_lent(self, job: ReadJob) -> None:
        if job.retained:
            self._lent_keys.extend(job.retained)
        if job.errors:
            self.error_log.extend(job.errors)

    def release_buffers(self) -> None:
        """Explicitly return zero-copy buffers before the next batch."""
        self._release_lent()

    # -- lifecycle / stats -----------------------------------------------------------
    def shutdown(self) -> Generator[Event, Any, None]:
        """Stop the reactor and free its core."""
        self._release_lent()
        yield self.reactor.stop()

    @property
    def samples_delivered(self) -> int:
        return self.reactor.samples_delivered

    @property
    def failed_samples(self) -> int:
        """Samples lost to unrecoverable faults (graceful degradation)."""
        return len(self.error_log)

    @property
    def recovery_stats(self):
        """The reactor's :class:`repro.sim.RecoveryStats`."""
        return self.reactor.recovery_stats

    def error_report(self) -> dict:
        """Structured per-job error accounting for this client."""
        by_key: dict = {}
        for exc in self.error_log:
            by_key.setdefault(exc.key, []).append(str(exc))
        return {
            "failed_samples": len(self.error_log),
            "by_span": by_key,
            "recovery": self.reactor.recovery_stats.as_dict(),
        }

    def sample_throughput(self) -> float:
        """Delivered samples per simulated second."""
        return self.reactor.read_meter.rate()

    def bandwidth(self) -> float:
        return self.reactor.read_meter.bandwidth()

    def __repr__(self) -> str:
        return (
            f"<DLFSClient rank={self.rank}/{self.num_ranks} on "
            f"{self.node.name!r} mode={self.config.batching!r}>"
        )
