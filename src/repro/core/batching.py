"""Opportunistic chunk-level batching (paper §III-D2).

At mount time the packed shard ranges are divided into fixed-size *data
chunks* (256 KB by default).  Samples fully inside one chunk are
*interior*; samples crossing a chunk boundary are *edge samples* and are
fetched individually.  ``dlfs_sequence`` shuffles a **data-chunk access
list** (chunk id + key of its first complete sample) and an **edge
sample access list**; ``dlfs_bread`` then serves samples by repeatedly
picking a random in-cache chunk (or the edge stream) and delivering its
next valid sample — the discipline of Fig 5(b).

Everything here is pure (no simulation): the same order generator
drives both the simulated reader and the training-accuracy experiment
(Fig 13), so the accuracy result really reflects the I/O path's
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import DatasetLayout
from ..errors import ConfigError
from ..sim import rng as sim_rng

__all__ = [
    "ChunkPlan",
    "ChunkEpoch",
    "delivery_order",
    "DEFAULT_CHUNK_BYTES",
]

DEFAULT_CHUNK_BYTES = 256 * 1024

#: Requirement kinds attached to each delivered sample.
REQ_CHUNK = 0
REQ_EDGE = 1


class ChunkPlan:
    """Static chunking of a mounted layout: chunks, members, edge samples."""

    def __init__(self, layout: DatasetLayout, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if chunk_bytes < 4096 or chunk_bytes % 512:
            raise ConfigError("chunk_bytes must be >= 4096 and 512-aligned")
        self.layout = layout
        self.chunk_bytes = chunk_bytes
        dataset = layout.dataset
        n = dataset.num_samples
        base = layout.base_offset

        # Chunks are numbered globally: shard s contributes
        # ceil(shard_bytes / chunk_bytes) chunks after prefix offsets.
        per_shard = np.array(
            [
                -(-layout.shard_bytes(s) // chunk_bytes)
                for s in range(layout.num_shards)
            ],
            dtype=np.int64,
        )
        self.chunks_per_shard = per_shard
        self._gid_base = np.concatenate(([0], np.cumsum(per_shard)))
        self.num_chunks = int(per_shard.sum())
        self.chunk_shard = np.repeat(
            np.arange(layout.num_shards, dtype=np.int32), per_shard
        )
        self.chunk_local = np.concatenate(
            [np.arange(c, dtype=np.int64) for c in per_shard]
        ) if self.num_chunks else np.empty(0, dtype=np.int64)

        # Classify samples (vectorized).
        rel_start = layout.offsets - base
        rel_end = rel_start + dataset.sizes - 1
        first_chunk = rel_start // chunk_bytes
        last_chunk = rel_end // chunk_bytes
        interior = first_chunk == last_chunk
        gid = self._gid_base[layout.shard_ids] + first_chunk
        self.sample_chunk = np.where(interior, gid, -1).astype(np.int64)
        self.sample_chunk.setflags(write=False)
        self.edge_samples = np.flatnonzero(~interior).astype(np.int64)
        self.edge_samples.setflags(write=False)

        # Interior members per chunk, in on-device (offset) order — for
        # packed layouts index order coincides, but batched-file layouts
        # can permute samples within a file, so sort by offset explicitly.
        members: list[np.ndarray] = [None] * self.num_chunks  # type: ignore
        interior_idx = np.flatnonzero(interior)
        order = np.lexsort(
            (layout.offsets[interior_idx], self.sample_chunk[interior_idx])
        )
        sorted_idx = interior_idx[order]
        sorted_gid = self.sample_chunk[sorted_idx]
        boundaries = np.flatnonzero(np.diff(sorted_gid)) + 1
        groups = np.split(sorted_idx, boundaries)
        group_gids = sorted_gid[np.concatenate(([0], boundaries))] if len(sorted_idx) else []
        for g, members_arr in zip(group_gids, groups):
            members[int(g)] = members_arr
        empty = np.empty(0, dtype=np.int64)
        self.chunk_members: list[np.ndarray] = [
            m if m is not None else empty for m in members
        ]

    # -- access-list construction ------------------------------------------------
    def nonempty_chunks(self) -> np.ndarray:
        """Chunk ids with at least one complete (interior) sample — the
        candidates for the data-chunk access list."""
        return np.array(
            [g for g in range(self.num_chunks) if len(self.chunk_members[g])],
            dtype=np.int64,
        )

    def access_list_entries(self, keys: np.ndarray) -> list[tuple[int, int]]:
        """(chunk id, key of first complete sample) pairs (paper Fig 5b)."""
        return [
            (int(g), int(keys[self.chunk_members[g][0]]))
            for g in self.nonempty_chunks()
        ]

    # -- geometry -----------------------------------------------------------------
    def chunk_span(self, gid: int) -> tuple[int, int, int]:
        """-> (shard, device offset, nbytes) of one chunk, clipped to the
        shard's packed extent."""
        if not 0 <= gid < self.num_chunks:
            raise ConfigError(f"chunk id {gid} out of range")
        shard = int(self.chunk_shard[gid])
        local = int(self.chunk_local[gid])
        start, end = self.layout.shard_extent(shard)
        offset = start + local * self.chunk_bytes
        nbytes = min(self.chunk_bytes, end - offset)
        return shard, offset, nbytes

    @property
    def num_edge_samples(self) -> int:
        return len(self.edge_samples)

    def __repr__(self) -> str:
        return (
            f"<ChunkPlan chunks={self.num_chunks} "
            f"edges={self.num_edge_samples} chunk={self.chunk_bytes}B>"
        )


class ChunkEpoch:
    """One epoch's shuffled chunk + edge access lists, split across ranks.

    The same ``seed`` on every rank produces the same lists; rank r
    consumes every ``num_ranks``-th entry, so collectively each chunk
    (and edge sample) is read exactly once per epoch.
    """

    def __init__(self, plan: ChunkPlan, seed: int, num_ranks: int = 1) -> None:
        if num_ranks < 1:
            raise ConfigError("num_ranks must be >= 1")
        self.plan = plan
        self.seed = seed
        self.num_ranks = num_ranks
        rng = sim_rng("dlfs.epoch.chunks", seed)
        self.chunk_list = rng.permutation(plan.nonempty_chunks())
        self.edge_list = rng.permutation(plan.edge_samples.copy())
        self.chunk_list.setflags(write=False)
        self.edge_list.setflags(write=False)

    def rank_chunks(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return self.chunk_list[rank::self.num_ranks]

    def rank_edges(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return self.edge_list[rank::self.num_ranks]

    def rank_sample_count(self, rank: int) -> int:
        """Samples rank r will deliver this epoch."""
        chunks = self.rank_chunks(rank)
        interior = sum(len(self.plan.chunk_members[int(g)]) for g in chunks)
        return interior + len(self.rank_edges(rank))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ConfigError(f"rank {rank} out of range ({self.num_ranks})")

    def __repr__(self) -> str:
        return (
            f"<ChunkEpoch seed={self.seed} chunks={len(self.chunk_list)} "
            f"edges={len(self.edge_list)} ranks={self.num_ranks}>"
        )


@dataclass(frozen=True)
class DeliveryPlan:
    """Precomputed delivery for one rank-epoch.

    ``order[i]`` is the i-th delivered sample; ``requirement[i]`` is
    what must be resident before delivering it: ``(REQ_CHUNK, gid)`` or
    ``(REQ_EDGE, sample)``.
    """

    order: np.ndarray
    req_kind: np.ndarray
    req_id: np.ndarray

    def __len__(self) -> int:
        return len(self.order)


def delivery_order(
    plan: ChunkPlan,
    chunks: np.ndarray,
    edges: np.ndarray,
    seed: int,
    window: int = 8,
) -> DeliveryPlan:
    """Generate the DLFS-determined sample order (paper Fig 5b).

    A window of up to ``window`` chunks is "in cache"; each step picks a
    uniformly random active cursor — one per in-window chunk, plus one
    for the edge-sample stream — and delivers that cursor's next sample.
    An exhausted chunk leaves the window and the next chunk from the
    access list enters.
    """
    if window < 1:
        raise ConfigError("window must be >= 1")
    rng = sim_rng("dlfs.delivery.window", seed)
    chunk_iter = iter(int(g) for g in chunks)
    order: list[int] = []
    req_kind: list[int] = []
    req_id: list[int] = []

    # Each cursor: (kind, ident, member array, position).
    cursors: list[list] = []
    chunk_cursors = 0  # running count of REQ_CHUNK entries in ``cursors``

    def refill() -> None:
        nonlocal chunk_cursors
        while chunk_cursors < window:
            try:
                gid = next(chunk_iter)
            except StopIteration:
                return
            # Plain-list members: per-sample indexing below then yields
            # Python ints directly instead of numpy scalars.
            members = plan.chunk_members[gid].tolist()
            if members:
                cursors.append([REQ_CHUNK, gid, members, 0])
                chunk_cursors += 1

    if len(edges):
        cursors.append([REQ_EDGE, -1, list(map(int, edges)), 0])
    refill()

    while cursors:
        pick = int(rng.integers(len(cursors))) if len(cursors) > 1 else 0
        cursor = cursors[pick]
        kind, ident, members, pos = cursor
        sample = members[pos]
        order.append(sample)
        if kind == REQ_CHUNK:
            req_kind.append(REQ_CHUNK)
            req_id.append(ident)
        else:
            req_kind.append(REQ_EDGE)
            req_id.append(sample)
        cursor[3] += 1
        if cursor[3] >= len(members):
            cursors.pop(pick)
            if kind == REQ_CHUNK:
                chunk_cursors -= 1
                refill()

    return DeliveryPlan(
        order=np.asarray(order, dtype=np.int64),
        req_kind=np.asarray(req_kind, dtype=np.int8),
        req_id=np.asarray(req_id, dtype=np.int64),
    )
