"""In-memory tree-based sample directory (paper §III-B).

The directory is an array of balanced AVL trees, one per storage shard,
keyed by the 48-bit hash of each sample's name.  Entries are the real
128-bit packed records of :mod:`repro.core.entry`, held in two uint64
numpy columns; tree payloads are ``(sample_index, check)`` pairs so key
collisions resolve by the 16-bit check hash.

Construction mirrors the paper: every node builds the tree for *its*
shard from its uploaded samples (:meth:`build_shard`), then one
allgather replicates all trees everywhere
(:func:`aggregate_directory`).  In the simulation the replicas share
one Python object — the replicas are bit-identical by construction —
except for the **V bit**, which tracks presence in each node's *local*
sample cache and therefore lives in a per-client
:class:`LocalValidBits` overlay rather than in the shared entry words.

Memory check (paper §III-B2): 16 bytes/entry -> 0.8 GB for 50 M
samples; :meth:`SampleDirectory.entry_bytes` reports exactly that.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from ..cluster import Communicator
from ..data import Dataset, DatasetLayout
from ..errors import DirectoryError, FileNotFound
from ..sim import Event
from .avltree import AVLTree
from .entry import hash_sample_name, len_of, nid_of, offset_of, pack_entries

__all__ = ["SampleDirectory", "LocalValidBits", "LookupResult", "aggregate_directory"]

#: Wire size of one directory entry (two 64-bit units).
ENTRY_BYTES = 16


class LookupResult:
    """Resolved sample: identity, location, and the lookup's tree cost."""

    __slots__ = ("sample_index", "shard", "offset", "length", "visits")

    def __init__(self, sample_index: int, shard: int, offset: int,
                 length: int, visits: int) -> None:
        self.sample_index = sample_index
        self.shard = shard
        self.offset = offset
        self.length = length
        self.visits = visits

    def __repr__(self) -> str:
        return (
            f"<LookupResult sample={self.sample_index} shard={self.shard} "
            f"[{self.offset}, {self.offset + self.length})>"
        )


class SampleDirectory:
    """The replicated sample directory for one mounted dataset."""

    def __init__(self, dataset: Dataset, layout: DatasetLayout) -> None:
        if layout.dataset is not dataset:
            raise DirectoryError("layout was built for a different dataset")
        self.dataset = dataset
        self.layout = layout
        self.num_shards = layout.num_shards
        n = dataset.num_samples
        keys, checks = dataset.hash_all_names()
        self.keys = keys
        self.checks = checks
        self.unit1, self.unit2 = pack_entries(
            nids=layout.shard_ids.astype(np.uint64),
            keys=keys,
            offsets=layout.offsets.astype(np.uint64),
            lengths=dataset.sizes.astype(np.uint64),
        )
        self._trees: list[Optional[AVLTree]] = [None] * self.num_shards
        self._built_shards: set[int] = set()
        # Batched-file entries (§III-B1: "there is also an entry taken by
        # the batched file for file-oriented access").
        self._file_entries: dict[str, tuple[int, int, int, int]] = {}

    # -- construction ------------------------------------------------------------
    def build_shard(self, shard: int) -> AVLTree:
        """Build the AVL tree for one shard (each node does its own)."""
        if not 0 <= shard < self.num_shards:
            raise DirectoryError(f"shard {shard} out of range")
        members = self.layout.shard_samples(shard)
        member_keys = self.keys[members]
        order = np.argsort(member_keys, kind="stable")
        sorted_keys = member_keys[order]
        sorted_members = members[order]
        payloads = [
            (int(i), int(self.checks[i]))
            for i in sorted_members
        ]
        tree = AVLTree.build_sorted([int(k) for k in sorted_keys], payloads)
        self._trees[shard] = tree
        self._built_shards.add(shard)
        return tree

    def build_all_shards(self) -> None:
        for shard in range(self.num_shards):
            if shard not in self._built_shards:
                self.build_shard(shard)

    @property
    def is_complete(self) -> bool:
        """True once every shard's tree is present (post-allgather state)."""
        return len(self._built_shards) == self.num_shards

    def tree(self, shard: int) -> AVLTree:
        t = self._trees[shard]
        if t is None:
            raise DirectoryError(f"shard {shard} tree not built/aggregated yet")
        return t

    # -- size accounting --------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return self.dataset.num_samples

    @property
    def entry_bytes(self) -> int:
        """In-memory size of the packed entries (16 B per sample)."""
        return self.num_entries * ENTRY_BYTES

    def shard_entry_bytes(self, shard: int) -> int:
        return len(self.layout.shard_samples(shard)) * ENTRY_BYTES

    # -- lookups ---------------------------------------------------------------
    def lookup_index(self, sample_index: int) -> LookupResult:
        """Directory lookup by sample index (the common fast path).

        Resolves through the owning shard's AVL tree so the returned
        ``visits`` reflects the true descent cost.
        """
        if not 0 <= sample_index < self.dataset.num_samples:
            raise FileNotFound(f"sample index {sample_index}")
        unit1 = int(self.unit1[sample_index])
        shard = nid_of(unit1)
        key = int(self.keys[sample_index])
        payloads, visits = self.tree(shard).search(key)
        for idx, _check in payloads:
            if idx == sample_index:
                unit2 = int(self.unit2[sample_index])
                return LookupResult(
                    sample_index, shard, offset_of(unit2), len_of(unit2), visits
                )
        raise DirectoryError(
            f"directory corrupt: sample {sample_index} missing from its tree"
        )

    def register_file_entry(
        self, name: str, shard: int, offset: int, length: int
    ) -> None:
        """Add a whole-file entry alongside the sample entries.

        The batched file becomes addressable by name for file-oriented
        access while every contained sample keeps its own entry.
        """
        if name in self._file_entries:
            raise DirectoryError(f"file entry {name!r} already registered")
        if not 0 <= shard < self.num_shards:
            raise DirectoryError(f"shard {shard} out of range")
        key, check = hash_sample_name(name)
        entry_id = -(len(self._file_entries) + 1)  # negative: not a sample
        self._file_entries[name] = (shard, offset, length, check)
        self.tree(shard).insert(key, (entry_id, check))

    @property
    def num_file_entries(self) -> int:
        return len(self._file_entries)

    def lookup_file(self, name: str) -> LookupResult:
        """Resolve a batched file by name (file-oriented access).

        Walks the owning shard's tree like any lookup, so ``visits``
        carries the real descent cost; ``sample_index`` is -1.
        """
        record = self._file_entries.get(name)
        if record is None:
            raise FileNotFound(name)
        shard, offset, length, _check = record
        key, _ = hash_sample_name(name)
        _payloads, visits = self.tree(shard).search(key)
        return LookupResult(-1, shard, offset, length, visits)

    def lookup_name(self, name: str) -> LookupResult:
        """Directory lookup by sample name (``dlfs_open`` path).

        The shard is not known a priori, so trees are probed in order —
        matching the paper's partition-by-name scheme where the client
        derives the partition from the hash.  With the canonical naming
        scheme the key determines candidate entries directly.
        """
        key, check = hash_sample_name(name)
        total_visits = 0
        for shard in range(self.num_shards):
            payloads, visits = self.tree(shard).search(key)
            total_visits += visits
            for idx, entry_check in payloads:
                if idx < 0:
                    continue  # whole-file entry, not a sample
                if entry_check == check and self.dataset.sample_name(idx) == name:
                    unit2 = int(self.unit2[idx])
                    return LookupResult(
                        idx, nid_of(int(self.unit1[idx])),
                        offset_of(unit2), len_of(unit2), total_visits,
                    )
        raise FileNotFound(name)

    def __repr__(self) -> str:
        state = "complete" if self.is_complete else f"{len(self._built_shards)} shards"
        return (
            f"<SampleDirectory {self.dataset.name!r} entries={self.num_entries} "
            f"shards={self.num_shards} ({state})>"
        )


class LocalValidBits:
    """Per-client V bits: which samples have a copy in the local cache.

    Semantically these are the V fields of the client's directory
    replica (paper Fig 3b); they live in a bitmap overlay because in the
    simulation the replicas share one entry table.
    """

    def __init__(self, directory: SampleDirectory) -> None:
        self.directory = directory
        self._bits = np.zeros(directory.num_entries, dtype=bool)

    def is_valid(self, sample_index: int) -> bool:
        return bool(self._bits[sample_index])

    def set_valid(self, sample_index: int) -> None:
        self._bits[sample_index] = True

    def set_valid_many(self, sample_indices) -> None:
        self._bits[np.asarray(sample_indices, dtype=np.int64)] = True

    def clear_valid_many(self, sample_indices) -> None:
        self._bits[np.asarray(sample_indices, dtype=np.int64)] = False

    def clear_valid(self, sample_index: int) -> None:
        self._bits[sample_index] = False

    @property
    def valid_count(self) -> int:
        return int(self._bits.sum())


def aggregate_directory(
    comm: Communicator, directory: SampleDirectory
) -> Generator[Event, Any, SampleDirectory]:
    """Collective construction of the replicated directory (§III-B2).

    Each rank builds its own shard tree locally, then one ring allgather
    moves every shard's packed entries (16 B each) to every node.
    Process helper: yields simulated transfer events; returns the
    completed directory.
    """
    if comm.size != directory.num_shards:
        raise DirectoryError(
            f"communicator size {comm.size} != shards {directory.num_shards}"
        )
    for shard in range(directory.num_shards):
        directory.build_shard(shard)
    payload_bytes = [
        directory.shard_entry_bytes(s) for s in range(directory.num_shards)
    ]
    yield from comm.allgather(
        values=list(range(directory.num_shards)), nbytes_each=payload_bytes
    )
    return directory
