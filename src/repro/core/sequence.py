"""Seeded global sample sequences (paper §III-D1, ``dlfs_sequence``).

Every training task calls ``dlfs_sequence(seed)`` with the *same* seed;
each node then derives the identical global random order locally and
reads only its own slice of every mini-batch — no inter-node agreement
traffic (the paper's point: the seed replaces synchronization).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..sim import rng as sim_rng

__all__ = ["GlobalSequence"]


class GlobalSequence:
    """One epoch's global random sample order, sliced per rank and batch."""

    def __init__(
        self,
        num_samples: int,
        seed: int,
        num_ranks: int = 1,
        batch_per_rank: int = 32,
    ) -> None:
        if num_samples < 1:
            raise ConfigError("num_samples must be >= 1")
        if num_ranks < 1:
            raise ConfigError("num_ranks must be >= 1")
        if batch_per_rank < 1:
            raise ConfigError("batch_per_rank must be >= 1")
        self.num_samples = num_samples
        self.seed = seed
        self.num_ranks = num_ranks
        self.batch_per_rank = batch_per_rank
        self.global_batch = num_ranks * batch_per_rank
        # The same seed on every node yields the same permutation.
        self.order = sim_rng("dlfs.sequence.order", seed).permutation(num_samples)
        self.order.setflags(write=False)

    @property
    def num_batches(self) -> int:
        """Full global batches per epoch (a short tail batch is dropped,
        the standard drop-remainder discipline of distributed SGD)."""
        return self.num_samples // self.global_batch

    def batch_slice(self, batch_index: int) -> np.ndarray:
        """All sample indices of global mini-batch ``batch_index``."""
        self._check_batch(batch_index)
        start = batch_index * self.global_batch
        return self.order[start:start + self.global_batch]

    def rank_portion(self, batch_index: int, rank: int) -> np.ndarray:
        """The slice of a mini-batch that ``rank`` reads (paper Fig 5a)."""
        self._check_rank(rank)
        batch = self.batch_slice(batch_index)
        start = rank * self.batch_per_rank
        return batch[start:start + self.batch_per_rank]

    def epoch_order_for_rank(self, rank: int) -> np.ndarray:
        """Concatenated per-batch portions for a whole epoch."""
        self._check_rank(rank)
        if self.num_batches == 0:
            return np.empty(0, dtype=self.order.dtype)
        # View the used prefix as (batches, ranks, batch_per_rank).
        used = self.order[: self.num_batches * self.global_batch]
        cube = used.reshape(self.num_batches, self.num_ranks, self.batch_per_rank)
        return cube[:, rank, :].reshape(-1)

    def _check_batch(self, batch_index: int) -> None:
        if not 0 <= batch_index < self.num_batches:
            raise ConfigError(
                f"batch {batch_index} out of range ({self.num_batches} batches)"
            )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ConfigError(f"rank {rank} out of range ({self.num_ranks})")

    def __repr__(self) -> str:
        return (
            f"<GlobalSequence n={self.num_samples} seed={self.seed} "
            f"ranks={self.num_ranks} batch={self.batch_per_rank}>"
        )
