"""Observability: end-to-end tracing, metrics, and latency attribution.

The subsystem has three pieces, all purely observational (recording
never schedules simulation events, consumes randomness, or charges
simulated time — a run with observability on delivers the same samples
in the same order and ends at the same sim time as one without):

* :mod:`repro.obs.span` — sim-time-stamped spans with parent/child
  causality and point events (:class:`Tracer` / :class:`Span`).
* :mod:`repro.obs.metrics` — the unified :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms, per-layer busy-time
  attribution, recovery stats).
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto), the
  plaintext latency-breakdown and percentile tables, JSON metrics dump.

Components take an :class:`Observability` handle (or its tracer) via
constructor/installer; disabled instances hand out shared null objects,
so the healthy fast path pays one attribute check (the same
pay-for-use discipline as :mod:`repro.faults`).
"""

from .metrics import (
    DEFAULT_BOUNDS,
    NULL_METRICS,
    CounterMetric,
    Gauge,
    Histogram,
    LayerTimes,
    MetricsRegistry,
    NullMetrics,
    RecoveryStats,
    log_bounds,
)
from .span import NULL_SPAN, NULL_TRACER, NullSpan, NullTracer, Span, Tracer
from .export import (
    breakdown_rows,
    chrome_trace,
    percentile_rows,
    render_breakdown,
    render_percentiles,
    render_tenants,
    render_cluster,
    render_xform,
    write_chrome_trace,
    write_metrics,
)

__all__ = [
    "Observability",
    "OBS_OFF",
    "Tracer",
    "Span",
    "NullTracer",
    "NullSpan",
    "NULL_TRACER",
    "NULL_SPAN",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "CounterMetric",
    "Gauge",
    "Histogram",
    "LayerTimes",
    "RecoveryStats",
    "DEFAULT_BOUNDS",
    "log_bounds",
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    "breakdown_rows",
    "render_breakdown",
    "percentile_rows",
    "render_percentiles",
    "render_tenants",
    "render_cluster",
    "render_xform",
]


class Observability:
    """Bundle of one tracer + one metrics registry for a testbed.

    Build with both off (the default) and the bundle is pure null
    objects; :class:`repro.core.DLFS` constructs one from
    ``DLFSConfig.trace`` / ``DLFSConfig.metrics`` and installs it on
    every datapath component.
    """

    def __init__(
        self,
        env=None,
        trace: bool = False,
        metrics: bool = False,
        snapshot_period: float = 0.0,
    ) -> None:
        if (trace or metrics) and env is None:
            raise ValueError("enabled observability needs an environment")
        self.env = env
        self.tracer = Tracer(env) if trace else NULL_TRACER
        self.metrics = (
            MetricsRegistry(env, snapshot_period) if metrics else NULL_METRICS
        )
        if self.metrics.enabled:
            # Engine event hook: count processed events and drive the
            # pull-based snapshot clock off the simulation's own steps.
            events = self.metrics.counter("sim.events_processed")
            registry = self.metrics

            def _on_step(now: float, event) -> None:
                events.incr()
                registry.maybe_snapshot()

            env.add_step_listener(_on_step)

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    def __repr__(self) -> str:
        return (
            f"<Observability trace={self.tracer.enabled} "
            f"metrics={self.metrics.enabled}>"
        )


#: Shared fully-disabled bundle (what uninstrumented components hold).
OBS_OFF = Observability()
