"""The unified metrics registry: counters, gauges, histograms, layers.

One :class:`MetricsRegistry` serves a simulated testbed.  Components
obtain named instruments (get-or-create) and record into them on the
hot path; everything is purely observational — no simulation events, no
randomness, no simulated time — so a metered run is bit-identical to an
unmetered one.

* :class:`CounterMetric` / :class:`Gauge` — monotonic counts and
  last-value signals.
* :class:`Histogram` — fixed log-spaced buckets with estimated
  p50/p90/p99/p999; O(1) per observation, O(buckets) per query, bounded
  memory regardless of run length (unlike :class:`repro.sim.Tally`,
  which keeps every observation).
* :class:`LayerTimes` — per-layer busy-time attribution for one
  execution lane (the paper's Fig 7 CPU analysis): stages sum to the
  lane's busy time, and the exporter adds the idle remainder so the
  breakdown table sums to total sim time.
* :class:`RecoveryStats` — failure-recovery accounting, now carried by
  registry counters so recovery appears in the unified metrics dump
  (``repro.sim.RecoveryStats`` remains as a re-export shim).

Snapshotting is *pull-based*: :meth:`MetricsRegistry.maybe_snapshot` is
called from instrumentation points (the sim-engine step hook) and
records a time-series point once per ``snapshot_period`` of simulated
time.  No timer process is ever scheduled, so enabling metrics cannot
extend a run's final sim time.
"""

from __future__ import annotations

import bisect
import math

__all__ = [
    "CounterMetric",
    "Gauge",
    "Histogram",
    "LayerTimes",
    "MetricsRegistry",
    "NullMetrics",
    "RecoveryStats",
    "NULL_METRICS",
    "DEFAULT_BOUNDS",
    "log_bounds",
]


def log_bounds(
    lo: float = 1e-7, hi: float = 1e3, per_decade: int = 8
) -> tuple[float, ...]:
    """Geometric bucket upper bounds covering [lo, hi]."""
    if not (0 < lo < hi) or per_decade < 1:
        raise ValueError("need 0 < lo < hi and per_decade >= 1")
    decades = math.log10(hi / lo)
    n = int(round(decades * per_decade))
    ratio = (hi / lo) ** (1.0 / n)
    return tuple(lo * ratio**i for i in range(n + 1))


#: Default latency bounds: 100 ns .. 1000 s, 8 buckets per decade.
DEFAULT_BOUNDS = log_bounds()


class CounterMetric:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name!r} {self.value}>"


class Gauge:
    """A named last-value signal."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"<Gauge {self.name!r} {self.value}>"


class Histogram:
    """Fixed-bucket histogram with estimated percentiles.

    Bucket ``i`` counts observations in ``(bounds[i-1], bounds[i]]``
    (bucket 0 is everything up to ``bounds[0]``; one overflow bucket
    catches the rest).  Quantiles interpolate linearly inside the
    landing bucket and are clamped to the exact observed min/max, so
    zero- and one-sample queries are exact and every estimate is within
    one bucket ratio (~33% for the default 8-per-decade bounds) of the
    true value.
    """

    __slots__ = ("name", "unit", "bounds", "counts", "count", "total",
                 "_min", "_max")

    def __init__(
        self,
        name: str,
        unit: str = "s",
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> None:
        self.name = name
        self.unit = unit
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, ``q`` in [0, 1]; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.bounds[i - 1] if 0 < i <= len(self.bounds) else self._min
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                frac = (target - cumulative) / n
                estimate = lo + (hi - lo) * frac
                return min(max(estimate, self._min), self._max)
            cumulative += n
        return self._max

    def percentile(self, p: float) -> float:
        """Estimated percentile, ``p`` in [0, 100]."""
        return self.quantile(p / 100.0)

    def percentiles(self) -> dict[str, float]:
        """The standard latency panel: p50/p90/p99/p999."""
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def as_dict(self) -> dict:
        out = {
            "count": self.count,
            "unit": self.unit,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "total": self.total,
        }
        out.update(self.percentiles())
        return out

    def __repr__(self) -> str:
        return f"<Histogram {self.name!r} n={self.count}>"


class LayerTimes:
    """Busy-time attribution for one execution lane, by named stage."""

    __slots__ = ("name", "stages")

    def __init__(self, name: str) -> None:
        self.name = name
        self.stages: dict[str, float] = {}

    def add(self, stage: str, seconds: float) -> None:
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    @property
    def busy(self) -> float:
        return sum(self.stages.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self.stages)

    def __repr__(self) -> str:
        return f"<LayerTimes {self.name!r} busy={self.busy:.3g}s>"


class MetricsRegistry:
    """Named instruments plus periodic sim-time snapshots.

    Instruments are get-or-create by name, so independently-constructed
    components share a series when they share a name.
    """

    enabled = True

    def __init__(self, env, snapshot_period: float = 0.0) -> None:
        if snapshot_period < 0:
            raise ValueError("snapshot_period must be >= 0")
        self.env = env
        self.snapshot_period = snapshot_period
        self.counters: dict[str, CounterMetric] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.layers_by_name: dict[str, LayerTimes] = {}
        self.recovery: list["RecoveryStats"] = []
        #: Time-series of :meth:`snapshot_now` dicts.
        self.snapshots: list[dict] = []
        #: Instrument names whose values are (partly) charged by the
        #: fluid analytic path rather than per-event observation
        #: (:mod:`repro.sim.fluid`).  Kept as an insertion-ordered list
        #: so exports stay deterministic.
        self._fluid: list[str] = []
        self._next_snapshot = snapshot_period if snapshot_period > 0 else math.inf

    # -- instruments ---------------------------------------------------------
    def counter(self, name: str) -> CounterMetric:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = CounterMetric(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(
        self,
        name: str,
        unit: str = "s",
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, unit, bounds)
        return metric

    def layers(self, name: str) -> LayerTimes:
        metric = self.layers_by_name.get(name)
        if metric is None:
            metric = self.layers_by_name[name] = LayerTimes(name)
        return metric

    def register_recovery(self, stats: "RecoveryStats") -> None:
        self.recovery.append(stats)

    def mark_fluid(self, name: str) -> None:
        """Flag ``name`` as fluid-charged (analytic, not per-event).

        Flagged names appear under ``"fluid"`` in snapshots and the
        dump, so dashboards can distinguish counters backed by real
        events from ones advanced in closed form by a hybrid run.
        """
        if name not in self._fluid:
            self._fluid.append(name)

    @property
    def fluid_names(self) -> tuple:
        """Sorted names flagged by :meth:`mark_fluid`."""
        return tuple(sorted(self._fluid))

    # -- snapshots -------------------------------------------------------------
    def snapshot_now(self) -> dict:
        """Record (and return) one time-series point at the current time."""
        point = {
            "t": self.env.now,
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
        }
        if self._fluid:
            point["fluid"] = list(self.fluid_names)
        self.snapshots.append(point)
        return point

    def maybe_snapshot(self) -> None:
        """Snapshot if a full period has elapsed since the last one.

        Pull-based: callers (the engine step hook, benchmark loops)
        invoke this opportunistically; nothing is ever scheduled.
        """
        now = self.env.now
        if now >= self._next_snapshot:
            self.snapshot_now()
            period = self.snapshot_period
            self._next_snapshot = now - (now % period) + period

    # -- export ---------------------------------------------------------------
    def dump(self) -> dict:
        """The full JSON-able metrics state (consumed by bench.report)."""
        out = {
            "now": self.env.now,
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self.histograms.items())
            },
            "layers": {
                n: lt.as_dict() for n, lt in sorted(self.layers_by_name.items())
            },
            "recovery": {s.name: s.as_dict() for s in self.recovery},
            "snapshots": list(self.snapshots),
        }
        if self._fluid:
            out["fluid"] = list(self.fluid_names)
        return out

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self.counters)} "
            f"histograms={len(self.histograms)}>"
        )


class _NullInstrument:
    """No-op counter/gauge/histogram/layers stand-in."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    minimum = 0.0
    maximum = 0.0
    busy = 0.0
    stages: dict = {}

    def incr(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, *args, **kwargs) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentile(self, p: float) -> float:
        return 0.0

    def percentiles(self) -> dict:
        return {}

    def as_dict(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False
    snapshots: tuple = ()
    fluid_names: tuple = ()

    def mark_fluid(self, name: str) -> None:
        pass

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, unit: str = "s", bounds=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def layers(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def register_recovery(self, stats) -> None:
        pass

    def snapshot_now(self) -> dict:
        return {}

    def maybe_snapshot(self) -> None:
        pass

    def dump(self) -> dict:
        return {}

    def __repr__(self) -> str:
        return "<NullMetrics>"


NULL_METRICS = NullMetrics()


class RecoveryStats:
    """Failure-recovery accounting for one datapath client.

    Named monotonic counters (retries, timeouts, resets, media errors,
    aborted requests, failed samples, ...) plus a *degraded-mode* clock:
    the total simulated time during which at least one of the client's
    qpairs was disconnected.  ``enter_degraded``/``exit_degraded`` nest —
    two concurrently-down qpairs count the overlapping window once.

    Counters are carried by a :class:`MetricsRegistry` (namespaced under
    this object's ``name``), so when the reactor hands in the shared
    registry, recovery appears in the unified metrics dump.  Standalone
    construction gets a private registry — the original attribute API
    (``incr`` / ``[]`` / ``as_dict`` / ``degraded_time``) is unchanged.
    """

    def __init__(self, env, name: str = "", registry=None) -> None:
        self.env = env
        self.name = name
        if registry is None or not registry.enabled:
            registry = MetricsRegistry(env)
        self.registry = registry
        registry.register_recovery(self)
        self._prefix = f"{name or 'recovery'}."
        self._keys: list[str] = []
        self._down = 0
        self._since = 0.0
        self._accum = 0.0
        self._depth_gauge = registry.gauge(f"{self._prefix}degraded_depth")

    def incr(self, key: str, amount: int = 1) -> None:
        if key not in self._keys:
            self._keys.append(key)
        self.registry.counter(self._prefix + key).incr(amount)

    def __getitem__(self, key: str) -> int:
        metric = self.registry.counters.get(self._prefix + key)
        return metric.value if metric is not None else 0

    @property
    def degraded_depth(self) -> int:
        """Number of currently-degraded components (0 = healthy)."""
        return self._down

    def enter_degraded(self) -> None:
        if self._down == 0:
            self._since = self.env.now
        self._down += 1
        self._depth_gauge.set(self._down)

    def exit_degraded(self) -> None:
        if self._down <= 0:
            raise ValueError(f"recovery stats {self.name!r}: not degraded")
        self._down -= 1
        self._depth_gauge.set(self._down)
        if self._down == 0:
            self._accum += self.env.now - self._since

    @property
    def degraded_time(self) -> float:
        """Seconds spent degraded, including any still-open window."""
        open_window = (self.env.now - self._since) if self._down > 0 else 0.0
        return self._accum + open_window

    def as_dict(self) -> dict:
        out: dict = {key: self[key] for key in self._keys}
        out["degraded_time"] = self.degraded_time
        return out

    def __repr__(self) -> str:
        counts = {key: self[key] for key in self._keys}
        return f"<RecoveryStats {self.name!r} {counts!r}>"
