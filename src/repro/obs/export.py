"""Exporters: Chrome trace-event JSON, latency breakdown, metrics dump.

* :func:`chrome_trace` — the Trace Event Format consumed by Perfetto /
  ``chrome://tracing``: one *process* per simulated node, one *thread*
  per execution lane (reactor, qpair, copy thread, NVMe device, fabric
  link).  Span timestamps are simulated microseconds; span events and
  tracer instants become thread-scoped instant events, so qpair resets
  and retries show up pinned to the request they hit.
* :func:`breakdown_rows` / :func:`render_breakdown` — the per-layer
  time-attribution table (the paper's Fig 7 CPU analysis): each
  instrumented stage's busy seconds plus the idle/wait remainder, so
  the rows sum to total simulated time exactly.
* :func:`percentile_rows` / :func:`render_percentiles` — the per-layer
  latency panel (p50/p90/p99/p999) from the registry's histograms.
* :func:`write_chrome_trace` / :func:`write_metrics` — file writers.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Optional, Union

from .metrics import Histogram, LayerTimes, MetricsRegistry
from .span import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    "breakdown_rows",
    "render_breakdown",
    "percentile_rows",
    "render_percentiles",
    "render_tenants",
    "render_cluster",
    "render_xform",
]

#: Seconds -> Chrome trace microseconds.
_US = 1e6


def chrome_trace(tracer: Tracer) -> dict:
    """Convert a tracer's spans/instants to a Chrome trace-event object.

    Events within each thread are sorted by timestamp (the format's
    expectation and what the viewers assume).  Spans still open at
    export time are clipped to the current sim time.
    """
    pids: dict[str, int] = {}
    tids: dict[str, int] = {}
    events: list[dict] = []
    meta: list[dict] = []

    def ids_for(track: str) -> tuple[int, int]:
        process = tracer.processes.get(track, "sim")
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            meta.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            meta.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return pid, tid

    now = tracer.now
    for span in tracer.spans:
        pid, tid = ids_for(span.track)
        end = span.end if span.end is not None else now
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.args:
            args.update(span.args)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.cat or "span",
            "pid": pid,
            "tid": tid,
            "ts": span.start * _US,
            "dur": (end - span.start) * _US,
            "args": args,
        })
        for t, name, ev_args in span.events:
            instant = {
                "ph": "i",
                "name": name,
                "cat": "event",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": t * _US,
                "args": {"span_id": span.span_id},
            }
            if ev_args:
                instant["args"].update(ev_args)
            events.append(instant)
    for t, name, track, args in tracer.instants:
        pid, tid = ids_for(track)
        events.append({
            "ph": "i",
            "name": name,
            "cat": "event",
            "s": "t",
            "pid": pid,
            "tid": tid,
            "ts": t * _US,
            "args": dict(args) if args else {},
        })

    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated", "spans": len(tracer.spans)},
    }


def write_chrome_trace(tracer: Tracer, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Serialize :func:`chrome_trace` to ``path`` (Perfetto-loadable)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer)) + "\n")
    return path


def write_metrics(
    registry: MetricsRegistry, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Serialize the registry dump as JSON."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(registry.dump(), indent=1, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# Latency attribution
# ---------------------------------------------------------------------------

def breakdown_rows(
    layers: LayerTimes,
    total: float,
    idle_label: str = "wait (device/fabric) + idle",
) -> list[tuple[str, float, float]]:
    """(stage, seconds, fraction) rows summing to ``total`` seconds.

    ``layers`` holds the lane's instrumented busy stages; the idle row
    is the remainder, so the column of seconds sums to ``total``
    exactly (the acceptance bar: within 1% of total sim time).
    """
    rows = [
        (stage, seconds, (seconds / total) if total > 0 else 0.0)
        for stage, seconds in layers.stages.items()
    ]
    idle = max(total - layers.busy, 0.0)
    rows.append((idle_label, idle, (idle / total) if total > 0 else 0.0))
    return rows


def render_breakdown(
    layers: LayerTimes, total: float, title: Optional[str] = None
) -> str:
    """The plaintext per-layer time-attribution table."""
    rows = breakdown_rows(layers, total)
    lines = [f"-- latency attribution: {title or layers.name} --"]
    width = max(len(stage) for stage, _, _ in rows)
    for stage, seconds, fraction in rows:
        lines.append(
            f"  {stage:<{width}}  {seconds * 1e3:>12.4f} ms  {fraction:>7.2%}"
        )
    lines.append(
        f"  {'total (sim time)':<{width}}  {total * 1e3:>12.4f} ms  {1:>7.2%}"
    )
    return "\n".join(lines)


def render_tenants(
    rows: Iterable[dict],
    title: str = "per-tenant serving report",
    service_shares: Optional[dict] = None,
) -> str:
    """Plaintext per-tenant SLO/fairness table.

    ``rows`` are the plain dicts from
    :meth:`repro.tenancy.TenantAccounting.rows` (kept as dicts so obs
    never imports tenancy).  ``service_shares`` optionally adds the
    device-service share column from the scheduler — the SFQ fairness
    metric, as opposed to the job-level byte share in ``rows``.
    """
    rows = list(rows)
    if not rows:
        return f"-- {title}: (no tenants) --"

    def ms(v: float) -> str:
        return f"{v * 1e3:.2f}ms"

    width = max(len("tenant"), max(len(r["tenant"]) for r in rows))
    header = (
        f"  {'tenant':<{width}}  {'wt':>5}  {'pri':>3}  {'jobs':>7}  "
        f"{'rej':>5}  {'samples':>8}  {'failed':>6}  {'MB':>9}  "
        f"{'share':>6}  {'p50':>9}  {'p99':>9}  {'xq p99':>9}  {'slo!':>5}"
    )
    if service_shares is not None:
        header += f"  {'svc%':>6}"
    lines = [f"-- {title} --", header]
    for r in rows:
        line = (
            f"  {r['tenant']:<{width}}  {r['weight']:>5.1f}  "
            f"{r['priority']:>3}  {r['jobs']:>7}  {r['rejected']:>5}  "
            f"{r['samples']:>8}  {r['failed']:>6}  "
            f"{r['bytes'] / 1e6:>9.2f}  {r['share']:>6.1%}  "
            f"{ms(r['p50']):>9}  {ms(r['p99']):>9}  "
            f"{ms(r.get('xform_wait_p99', 0.0)):>9}  "
            f"{r['slo_violations']:>5}"
        )
        if service_shares is not None:
            svc = service_shares.get(r["tenant"])
            line += f"  {svc:>6.1%}" if svc is not None else f"  {'-':>6}"
        lines.append(line)
    return "\n".join(lines)


def render_cluster(
    routed: dict,
    recovery: Optional[dict] = None,
    lifecycle: Optional[dict] = None,
    title: str = "cluster serving report",
) -> str:
    """Plaintext replicated-serving report: per-lane routing + lifecycle.

    ``routed`` maps lane -> fetches routed there (the balancer's view,
    merged over clients); ``recovery`` and ``lifecycle`` are the plain
    counter dicts from the reactor recovery stats and the cluster
    lifecycle (kept as dicts so obs never imports cluster).
    """
    lines = [f"-- {title} --"]
    total = sum(routed.values())
    if routed:
        lines.append(f"  {'lane':>6}  {'routed':>8}  {'share':>6}")
        for lane in sorted(routed):
            count = routed[lane]
            share = (count / total) if total else 0.0
            lines.append(f"  {lane:>6}  {count:>8}  {share:>6.1%}")
        lines.append(f"  {'total':>6}  {total:>8}")
    else:
        lines.append("  (no fetches routed)")
    for label, counters in (("recovery", recovery), ("lifecycle", lifecycle)):
        if not counters:
            continue
        lines.append(f"  {label}:")
        width = max(len(k) for k in counters)
        for key in sorted(counters):
            value = counters[key]
            shown = f"{value * 1e3:.3f} ms" if key == "degraded_time" else value
            lines.append(f"    {key:<{width}}  {shown}")
    return "\n".join(lines)


def render_xform(
    tier: dict,
    utilization: Iterable[dict] = (),
    links: Iterable[dict] = (),
    routed: Optional[dict] = None,
    title: str = "fetch/transform tier report",
) -> str:
    """Plaintext transform-tier report: per-tier utilization, transfer
    engine per-link byte/latency attribution, per-lane routing.

    All inputs are plain dicts/rows (``XformTier.counters()``,
    ``.utilization_rows()``, ``TransferEngine.link_rows()``,
    ``XformTier.routed()``) so obs never imports xform.
    """
    lines = [f"-- {title} --"]
    if not tier:
        lines.append("  (transform tier off: flat datapath)")
        return "\n".join(lines)
    lines.append(
        f"  boundary: {tier['boundary']}/{tier['stages']} stages on storage"
        f"  tasks={tier['tasks']}  direct_ships={tier['direct_ships']}"
        f"  redispatches={tier['redispatches']}"
        f"  crashes={tier['crashes']}  rejoins={tier['rejoins']}"
    )
    rows = list(utilization)
    if rows:
        lines.append(f"  {'tier':<8}  {'node':<8}  {'cores':>5}  {'cpu':>6}")
        for r in rows:
            lines.append(
                f"  {r['tier']:<8}  {r['node']:<8}  {r['cores']:>5}  "
                f"{r['cpu']:>6.1%}"
            )
    if routed:
        total = sum(routed.values())
        lines.append(f"  {'lane':>6}  {'routed':>8}  {'share':>6}")
        for lane in sorted(routed):
            count = routed[lane]
            share = (count / total) if total else 0.0
            lines.append(f"  {lane:>6}  {count:>8}  {share:>6.1%}")
    link_rows = list(links)
    if link_rows:
        lines.append(
            f"  {'link':<18}  {'MB':>9}  {'chunks':>7}  {'xfers':>6}  "
            f"{'credit wait':>11}  {'busy':>9}"
        )
        for r in link_rows:
            lines.append(
                f"  {r['src'] + '->' + r['dst']:<18}  "
                f"{r['bytes'] / 1e6:>9.2f}  {r['chunks']:>7}  "
                f"{r['transfers']:>6}  {r['credit_wait'] * 1e3:>9.3f}ms  "
                f"{r['busy'] * 1e3:>7.3f}ms"
            )
    return "\n".join(lines)


def percentile_rows(
    registry: MetricsRegistry, names: Optional[Iterable[str]] = None
) -> list[tuple[str, Histogram]]:
    """(name, histogram) rows for the latency panel, sorted by name."""
    hists = registry.histograms
    if names is None:
        names = sorted(hists)
    return [(n, hists[n]) for n in names if n in hists and hists[n].count > 0]


def render_percentiles(
    registry: MetricsRegistry, names: Optional[Iterable[str]] = None
) -> str:
    """Plaintext p50/p90/p99/p999 table over the registry's histograms."""
    rows = percentile_rows(registry, names)
    if not rows:
        return "-- latency percentiles: (no observations) --"
    width = max(len(n) for n, _ in rows)
    lines = [
        "-- latency percentiles (estimated from fixed log buckets) --",
        f"  {'layer':<{width}}  {'count':>8}  {'p50':>9}  {'p90':>9}  "
        f"{'p99':>9}  {'p999':>9}",
    ]

    def us(v: float) -> str:
        return f"{v * 1e6:.2f}us" if v < 1e-2 else f"{v * 1e3:.2f}ms"

    for name, h in rows:
        p = h.percentiles()
        lines.append(
            f"  {name:<{width}}  {h.count:>8}  {us(p['p50']):>9}  "
            f"{us(p['p90']):>9}  {us(p['p99']):>9}  {us(p['p999']):>9}"
        )
    return "\n".join(lines)
