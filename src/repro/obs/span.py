"""Sim-time spans and the tracer that records them.

A :class:`Span` is one timed operation on one *track* (a simulated
execution lane: a reactor, a qpair, an NVMe device, a copy thread).
Spans nest through parent/child causality, so one sample read yields a
causal chain ``bread -> fetch -> qpair post -> NVMe command -> fabric
transfer -> copy -> delivery``, and carry point-in-time *events*
(retries, qpair resets, deadline misses) pinned to the affected
operation.

Everything here is **purely observational**: recording a span never
schedules a simulation event, never consumes randomness, and never
charges simulated time, so a traced run is bit-identical to an untraced
one (same sample order, same final sim time).  With tracing disabled
the datapath holds a :data:`NULL_TRACER` whose methods are no-ops
returning the shared :data:`NULL_SPAN` — the null-object pay-for-use
pattern of :mod:`repro.faults`.

Timestamps are **simulated seconds** (``env.now``), never wall time;
the Chrome-trace exporter converts to microseconds.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Span", "Tracer", "NullSpan", "NullTracer", "NULL_SPAN", "NULL_TRACER"]


class Span:
    """One timed operation: [start, end] on a track, with point events."""

    __slots__ = (
        "tracer", "name", "cat", "track", "span_id", "parent_id",
        "start", "end", "args", "events",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        track: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        cat: str,
        args: Optional[dict],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        #: ``None`` while open; set once by :meth:`finish`.
        self.end: Optional[float] = None
        self.args = args
        #: Point events: (sim time, name, args) — retries, resets, ...
        self.events: list[tuple[float, str, Optional[dict]]] = []

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length; an open span extends to the tracer's current time."""
        end = self.end if self.end is not None else self.tracer.now
        return end - self.start

    def event(self, name: str, **args: Any) -> None:
        """Record a point event at the current sim time on this span."""
        self.events.append((self.tracer.now, name, args or None))

    def finish(self, **args: Any) -> None:
        """Close the span at the current sim time (idempotent)."""
        if self.end is not None:
            return
        self.end = self.tracer.now
        if args:
            if self.args is None:
                self.args = args
            else:
                self.args.update(args)

    def __repr__(self) -> str:
        state = f"end={self.end:.6g}" if self.end is not None else "open"
        return f"<Span #{self.span_id} {self.name!r} @{self.track} {state}>"


class Tracer:
    """Records spans and instant events against the simulated clock.

    One tracer serves a whole simulated testbed; components receive it
    via ``install_observability`` and call :meth:`start` at operation
    boundaries.  ``enabled`` is True so hot paths can guard span
    construction with one attribute check.
    """

    enabled = True

    def __init__(self, env) -> None:
        self.env = env
        self.spans: list[Span] = []
        #: Standalone instants: (time, name, track, args).
        self.instants: list[tuple[float, str, str, Optional[dict]]] = []
        #: track name -> process (node) name, for exporter grouping.
        self.processes: dict[str, str] = {}
        self._next_id = 0

    @property
    def now(self) -> float:
        return self.env.now

    def start(
        self,
        name: str,
        track: str,
        parent: Optional[Span] = None,
        cat: str = "",
        **args: Any,
    ) -> Span:
        """Open a span at the current sim time.  Close with ``finish()``."""
        self._next_id += 1
        parent_id = parent.span_id if isinstance(parent, Span) else None
        span = Span(
            self, name, track, self._next_id, parent_id,
            self.env.now, cat, args or None,
        )
        self.spans.append(span)
        return span

    def instant(self, name: str, track: str, **args: Any) -> None:
        """Record a standalone point event (not attached to a span)."""
        self.instants.append((self.env.now, name, track, args or None))

    def set_process(self, track: str, process: str) -> None:
        """Group ``track`` under ``process`` (one process per node)."""
        self.processes[track] = process

    def tracks(self) -> list[str]:
        """All track names seen, in first-use order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        for _, _, track, _ in self.instants:
            seen.setdefault(track)
        return list(seen)

    def __repr__(self) -> str:
        return f"<Tracer spans={len(self.spans)} instants={len(self.instants)}>"


class NullSpan:
    """No-op span handed out by the disabled tracer."""

    __slots__ = ()
    finished = True
    duration = 0.0
    events: tuple = ()

    def event(self, name: str, **args: Any) -> None:
        pass

    def finish(self, **args: Any) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullSpan>"


class NullTracer:
    """Disabled tracer: every operation is a no-op (pay-for-use)."""

    enabled = False

    def start(self, name, track, parent=None, cat="", **args) -> NullSpan:
        return NULL_SPAN

    def instant(self, name, track, **args) -> None:
        pass

    def set_process(self, track, process) -> None:
        pass

    def tracks(self) -> list:
        return []

    def __repr__(self) -> str:
        return "<NullTracer>"


#: Shared no-op singletons.
NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()
