"""SPDK I/O queue pairs.

A QPair couples a submission queue with a completion queue under a
fixed queue depth (§III-C2).  ``post`` is non-blocking and cheap (a
doorbell write); completions land in a *completion sink* — by default a
per-qpair queue, but DLFS points every qpair at one shared completion
queue (SCQ) so a single reactor can balance progress across all targets
with one poll loop.

The sink is a :class:`~repro.sim.Store`; a busy-polling reactor that
holds its core and blocks on ``sink.get()`` is observationally
equivalent to SPDK's poll loop (core pegged, completion seen
immediately) without simulating every empty poll iteration.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Generator, Optional, Union

from ..errors import ConfigError, QPairResetError, QueueFullError
from ..hw import NVMeDevice, STATUS_ABORTED_RESET, STATUS_MEDIA_ERROR, STATUS_OK
from ..obs import NULL_METRICS, NULL_TRACER
from ..sim import Environment, Event, Store, Tally
from ..sim.engine import audit_register, fastpath_enabled
from .request import SPDKRequest
from .target import NVMeoFTarget

__all__ = ["IOQPair", "DEFAULT_QUEUE_DEPTH"]

DEFAULT_QUEUE_DEPTH = 128


class IOQPair:
    """One I/O queue pair from a client host to a local or remote device."""

    def __init__(
        self,
        env: Environment,
        client_host: str,
        target: Union[NVMeDevice, NVMeoFTarget],
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        completion_sink: Optional[Store] = None,
    ) -> None:
        if queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        self.env = env
        self.client_host = client_host
        self.target = target
        self.queue_depth = queue_depth
        self.is_remote = isinstance(target, NVMeoFTarget)
        self.target_name = target.name
        # Each qpair opens one more submission queue at the device; extra
        # active queues cost controller arbitration (Fig 7a).
        device = target.device if self.is_remote else target
        device.register_queue()
        self.name = f"qp:{client_host}->{self.target_name}"
        # NB: an empty Store is falsy (len 0), so test against None.
        self.completion_sink = (
            completion_sink
            if completion_sink is not None
            else Store(env, name=f"{self.name}.cq")
        )
        self._inflight = 0
        self.posted = 0
        self.completed = 0
        self.resets = 0
        #: Multi-tenant serving: posts per tenant (untagged posts are
        #: not tracked) — rolled up by SPDKDriver.stats().
        self.posted_by_tenant: dict[str, int] = {}
        #: Tenant-keyed fault injection (:attr:`FaultPlan.tenant_faults`):
        #: installed by DLFSClient when the plan targets tenants; draws
        #: one extra media-error roll per delivered completion.
        self.injector = None
        #: Device completions dropped because a reset made them stale
        #: (generation mismatch) — audited by the SimSanitizer.
        self.stale_drops = 0
        self.latency = Tally(f"{self.name}.latency")
        #: Disconnect/reset lifecycle: a reset disconnects the qpair,
        #: aborts everything in flight back to the sink, and bumps the
        #: generation so stale device completions are dropped.
        self.connected = True
        #: Node-death lifecycle (cluster serving tier): while torn down
        #: the qpair stays disconnected across reconnect attempts — only
        #: :meth:`rejoin` (node back in the fleet) revives it.
        self.torn_down = False
        self._generation = 0
        #: request -> generation for every live in-flight request.
        self._live: dict[SPDKRequest, int] = {}
        #: Observability (null objects until install_observability).
        self.tracer = NULL_TRACER
        self._h_latency = NULL_METRICS.histogram("")
        #: SimSanitizer hook: checks every delivery against the current
        #: generation (None outside sanitized runs — zero cost).
        self.audit = None
        #: Local flights ride the device completion callback instead of a
        #: per-request process (same sim times — the callback fires inside
        #: the same completion event the process path would resume on).
        self._fastpath = fastpath_enabled()
        audit_register(self)

    def install_observability(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle."""
        self.tracer = obs.tracer
        self._h_latency = obs.metrics.histogram("qpair.latency")

    # -- introspection --------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def free_slots(self) -> int:
        if not self.connected:
            return 0
        return self.queue_depth - self._inflight

    @property
    def generation(self) -> int:
        return self._generation

    # -- submission -------------------------------------------------------------
    def post(self, request: SPDKRequest) -> None:
        """Submit one request; completions appear in ``completion_sink``.

        Raises :class:`QueueFullError` at the queue-depth limit — SPDK
        returns ``-ENOMEM`` and the caller must pace itself, which the
        DLFS backend does via ``free_slots``.  Raises
        :class:`QPairResetError` while disconnected.
        """
        if not self.connected:
            raise QPairResetError(f"{self.name}: qpair is disconnected")
        if self._inflight >= self.queue_depth:
            raise QueueFullError(
                f"{self.name}: queue depth {self.queue_depth} reached"
            )
        self._inflight += 1
        self.posted += 1
        request.submit_time = self.env.now
        request.status = None
        request.attempts += 1
        if self.tracer.enabled:
            request.span = self.tracer.start(
                "qpair.io", track=self.name, parent=request.parent_span,
                cat="spdk", offset=request.offset, nbytes=request.nbytes,
                attempt=request.attempts,
            )
        self._live[request] = self._generation
        tenant = getattr(request.tag, "tenant", None)
        if tenant is not None:
            self.posted_by_tenant[tenant] = self.posted_by_tenant.get(tenant, 0) + 1
        if (
            self._fastpath
            and not self.is_remote
            and self.target.injector is None
            and self.injector is None
        ):
            # Local healthy flight: submit now and deliver from the
            # device's completion callback.  The process path submits at
            # the same sim instant (its Initialize event fires before any
            # later-time event) and resumes inside the same completion
            # event this callback rides, so timings are identical — the
            # per-request Initialize/process-end events simply never
            # exist.  With an injector installed, the process path keeps
            # the fault-draw call order bit-identical to the seed.
            cmd = self.target.read(
                request.offset, request.nbytes, parent=request.span
            )
            cmd.completion.callbacks.append(
                partial(self._on_device_complete, request, self._generation)
            )
        else:
            self.env.process(
                self._fly(request, self._generation), name=f"{self.name}.io"
            )

    def _on_device_complete(
        self, request: SPDKRequest, generation: int, completion: Event
    ) -> None:
        """Completion callback for fast-path local flights."""
        cmd = completion._value
        # Same slot-reclaim contract as _fly's finally block.
        if self._live.get(request) != generation:
            self.stale_drops += 1
            return  # reset already delivered ABORTED_RESET for it
        del self._live[request]
        self._inflight -= 1
        self._deliver(request, generation, cmd.status)

    def _fly(
        self, request: SPDKRequest, generation: int
    ) -> Generator[Event, Any, None]:
        status = STATUS_OK
        stale = False
        try:
            if self.is_remote:
                status = yield from self.target.serve_read(
                    self.client_host, request.offset, request.nbytes,
                    parent=request.span,
                )
                status = status or STATUS_OK
            else:
                cmd = self.target.read(
                    request.offset, request.nbytes, parent=request.span
                )
                yield cmd.completion
                status = cmd.status
        finally:
            # Depth accounting must survive faults: whether the service
            # path returned, raised, or was aborted by a reset, this
            # request's queue slot is reclaimed exactly once.  A reset
            # reclaims it eagerly (generation mismatch marks this
            # completion stale) — and if the request was *re-posted* by
            # then, the live entry belongs to the new attempt, so only a
            # generation match may remove it.
            stale = self._live.get(request) != generation
            if not stale:
                del self._live[request]
                self._inflight -= 1
        if stale:
            self.stale_drops += 1
            return  # reset already delivered ABORTED_RESET for it
        self._deliver(request, generation, status)

    def _deliver(
        self, request: SPDKRequest, generation: int, status: str
    ) -> None:
        """Record a non-stale completion and hand it to the sink."""
        if status == STATUS_OK and self.injector is not None:
            # Tenant-keyed chaos: a targeted tenant's span may fail at
            # delivery even though the device read was healthy.
            if self.injector.tenant_fault(
                getattr(request.tag, "tenant", None), self.env.now
            ):
                status = STATUS_MEDIA_ERROR
        request.status = status
        request.complete_time = self.env.now
        if status == STATUS_OK:
            # Data valid in the request's hugepage chunks.
            remaining = request.nbytes
            for chunk in request.chunks:
                filled = min(chunk.size, remaining)
                chunk.valid_bytes = filled
                remaining -= filled
        self.completed += 1
        self.latency.observe(request.latency)
        self._h_latency.observe(request.latency)
        if request.span is not None:
            request.span.finish(status=status)
        if self.audit is not None:
            self.audit.check_delivery(self, generation)
        self.completion_sink.put_nowait(request)

    # -- reset / reconnect lifecycle ---------------------------------------------
    def reset(self) -> list[SPDKRequest]:
        """Disconnect and abort all in-flight requests.

        Every aborted request is delivered to the completion sink with
        ``STATUS_ABORTED_RESET`` so the reactor can requeue it; the
        underlying device/fabric activity keeps running but its eventual
        completion is dropped as stale (generation mismatch).  The qpair
        accepts no new posts until :meth:`reconnect`.
        """
        aborted = list(self._live)
        self._live.clear()
        self._generation += 1
        self.connected = False
        self.resets += 1
        now = self.env.now
        if self.tracer.enabled:
            self.tracer.instant(
                "qpair_reset", track=self.name, aborted=len(aborted)
            )
        for request in aborted:
            self._inflight -= 1
            request.status = STATUS_ABORTED_RESET
            request.complete_time = now
            if request.span is not None:
                request.span.event("aborted_by_reset")
                request.span.finish(status=STATUS_ABORTED_RESET)
            self.completion_sink.put_nowait(request)
        return aborted

    def reconnect(self) -> None:
        """Bring a disconnected qpair back into service."""
        if self.connected:
            raise ConfigError(f"{self.name}: qpair is already connected")
        if self.torn_down:
            raise QPairResetError(f"{self.name}: target node is down")
        self.connected = True

    def teardown(self) -> list[SPDKRequest]:
        """Target node died: abort in-flight I/O, refuse reconnects.

        Unlike a plain :meth:`reset` (which the recovery driver undoes
        after ``reconnect_delay``), a torn-down qpair stays disconnected
        until :meth:`rejoin` — the balancer must route around it.
        Idempotent; returns the requests aborted by this call.
        """
        aborted = self.reset() if self.connected else []
        self.torn_down = True
        return aborted

    def rejoin(self) -> None:
        """Node back in the fleet: allow service again."""
        self.torn_down = False
        if not self.connected:
            self.reconnect()

    def __repr__(self) -> str:
        state = "" if self.connected else " DISCONNECTED"
        return f"<IOQPair {self.name!r} {self._inflight}/{self.queue_depth}{state}>"
