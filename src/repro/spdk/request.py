"""SPDK block-I/O request objects.

An :class:`SPDKRequest` is one block read posted to an I/O queue pair.
DLFS converts each sample (or data chunk) into one or more of these
(§III-C1: a request larger than a cache chunk is disassembled).  The
request carries the hugepage chunks receiving the data; SPDK mandates
hugepage-resident buffers, which the qpair enforces.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..errors import ConfigError
from ..hw.memory import HugePageChunk

__all__ = ["SPDKRequest", "align_down", "align_up", "aligned_span"]

#: NVMe logical block size; SPDK I/O must be block aligned.
BLOCK = 512


def align_down(value: int, block: int = BLOCK) -> int:
    return value - (value % block)


def align_up(value: int, block: int = BLOCK) -> int:
    return value + (-value % block)


def aligned_span(offset: int, nbytes: int, block: int = BLOCK) -> tuple[int, int]:
    """Smallest block-aligned (offset, nbytes) covering the byte range."""
    start = align_down(offset, block)
    end = align_up(offset + nbytes, block)
    return start, end - start


class SPDKRequest:
    """One block read in flight through a QPair.

    A ``__slots__`` class rather than a dataclass: the datapath builds
    one per posted block read, where dataclass ``__init__`` plus
    ``default_factory`` overhead is measurable.
    """

    _ids = itertools.count()

    __slots__ = (
        "offset", "nbytes", "chunks", "tag", "request_id", "submit_time",
        "complete_time", "status", "attempts", "retries", "parent_span",
        "span", "rel",
    )

    def __init__(
        self,
        offset: int,
        nbytes: int,
        chunks: Sequence[HugePageChunk],
        tag: Optional[object] = None,
        parent_span: Optional[object] = None,
        rel: Optional[int] = None,
    ) -> None:
        #: Device byte offset (block aligned).
        self.offset = offset
        #: Replica-independent part identity: the *layout* offset of
        #: this part.  The cluster balancer re-derives ``offset`` from
        #: it when a failover or hedge moves the part to another
        #: replica's device (each lane maps the shard at its own base),
        #: and uses it to dedup a hedge twin's completion.  Equal to
        #: ``offset`` outside cluster mode.
        self.rel = offset if rel is None else rel
        #: Transfer size (block aligned).
        self.nbytes = nbytes
        #: Hugepage chunks that receive the data.
        self.chunks = chunks
        #: Opaque routing tag (DLFS points this at the pending sample read).
        self.tag = tag
        self.request_id = next(SPDKRequest._ids)
        self.submit_time = 0.0
        self.complete_time = 0.0
        #: Completion status (``None`` while in flight; ``"ok"`` or a fault
        #: status from :mod:`repro.hw.nvme` once completed).
        self.status: Optional[str] = None
        #: Times this request has been posted to a qpair (resets + retries).
        self.attempts = 0
        #: Fault retries consumed against the recovery policy's budget.
        self.retries = 0
        #: Observability context: the span this request descends from (set
        #: by the submitter) and the per-flight span the qpair opens at each
        #: post.  ``None`` when tracing is off — zero-cost pay-for-use.
        self.parent_span = parent_span
        self.span: Optional[object] = None
        if nbytes <= 0:
            raise ConfigError("SPDK request size must be positive")
        if offset % BLOCK or nbytes % BLOCK:
            raise ConfigError(
                f"SPDK I/O must be {BLOCK}-byte aligned "
                f"(offset={offset}, nbytes={nbytes})"
            )
        if not chunks:
            raise ConfigError("SPDK request needs at least one hugepage chunk")
        capacity = sum(c.size for c in chunks)
        if capacity < self.nbytes:
            raise ConfigError(
                f"buffer capacity {capacity} < request size {self.nbytes}"
            )

    @property
    def latency(self) -> float:
        return self.complete_time - self.submit_time

    def __repr__(self) -> str:
        return (
            f"<SPDKRequest #{self.request_id} [{self.offset}, "
            f"{self.offset + self.nbytes}) x{len(self.chunks)} chunks>"
        )
