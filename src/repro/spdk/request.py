"""SPDK block-I/O request objects.

An :class:`SPDKRequest` is one block read posted to an I/O queue pair.
DLFS converts each sample (or data chunk) into one or more of these
(§III-C1: a request larger than a cache chunk is disassembled).  The
request carries the hugepage chunks receiving the data; SPDK mandates
hugepage-resident buffers, which the qpair enforces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ConfigError
from ..hw.memory import HugePageChunk

__all__ = ["SPDKRequest", "align_down", "align_up", "aligned_span"]

#: NVMe logical block size; SPDK I/O must be block aligned.
BLOCK = 512


def align_down(value: int, block: int = BLOCK) -> int:
    return value - (value % block)


def align_up(value: int, block: int = BLOCK) -> int:
    return value + (-value % block)


def aligned_span(offset: int, nbytes: int, block: int = BLOCK) -> tuple[int, int]:
    """Smallest block-aligned (offset, nbytes) covering the byte range."""
    start = align_down(offset, block)
    end = align_up(offset + nbytes, block)
    return start, end - start


@dataclass(eq=False)
class SPDKRequest:
    """One block read in flight through a QPair."""

    _ids = itertools.count()

    #: Device byte offset (block aligned).
    offset: int
    #: Transfer size (block aligned).
    nbytes: int
    #: Hugepage chunks that receive the data.
    chunks: Sequence[HugePageChunk]
    #: Opaque routing tag (DLFS points this at the pending sample read).
    tag: Optional[object] = None
    request_id: int = field(default_factory=lambda: next(SPDKRequest._ids))
    submit_time: float = 0.0
    complete_time: float = 0.0
    #: Completion status (``None`` while in flight; ``"ok"`` or a fault
    #: status from :mod:`repro.hw.nvme` once completed).
    status: Optional[str] = None
    #: Times this request has been posted to a qpair (resets + retries).
    attempts: int = 0
    #: Fault retries consumed against the recovery policy's budget.
    retries: int = 0
    #: Observability context: the span this request descends from (set
    #: by the submitter) and the per-flight span the qpair opens at each
    #: post.  ``None`` when tracing is off — zero-cost pay-for-use.
    parent_span: Optional[object] = None
    span: Optional[object] = None

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ConfigError("SPDK request size must be positive")
        if self.offset % BLOCK or self.nbytes % BLOCK:
            raise ConfigError(
                f"SPDK I/O must be {BLOCK}-byte aligned "
                f"(offset={self.offset}, nbytes={self.nbytes})"
            )
        if not self.chunks:
            raise ConfigError("SPDK request needs at least one hugepage chunk")
        capacity = sum(c.size for c in self.chunks)
        if capacity < self.nbytes:
            raise ConfigError(
                f"buffer capacity {capacity} < request size {self.nbytes}"
            )

    @property
    def latency(self) -> float:
        return self.complete_time - self.submit_time

    def __repr__(self) -> str:
        return (
            f"<SPDKRequest #{self.request_id} [{self.offset}, "
            f"{self.offset + self.nbytes}) x{len(self.chunks)} chunks>"
        )
