"""User-level SPDK driver instance per client node.

The driver owns a node's qpair connections and its hugepage pool, and
enforces SPDK's two restrictions (§III-C): devices must be *unbound from
the kernel* before user-level access, and every I/O buffer must live on
hugepages.  ``connect`` builds a qpair to a local (same-node) device or
a remote NVMe-oF target.
"""

from __future__ import annotations

from typing import Optional, Union

from ..cluster import Node
from ..errors import ConfigError
from ..hw import NVMeDevice
from ..sim import Store
from .qpair import DEFAULT_QUEUE_DEPTH, IOQPair
from .target import NVMeoFTarget

__all__ = ["SPDKDriver"]


class SPDKDriver:
    """SPDK runtime on one client node."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.env = node.env
        self.hugepages = node.hugepages
        self._unbound: set[str] = set()
        self.qpairs: list[IOQPair] = []

    def unbind_from_kernel(self, device: NVMeDevice) -> None:
        """Claim a local device for user-level access.

        A device can serve SPDK I/O only after this (the kernel driver
        releases it); a kernel file system must not be using it.
        """
        if device not in self.node.devices:
            raise ConfigError(
                f"{device.name} is not local to {self.node.name}; "
                "remote devices are reached via NVMe-oF targets"
            )
        self._unbound.add(device.name)

    def is_unbound(self, device: NVMeDevice) -> bool:
        return device.name in self._unbound

    def connect(
        self,
        target: Union[NVMeDevice, NVMeoFTarget],
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        completion_sink: Optional[Store] = None,
    ) -> IOQPair:
        """Create an I/O qpair to a local device or remote target."""
        if isinstance(target, NVMeDevice):
            if target.name not in self._unbound:
                raise ConfigError(
                    f"local device {target.name} must be unbound from the "
                    "kernel before SPDK access"
                )
        qpair = IOQPair(
            self.env,
            client_host=self.node.name,
            target=target,
            queue_depth=queue_depth,
            completion_sink=completion_sink,
        )
        self.qpairs.append(qpair)
        return qpair

    def stats(self) -> dict[str, Union[int, float]]:
        """Aggregate I/O counters across this driver's qpairs.

        Used by the perf harness (``benchmarks/bench_engine.py``) and by
        anything that wants one roll-up instead of per-qpair counters.
        Latency mean is completion-weighted across qpairs.
        """
        posted = completed = resets = stale = inflight = 0
        latency_sum = 0.0
        for qp in self.qpairs:
            posted += qp.posted
            completed += qp.completed
            resets += qp.resets
            stale += qp.stale_drops
            inflight += qp.inflight
            if qp.latency.count:
                latency_sum += qp.latency.mean * qp.latency.count
        by_tenant: dict[str, int] = {}
        for qp in self.qpairs:
            for tenant, n in qp.posted_by_tenant.items():
                by_tenant[tenant] = by_tenant.get(tenant, 0) + n
        out: dict[str, Union[int, float, dict]] = {
            "qpairs": len(self.qpairs),
            "posted": posted,
            "completed": completed,
            "inflight": inflight,
            "resets": resets,
            "stale_drops": stale,
            "mean_latency": latency_sum / completed if completed else 0.0,
        }
        if by_tenant:
            out["posted_by_tenant"] = {t: by_tenant[t] for t in sorted(by_tenant)}
        return out

    def __repr__(self) -> str:
        return f"<SPDKDriver on {self.node.name!r} qpairs={len(self.qpairs)}>"
