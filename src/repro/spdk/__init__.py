"""SPDK substrate: user-level NVMe driver, I/O queue pairs, NVMe-oF targets."""

from .driver import SPDKDriver
from .qpair import DEFAULT_QUEUE_DEPTH, IOQPair
from .request import SPDKRequest, align_down, align_up, aligned_span
from .target import NVMeoFTarget

__all__ = [
    "SPDKDriver",
    "IOQPair",
    "DEFAULT_QUEUE_DEPTH",
    "SPDKRequest",
    "NVMeoFTarget",
    "align_down",
    "align_up",
    "aligned_span",
]
