"""SPDK NVMe-over-Fabrics target.

One target exports one NVMe device to remote clients over RDMA
(§II-A: an NVMe-oF Target makes the device "directly accessible to all
connected remote clients through RDMA" with zero-copy, OS-bypass
transfers).  The target's reactor is a busy-polling SPDK thread; its
per-command handling is cheap and far above the device's IOPS ceiling,
so the device — not the target CPU — is the bottleneck, as in the paper.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import ConfigError
from ..hw import Fabric, NVMeDevice, STATUS_OK
from ..hw.platform import USEC
from ..obs import NULL_TRACER
from ..sim import Environment, Event, Resource, ThroughputMeter

__all__ = ["NVMeoFTarget"]

#: On-wire size of an NVMe-oF command capsule.
CAPSULE_BYTES = 64
#: Target-side per-command handling (SPDK reactor dequeue + NVMe submit).
TARGET_CMD_OVERHEAD = 0.5 * USEC


class NVMeoFTarget:
    """Exports ``device`` on ``host`` to fabric clients."""

    def __init__(
        self,
        env: Environment,
        host: str,
        device: NVMeDevice,
        fabric: Fabric,
        cmd_overhead: float = TARGET_CMD_OVERHEAD,
    ) -> None:
        if cmd_overhead < 0:
            raise ConfigError("cmd_overhead must be >= 0")
        self.env = env
        self.host = host
        self.device = device
        self.fabric = fabric
        self.cmd_overhead = cmd_overhead
        self.name = f"{device.name}.nvmf"
        #: The target reactor handles one command capsule at a time.
        self._reactor = Resource(env, capacity=1, name=f"{self.name}.reactor")
        self.meter = ThroughputMeter(env, name=f"{self.name}.served")
        #: Optional fault injector (see :mod:`repro.faults`).
        self.injector = None
        #: Observability (null object until install_observability).
        self.tracer = NULL_TRACER

    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`repro.faults.FaultInjector` to this target."""
        self.injector = injector

    def install_observability(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle."""
        self.tracer = obs.tracer

    def serve_read(
        self,
        client_host: str,
        offset: int,
        nbytes: int,
        parent: Optional[object] = None,
    ) -> Generator[Event, Any, str]:
        """Full remote-read service: capsule in, device read, RDMA data out.

        Process helper run from the client qpair's in-flight command.
        Completes when the data has landed in the client's buffer (or
        the device reported a failure); returns the completion status.
        """
        spec = self.fabric.spec
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "nvmf.serve", track=self.name, parent=parent, cat="nvmf",
                client=client_host, nbytes=nbytes,
            )
        if self.injector is not None:
            # A lost command capsule is retransmitted after a stall.
            stall = self.injector.nvmf_fault(self.name, self.env.now)
            if stall is not None:
                if span is not None:
                    span.event("capsule_retransmit", stall=stall)
                yield self.env.timeout(stall)
        # Command capsule travels client -> target.
        yield from self.fabric.transfer(
            client_host, self.host, CAPSULE_BYTES, parent=span
        )
        # NVMe-oF protocol adds a few microseconds over raw RDMA.
        yield self.env.timeout(spec.nvmf_added_latency)
        # Target reactor picks the capsule up and submits to the device.
        if self.cmd_overhead > 0:
            yield from self._reactor.hold(self.cmd_overhead)
        cmd = self.device.read(offset, nbytes, parent=span)
        yield cmd.completion
        if cmd.status != STATUS_OK:
            # No data to return; the error status rides the response
            # capsule back to the client qpair.
            if span is not None:
                span.finish(status=cmd.status)
            return cmd.status
        # Data is RDMA-written straight into the client's hugepages.
        yield from self.fabric.rdma_write(
            self.host, client_host, nbytes, parent=span
        )
        self.meter.record(nbytes=nbytes)
        if span is not None:
            span.finish(status=STATUS_OK)
        return STATUS_OK

    def reactor_utilization(self) -> float:
        return self._reactor.utilization()

    def __repr__(self) -> str:
        return f"<NVMeoFTarget {self.name!r} on {self.host!r}>"
