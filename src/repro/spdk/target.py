"""SPDK NVMe-over-Fabrics target.

One target exports one NVMe device to remote clients over RDMA
(§II-A: an NVMe-oF Target makes the device "directly accessible to all
connected remote clients through RDMA" with zero-copy, OS-bypass
transfers).  The target's reactor is a busy-polling SPDK thread; its
per-command handling is cheap and far above the device's IOPS ceiling,
so the device — not the target CPU — is the bottleneck, as in the paper.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import ConfigError
from ..hw import Fabric, NVMeDevice, STATUS_OK
from ..hw.platform import USEC
from ..obs import NULL_TRACER
from ..sim import Environment, Event, Resource, ThroughputMeter

__all__ = ["NVMeoFTarget"]

#: On-wire size of an NVMe-oF command capsule.
CAPSULE_BYTES = 64
#: Target-side per-command handling (SPDK reactor dequeue + NVMe submit).
TARGET_CMD_OVERHEAD = 0.5 * USEC


class NVMeoFTarget:
    """Exports ``device`` on ``host`` to fabric clients."""

    def __init__(
        self,
        env: Environment,
        host: str,
        device: NVMeDevice,
        fabric: Fabric,
        cmd_overhead: float = TARGET_CMD_OVERHEAD,
    ) -> None:
        if cmd_overhead < 0:
            raise ConfigError("cmd_overhead must be >= 0")
        self.env = env
        self.host = host
        self.device = device
        self.fabric = fabric
        self.cmd_overhead = cmd_overhead
        self.name = f"{device.name}.nvmf"
        #: The target reactor handles one command capsule at a time.
        self._reactor = Resource(env, capacity=1, name=f"{self.name}.reactor")
        self.meter = ThroughputMeter(env, name=f"{self.name}.served")
        #: Optional fault injector (see :mod:`repro.faults`).
        self.injector = None
        #: Observability (null object until install_observability).
        self.tracer = NULL_TRACER
        #: Node-crash state (cluster serving tier): while failed, new
        #: capsules and every in-flight service wedge at the next stage
        #: boundary — the client's qpair teardown (generation bump) is
        #: what resolves them, exactly like a real dead host.
        self.failed = False
        #: Events black-holed service processes are suspended on.  The
        #: target pins them so the suspended generators stay reachable:
        #: an *unreachable* process<->event cycle would be closed by the
        #: garbage collector, and generator close runs the client
        #: qpair's ``finally`` slot-reclaim — silently dropping the
        #: request with no completion, at GC-dependent (nondeterministic)
        #: times.  Kept for the target's lifetime; bounded by the total
        #: in-flight commands across crash windows.
        self._wedged: list = []
        #: Optional :class:`repro.cluster.NodeReadCache`; a hit skips
        #: the device read (None = pay-for-use off).
        self.read_cache = None

    def fail(self) -> None:
        """Node crash: stop serving (in-flight work wedges)."""
        self.failed = True

    def restore(self) -> None:
        """Node rejoin: serve again."""
        self.failed = False

    def _black_hole(self, span: Optional[object]):
        """Suspend forever — the node is gone, nothing completes.

        Holds no resources, and the pending event never enters the
        event queue, so ``env.run()`` still terminates when the queue
        drains.  The event is pinned on the target (see ``_wedged``):
        the client's qpair teardown — not garbage collection — is what
        resolves the abandoned command, exactly like a real dead host.
        """
        if span is not None:
            span.event("node_dead")
        wedge = self.env.event()
        self._wedged.append(wedge)
        yield wedge

    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`repro.faults.FaultInjector` to this target."""
        self.injector = injector

    def install_observability(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle."""
        self.tracer = obs.tracer

    def serve_read(
        self,
        client_host: str,
        offset: int,
        nbytes: int,
        parent: Optional[object] = None,
    ) -> Generator[Event, Any, str]:
        """Full remote-read service: capsule in, device read, RDMA data out.

        Process helper run from the client qpair's in-flight command.
        Completes when the data has landed in the client's buffer (or
        the device reported a failure); returns the completion status.
        """
        spec = self.fabric.spec
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "nvmf.serve", track=self.name, parent=parent, cat="nvmf",
                client=client_host, nbytes=nbytes,
            )
        if self.failed:
            yield from self._black_hole(span)
        if self.injector is not None:
            # A lost command capsule is retransmitted after a stall.
            stall = self.injector.nvmf_fault(self.name, self.env.now)
            if stall is not None:
                if span is not None:
                    span.event("capsule_retransmit", stall=stall)
                yield self.env.timeout(stall)
        # Command capsule travels client -> target.
        yield from self.fabric.transfer(
            client_host, self.host, CAPSULE_BYTES, parent=span
        )
        # NVMe-oF protocol adds a few microseconds over raw RDMA.
        yield self.env.timeout(spec.nvmf_added_latency)
        if self.failed:
            yield from self._black_hole(span)
        # Target reactor picks the capsule up and submits to the device.
        if self.cmd_overhead > 0:
            yield from self._reactor.hold(self.cmd_overhead)
        if self.read_cache is not None and self.read_cache.lookup(offset, nbytes):
            # Serving-cache hit: data already in target hugepages.
            if span is not None:
                span.event("node_cache_hit")
        else:
            cmd = self.device.read(offset, nbytes, parent=span)
            yield cmd.completion
            if cmd.status != STATUS_OK:
                # No data to return; the error status rides the response
                # capsule back to the client qpair.
                if span is not None:
                    span.finish(status=cmd.status)
                return cmd.status
            if self.read_cache is not None:
                self.read_cache.insert(offset, nbytes)
        if self.failed:
            yield from self._black_hole(span)
        # Data is RDMA-written straight into the client's hugepages.
        yield from self.fabric.rdma_write(
            self.host, client_host, nbytes, parent=span
        )
        self.meter.record(nbytes=nbytes)
        if span is not None:
            span.finish(status=STATUS_OK)
        return STATUS_OK

    def reactor_utilization(self) -> float:
        return self._reactor.utilization()

    def __repr__(self) -> str:
        return f"<NVMeoFTarget {self.name!r} on {self.host!r}>"
