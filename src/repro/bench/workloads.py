"""Reusable experiment drivers for the figure benchmarks.

Every driver builds a fresh deterministic simulation, runs a measured
steady-state window (after warm-up), and returns plain numbers.  The
figure modules (:mod:`repro.bench.figures`) compose these into the
paper's tables and series.

Scale note: the paper's runs push millions of samples; the drivers
default to a few thousand per node, which is past the point where the
simulated steady-state throughput stops changing (the simulator has no
long-horizon drift), and keep wall-clock time per figure in seconds.
Every driver takes explicit counts so a user can crank them up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster import Cluster, ClusterRuntime, ClusterSpec
from ..core import DLFS, DLFSConfig
from ..data import Dataset
from ..errors import ConfigError
from ..faults import FaultPlan, RecoveryPolicy
from ..hw import BoundThread, Testbed
from ..kernelfs import Ext4FileSystem
from ..octopus import OctopusFS
from ..sim import Environment
from ..sim import rng as sim_rng
from ..train import (
    DLFSTFAdapter,
    Ext4TFAdapter,
    OctopusTFAdapter,
    TFIngestSpec,
)

__all__ = [
    "dlfs_single_node",
    "ext4_single_node",
    "dlfs_multi_node",
    "ext4_multi_node",
    "octopus_multi_node",
    "dlfs_lookup_time",
    "ext4_open_time",
    "octopus_lookup_time",
    "dlfs_disaggregated",
    "tf_ingest_throughput",
    "dlfs_chaos",
    "dlfs_observed",
    "dlfs_tenancy",
    "dlfs_cluster",
    "dlfs_xform",
    "demo_tenants",
    "fair_tenants",
    "cluster_tenants",
    "Result",
    "ChaosResult",
    "TraceReport",
    "TenancyReport",
    "ClusterReport",
    "XformReport",
]

DEFAULT_SEED = 42


@dataclass(frozen=True)
class Result:
    """One measured run."""

    #: Samples per second (aggregate over all clients).
    sample_throughput: float
    #: Payload bytes per second (aggregate).
    bandwidth: float
    #: Mean utilization of the busiest client core (1.0 = pegged).
    cpu_utilization: float = 0.0
    #: Simulated seconds of the measured window.
    sim_time: float = 0.0



@dataclass(frozen=True)
class ChaosResult:
    """One fault-injected run (:func:`dlfs_chaos`)."""

    #: Delivered samples per simulated second (aggregate).
    sample_throughput: float
    #: Samples delivered across all clients.
    delivered: int
    #: Samples lost to unrecoverable faults (graceful degradation).
    failed: int
    #: Samples the epochs asked for: must equal delivered + failed.
    expected: int
    #: Simulated seconds for the full run.
    sim_time: float
    #: Merged recovery accounting over all clients
    #: (:meth:`repro.sim.RecoveryStats.as_dict`).
    recovery: dict
    #: Injected fault counts per (site, kind) from the shared injector.
    fault_counts: dict

    @property
    def accounted(self) -> bool:
        """Does the error accounting sum up exactly?"""
        return self.delivered + self.failed == self.expected


@dataclass(frozen=True)
class TraceReport:
    """One observed run (:func:`dlfs_observed`)."""

    #: Delivered samples per simulated second (aggregate).
    sample_throughput: float
    #: Samples delivered across all clients.
    delivered: int
    #: Samples lost to unrecoverable faults.
    failed: int
    #: Final simulated time (application window + teardown drain).
    sim_time: float
    #: Every delivered batch's sample indices, concatenated in delivery
    #: order — the determinism witness (traced == untraced, exactly).
    samples_read: np.ndarray
    #: The :class:`repro.obs.Observability` bundle (tracer + metrics);
    #: null objects when the run was not observed.
    obs: object
    #: Reactor lane names, for per-lane latency attribution.
    reactor_names: tuple
    #: Merged recovery accounting over all clients.
    recovery: dict


def _bread_rolling(client, batch: int, state: dict):
    """bread() with automatic epoch rollover (as a training loop has).

    Chunk-mode epochs are partitioned by *chunk*, so per-rank sample
    counts vary slightly; long measured windows simply roll into the
    next epoch with a fresh seed.
    """
    if client.epoch_remaining == 0:
        state["epoch"] = state.get("epoch", 0) + 1
        client.sequence(seed=DEFAULT_SEED + state["epoch"])
    count = min(batch, client.epoch_remaining)
    samples = yield from client.bread(count)
    return samples


def _dataset(num_samples: int, sample_bytes: int) -> Dataset:
    return Dataset.fixed("bench", num_samples, sample_bytes, seed=DEFAULT_SEED)


# ---------------------------------------------------------------------------
# Single-node drivers (Fig 6, Fig 7)
# ---------------------------------------------------------------------------

def dlfs_single_node(
    sample_bytes: int,
    mode: str = "chunk",
    batches: int = 40,
    batch: int = 32,
    warmup_batches: int = 4,
    cores: int = 1,
    injected_compute: float = 0.0,
    queue_depth: int = 128,
    window: int = 8,
    chunk_bytes: int = 256 * 1024,
    copy_cores: tuple = (),
    testbed: Optional[Testbed] = None,
) -> Result:
    """Random-sample read throughput on one node with the real device.

    ``cores > 1`` runs that many independent DLFS reactors (one per
    core, own qpair each) splitting the workload — the paper's
    one-thread-per-core scaling discipline (Fig 7a).
    """
    env = Environment()
    cluster = Cluster(
        env, testbed or Testbed.paper(), num_nodes=1, devices_per_node=1,
        hugepage_chunk_size=chunk_bytes,
    )
    total = cores * (batches + warmup_batches) * batch
    ds = _dataset(max(2 * total, 2000), sample_bytes)
    config = DLFSConfig(
        batching=mode, queue_depth=queue_depth, window=window,
        injected_compute=injected_compute, copy_cores=copy_cores,
    )
    fs = DLFS.mount(cluster, ds, config)
    clients = [
        fs.client(rank=r, num_ranks=cores, node=cluster.node(0), core_index=r)
        for r in range(cores)
    ]
    for c in clients:
        c.sequence(seed=DEFAULT_SEED)

    def app(env, client):
        state = {}
        for _ in range(warmup_batches):
            yield from _bread_rolling(client, batch, state)
        client.reactor.read_meter.start()
        for _ in range(batches):
            yield from _bread_rolling(client, batch, state)

    procs = [env.process(app(env, c), name=f"app{c.rank}") for c in clients]
    env.run(until=env.all_of(procs))
    throughput = sum(c.sample_throughput() for c in clients)
    bandwidth = sum(c.bandwidth() for c in clients)
    busiest = max(
        cluster.node(0).cpu.core(r).utilization() for r in range(cores)
    )
    return Result(throughput, bandwidth, busiest, env.now)


def ext4_single_node(
    sample_bytes: int,
    threads: int = 1,
    reads_per_thread: int = 250,
    warmup_per_thread: int = 20,
    warm_metadata: bool = True,
    testbed: Optional[Testbed] = None,
) -> Result:
    """Ext4 random-sample throughput: Ext4-Base (1 thread) / Ext4-MC."""
    env = Environment()
    tb = testbed or Testbed.paper()
    cluster = Cluster(env, tb, num_nodes=1, devices_per_node=1)
    node = cluster.node(0)
    total = threads * (reads_per_thread + warmup_per_thread)
    ds = _dataset(total + 64, sample_bytes)
    fs = Ext4FileSystem(env, node.device)
    fs.ingest_dataset(ds)
    if warm_metadata:
        fs.warm_metadata()
    order = sim_rng("bench.ext4.order", DEFAULT_SEED).permutation(ds.num_samples)
    measured_reads = 0
    t_start = [None]

    def worker(env, tid):
        nonlocal measured_reads
        thread = BoundThread(node.cpu.core(tid % len(node.cpu)), f"t{tid}")
        contention = tb.os.smp_contention_per_thread * (threads - 1)
        base = tid * (reads_per_thread + warmup_per_thread)
        for k in range(reads_per_thread + warmup_per_thread):
            if k == warmup_per_thread and t_start[0] is None:
                t_start[0] = env.now
            idx = int(order[base + k])
            yield from thread.run(contention)
            yield from fs.read_sample(thread, ds.sample_name(idx))
            if k >= warmup_per_thread:
                measured_reads += 1

    procs = [env.process(worker(env, t)) for t in range(threads)]
    env.run(until=env.all_of(procs))
    elapsed = env.now - (t_start[0] or 0.0)
    throughput = measured_reads / elapsed
    util = max(core.utilization() for core in node.cpu.cores)
    return Result(throughput, throughput * sample_bytes, util, elapsed)


# ---------------------------------------------------------------------------
# Multi-node drivers (Fig 8, Fig 9)
# ---------------------------------------------------------------------------

def dlfs_multi_node(
    num_nodes: int,
    sample_bytes: int,
    batches_per_node: int = 25,
    batch: int = 32,
    warmup_batches: int = 3,
    mode: str = "chunk",
) -> Result:
    """Aggregated DLFS throughput: one client per node, one emulated
    NVMe device per node, samples spread over all devices."""
    env = Environment()
    cluster = Cluster(
        env, Testbed.paper_emulated(), num_nodes=num_nodes, devices_per_node=1
    )
    per_node = (batches_per_node + warmup_batches) * batch
    ds = _dataset(max(2 * num_nodes * per_node, 4000), sample_bytes)
    fs = DLFS.mount(cluster, ds, DLFSConfig(batching=mode))
    clients = [
        fs.client(rank=r, num_ranks=num_nodes, node=cluster.node(r))
        for r in range(num_nodes)
    ]
    for c in clients:
        c.sequence(seed=DEFAULT_SEED)

    def app(env, client):
        state = {}
        for _ in range(warmup_batches):
            yield from _bread_rolling(client, batch, state)
        client.reactor.read_meter.start()
        for _ in range(batches_per_node):
            yield from _bread_rolling(client, batch, state)

    procs = [env.process(app(env, c)) for c in clients]
    env.run(until=env.all_of(procs))
    throughput = sum(c.sample_throughput() for c in clients)
    bandwidth = sum(c.bandwidth() for c in clients)
    util = max(n.cpu.core(0).utilization() for n in cluster)
    return Result(throughput, bandwidth, util, env.now)


def ext4_multi_node(
    num_nodes: int,
    sample_bytes: int,
    reads_per_node: int = 300,
    warmup_per_node: int = 20,
) -> Result:
    """Ext4 reads its node-local data (the paper's Ext4 configuration:
    datasets replicated/partitioned onto local burst buffers)."""
    env = Environment()
    cluster = Cluster(
        env, Testbed.paper_emulated(), num_nodes=num_nodes, devices_per_node=1
    )
    per_node = reads_per_node + warmup_per_node
    measured = 0
    t_start = [None]
    filesystems = []
    for node in cluster:
        ds = Dataset.fixed(
            f"bench{node.index}", per_node + 32, sample_bytes,
            seed=DEFAULT_SEED + node.index,
        )
        fs = Ext4FileSystem(env, node.device)
        fs.ingest_dataset(ds)
        fs.warm_metadata()
        filesystems.append((node, fs, ds))

    def worker(env, node, fs, ds):
        nonlocal measured
        thread = BoundThread(node.cpu.core(0), f"{node.name}.t0")
        order = sim_rng(
            f"bench.ext4.order.{node.index}", DEFAULT_SEED + node.index
        ).permutation(ds.num_samples)
        for k in range(per_node):
            if k == warmup_per_node and t_start[0] is None:
                t_start[0] = env.now
            yield from fs.read_sample(thread, ds.sample_name(int(order[k])))
            if k >= warmup_per_node:
                measured += 1

    procs = [env.process(worker(env, *f)) for f in filesystems]
    env.run(until=env.all_of(procs))
    elapsed = env.now - (t_start[0] or 0.0)
    throughput = measured / elapsed
    return Result(throughput, throughput * sample_bytes, 0.0, elapsed)


def octopus_multi_node(
    num_nodes: int,
    sample_bytes: int,
    reads_per_node: int = 250,
    warmup_per_node: int = 15,
) -> Result:
    """Octopus aggregated throughput: one client per node, distributed
    metadata + RDMA data reads."""
    env = Environment()
    cluster = Cluster(
        env, Testbed.paper_emulated(), num_nodes=num_nodes, devices_per_node=1
    )
    per_node = reads_per_node + warmup_per_node
    ds = _dataset(max(2 * num_nodes * per_node, 2000), sample_bytes)
    fs = OctopusFS(cluster)
    fs.mount(ds)
    order = sim_rng("bench.octopus.order", DEFAULT_SEED).permutation(ds.num_samples)
    measured = 0
    t_start = [None]

    def worker(env, rank):
        nonlocal measured
        base = rank * per_node
        for k in range(per_node):
            if k == warmup_per_node and t_start[0] is None:
                t_start[0] = env.now
            yield from fs.read_sample(rank, int(order[base + k]))
            if k >= warmup_per_node:
                measured += 1

    procs = [env.process(worker(env, r)) for r in range(num_nodes)]
    env.run(until=env.all_of(procs))
    elapsed = env.now - (t_start[0] or 0.0)
    throughput = measured / elapsed
    return Result(throughput, throughput * sample_bytes, 0.0, elapsed)


# ---------------------------------------------------------------------------
# Lookup-time drivers (Fig 10)
# ---------------------------------------------------------------------------

def dlfs_lookup_time(
    num_nodes: int,
    total_samples: int = 1_000_000,
    sample_bytes: int = 512,
    measured_lookups_per_node: int = 1500,
) -> float:
    """Total time for the cluster to look up ``total_samples`` samples.

    Each node resolves its share (total/num_nodes) through its directory
    replica.  A sampled subset runs in the simulator; the per-lookup
    mean is scaled to the full share (lookup cost has no queue effects —
    it is pure local CPU — so the extrapolation is exact).
    """
    env = Environment()
    cluster = Cluster(
        env, Testbed.paper_emulated(), num_nodes=num_nodes, devices_per_node=1
    )
    # Directory scale matters (tree height); data volume does not.
    ds = _dataset(total_samples, sample_bytes)
    fs = DLFS.mount(cluster, ds, DLFSConfig(batching="none"))
    client = fs.client(rank=0, num_ranks=1, node=cluster.node(0))
    share = total_samples // num_nodes
    count = min(measured_lookups_per_node, share)
    rng = sim_rng("bench.lookup.targets", DEFAULT_SEED)
    targets = rng.integers(0, total_samples, count)

    def app(env):
        from repro.core import LookupJob

        t0 = env.now
        for idx in targets:
            job = LookupJob(done=env.event(), index=int(idx))
            client.reactor.submit(job)
            yield job.done
        return (env.now - t0) / count

    per_lookup = env.run(until=env.process(app(env)))
    return per_lookup * share


def ext4_open_time(
    num_nodes: int,
    total_samples: int = 1_000_000,
    sample_bytes: int = 512,
    measured_opens_per_node: int = 400,
) -> float:
    """Ext4 equivalent: cold file-open time for each node's share."""
    env = Environment()
    cluster = Cluster(
        env, Testbed.paper_emulated(), num_nodes=1, devices_per_node=1
    )
    node = cluster.node(0)
    share = total_samples // num_nodes
    count = min(measured_opens_per_node, share)
    ds = _dataset(count + 16, sample_bytes)
    fs = Ext4FileSystem(env, node.device)
    fs.ingest_dataset(ds)  # cold caches: every open pays the full walk
    thread = BoundThread(node.cpu.core(0), "opens")

    def app(env):
        t0 = env.now
        for i in range(count):
            fd = yield from fs.open(thread, ds.sample_name(i))
            yield from fs.close(thread, fd)
        return (env.now - t0) / count

    per_open = env.run(until=env.process(app(env)))
    return per_open * share


def octopus_lookup_time(
    num_nodes: int,
    total_samples: int = 1_000_000,
    sample_bytes: int = 512,
    measured_lookups_per_node: int = 400,
) -> float:
    """Octopus lookup time: concurrent clients, distributed metadata.

    All nodes look up concurrently (contention on the serialized
    metadata services is part of the measurement); returns the time for
    the slowest node's share.
    """
    env = Environment()
    cluster = Cluster(
        env, Testbed.paper_emulated(), num_nodes=num_nodes, devices_per_node=1
    )
    share = total_samples // num_nodes
    count = min(measured_lookups_per_node, share)
    ds = _dataset(max(num_nodes * count, 1000), sample_bytes)
    fs = OctopusFS(cluster)
    fs.mount(ds)
    rng = sim_rng("bench.octopus.lookup", DEFAULT_SEED)
    per_node_time = []

    def worker(env, rank):
        targets = rng.integers(0, ds.num_samples, count)
        t0 = env.now
        for idx in targets:
            yield from fs.lookup(rank, int(idx))
        per_node_time.append((env.now - t0) / count)

    procs = [env.process(worker(env, r)) for r in range(num_nodes)]
    env.run(until=env.all_of(procs))
    return max(per_node_time) * share


# ---------------------------------------------------------------------------
# Disaggregation-effectiveness driver (Fig 11)
# ---------------------------------------------------------------------------

def dlfs_disaggregated(
    num_devices: int,
    num_clients: int,
    sample_bytes: int = 128 * 1024,
    batches_per_client: int = 25,
    batch: int = 32,
    warmup_batches: int = 3,
    window: Optional[int] = None,
) -> Result:
    """Clients on compute nodes, devices on separate storage nodes.

    The topology of Fig 11: ``num_clients`` compute nodes access
    ``num_devices`` NVMe devices hosted on dedicated storage nodes over
    NVMe-oF.
    """
    env = Environment()
    cluster = Cluster(
        env,
        Testbed.paper_emulated(),
        num_nodes=num_clients + num_devices,
        devices_per_node=0,
    )
    placement = []
    for d in range(num_devices):
        storage = cluster.node(num_clients + d)
        storage.add_device()
        placement.append((storage.index, 0))
    per_client = (batches_per_client + warmup_batches) * batch
    ds = _dataset(
        max(2 * num_clients * per_client, num_devices * 512, 4000),
        sample_bytes,
    )
    if window is None:
        # A client fanning out over many devices needs a deeper chunk
        # pipeline to keep every qpair busy (one window share each).
        window = max(8, 8 * num_devices // max(num_clients, 1))
    fs = DLFS.mount(
        cluster, ds, DLFSConfig(batching="chunk", window=window),
        placement=placement,
    )
    clients = [
        fs.client(rank=r, num_ranks=num_clients, node=cluster.node(r))
        for r in range(num_clients)
    ]
    for c in clients:
        c.sequence(seed=DEFAULT_SEED)

    def app(env, client):
        state = {}
        for _ in range(warmup_batches):
            yield from _bread_rolling(client, batch, state)
        client.reactor.read_meter.start()
        for _ in range(batches_per_client):
            yield from _bread_rolling(client, batch, state)

    procs = [env.process(app(env, c)) for c in clients]
    env.run(until=env.all_of(procs))
    throughput = sum(c.sample_throughput() for c in clients)
    bandwidth = sum(c.bandwidth() for c in clients)
    return Result(throughput, bandwidth, 0.0, env.now)


def ideal_disaggregated_throughput(
    num_devices: int, num_clients: int, sample_bytes: int,
    testbed: Optional[Testbed] = None,
) -> float:
    """The paper's analytic NVMe-1C / NVMe-16C curves (Fig 11).

    Aggregate device bandwidth divided by sample size, capped by the
    clients' total NIC bandwidth once devices outnumber what the client
    links can absorb (the paper's rule: with one client, the network
    bottlenecks past 2 devices).
    """
    tb = testbed or Testbed.paper_emulated()
    device_bw = num_devices * tb.nvme.read_bandwidth
    client_bw = num_clients * tb.network.bandwidth
    return min(device_bw, client_bw) / sample_bytes


# ---------------------------------------------------------------------------
# Chaos driver (fault injection + recovery)
# ---------------------------------------------------------------------------

def dlfs_chaos(
    fault_plan: FaultPlan,
    recovery: Optional[RecoveryPolicy] = None,
    num_nodes: int = 2,
    sample_bytes: int = 4 * 1024,
    num_samples: int = 1024,
    epochs: int = 2,
    batch: int = 32,
    mode: str = "chunk",
    seed: int = DEFAULT_SEED,
    queue_depth: int = 128,
    testbed: Optional[Testbed] = None,
) -> ChaosResult:
    """Full-epoch DLFS run under a fault plan, with strict accounting.

    Unlike the steady-state figure drivers this runs *complete* epochs
    (every sample demanded exactly once per epoch) and then shuts the
    clients down, so the invariant ``delivered + failed == expected``
    is checkable — the ISSUE's acceptance bar for graceful degradation.
    """
    env = Environment()
    cluster = Cluster(
        env, testbed or Testbed.paper_emulated(),
        num_nodes=num_nodes, devices_per_node=1,
    )
    ds = _dataset(num_samples, sample_bytes)
    config = DLFSConfig(
        batching=mode, queue_depth=queue_depth,
        fault_plan=fault_plan, recovery=recovery,
    )
    fs = DLFS.mount(cluster, ds, config)
    clients = [
        fs.client(rank=r, num_ranks=num_nodes, node=cluster.node(r))
        for r in range(num_nodes)
    ]
    expected = [0] * num_nodes

    def app(env, client):
        for e in range(epochs):
            client.sequence(seed=seed + e)
            while client.epoch_remaining > 0:
                count = min(batch, client.epoch_remaining)
                samples = yield from client.bread(count)
                expected[client.rank] += len(samples)

    procs = [env.process(app(env, c), name=f"chaos{c.rank}") for c in clients]
    env.run(until=env.all_of(procs))
    # Measure over the application window; the drain below only lets
    # trailing recovery timers (watchdogs, reset drivers) expire.
    app_time = env.now

    def teardown(env):
        for c in clients:
            yield from c.shutdown()

    env.run(until=env.process(teardown(env), name="chaos.teardown"))
    env.run()  # drain trailing timers (watchdogs, reset drivers)

    delivered = sum(c.samples_delivered for c in clients)
    failed = sum(c.failed_samples for c in clients)
    recovery_merged: dict = {"degraded_time": 0.0}
    for c in clients:
        for key, value in c.recovery_stats.as_dict().items():
            recovery_merged[key] = recovery_merged.get(key, 0) + value
    throughput = delivered / app_time if app_time > 0 else 0.0
    return ChaosResult(
        sample_throughput=throughput,
        delivered=delivered,
        failed=failed,
        expected=sum(expected),
        sim_time=app_time,
        recovery=recovery_merged,
        fault_counts=(
            fs.injector.counts.as_dict() if fs.injector is not None else {}
        ),
    )


# ---------------------------------------------------------------------------
# Observed driver (tracing + metrics + latency attribution)
# ---------------------------------------------------------------------------

def dlfs_observed(
    samples: int = 2000,
    sample_bytes: int = 16 * 1024,
    batch: int = 32,
    mode: str = "chunk",
    num_nodes: int = 1,
    trace: bool = True,
    metrics: bool = True,
    snapshot_period: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    seed: int = DEFAULT_SEED,
    queue_depth: int = 128,
    testbed: Optional[Testbed] = None,
) -> TraceReport:
    """One DLFS run with the observability subsystem attached.

    Drives ``samples`` total sample reads (rolling over epochs as a
    training loop does), then shuts the clients down cleanly.  With
    ``trace``/``metrics`` off this is the exact same simulation — the
    returned ``samples_read`` order and ``sim_time`` are bit-identical,
    which is what the determinism test in ``tests/test_obs.py`` checks.
    """
    env = Environment()
    cluster = Cluster(
        env,
        testbed or (Testbed.paper() if num_nodes == 1 else Testbed.paper_emulated()),
        num_nodes=num_nodes, devices_per_node=1,
    )
    ds = _dataset(max(2 * samples, 2000), sample_bytes)
    config = DLFSConfig(
        batching=mode, queue_depth=queue_depth,
        fault_plan=fault_plan, recovery=recovery,
        trace=trace, metrics=metrics, snapshot_period=snapshot_period,
    )
    fs = DLFS.mount(cluster, ds, config)
    clients = [
        fs.client(rank=r, num_ranks=num_nodes, node=cluster.node(r))
        for r in range(num_nodes)
    ]
    for c in clients:
        c.sequence(seed=seed)
    per_client = samples // num_nodes
    read_log: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * num_nodes

    def app(env, client):
        state = {}
        done = 0
        chunks = []
        while done < per_client:
            got = yield from _bread_rolling(
                client, min(batch, per_client - done), state
            )
            chunks.append(np.asarray(got, dtype=np.int64))
            done += len(got)
        read_log[client.rank] = np.concatenate(chunks)

    procs = [env.process(app(env, c), name=f"obs{c.rank}") for c in clients]
    env.run(until=env.all_of(procs))
    app_time = env.now

    def teardown(env):
        for c in clients:
            yield from c.shutdown()

    env.run(until=env.process(teardown(env), name="obs.teardown"))
    env.run()  # drain trailing timers (watchdogs, reset drivers)

    delivered = sum(c.samples_delivered for c in clients)
    failed = sum(c.failed_samples for c in clients)
    recovery_merged: dict = {}
    for c in clients:
        for key, value in c.recovery_stats.as_dict().items():
            recovery_merged[key] = recovery_merged.get(key, 0) + value
    return TraceReport(
        sample_throughput=delivered / app_time if app_time > 0 else 0.0,
        delivered=delivered,
        failed=failed,
        sim_time=env.now,
        samples_read=np.concatenate(read_log),
        obs=fs.obs,
        reactor_names=tuple(c.reactor.name for c in clients),
        recovery=recovery_merged,
    )


# ---------------------------------------------------------------------------
# Multi-tenant serving driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TenancyReport:
    """One multi-tenant serving run (:func:`dlfs_tenancy`)."""

    #: Delivered samples per simulated second (over the full run).
    sample_throughput: float
    #: Samples delivered across all tenants.
    delivered: int
    #: Samples lost to unrecoverable faults.
    failed: int
    #: Jobs bounced by admission control (token-bucket queue overflow).
    rejected_jobs: int
    #: Final simulated time (arrival horizon + drain + teardown).
    sim_time: float
    #: Every completed job's sample indices in (tenant, job-key) order —
    #: the determinism witness (completion-order independent).
    samples_read: np.ndarray
    #: Per-tenant accounting rows at the end of the run (after drain).
    per_tenant: tuple
    #: The same rows snapshotted at the arrival-horizon edge, while the
    #: system is still saturated.  Whole-run shares equalize during the
    #: drain (every admitted job eventually completes), so fairness is
    #: only visible in this window.
    window_rows: tuple
    #: Fraction of device-service bytes per tenant over the measured
    #: window ``[warmup, horizon]``.  This is the SFQ fairness metric:
    #: job-level bytes over-credit backlogged tenants whose jobs dedup
    #: onto already-pending fetches.
    service_shares: dict
    #: Device-service byte deltas behind ``service_shares``.
    service_bytes: dict
    #: Scheduler counters: preemptions, forced (anti-starvation) serves.
    preemptions: int
    forced_serves: int
    #: The observability bundle (null objects unless metrics/trace on).
    obs: object


def demo_tenants() -> tuple:
    """The reference three-tenant mix: ``(specs, workloads)``.

    Two closed-loop training tenants with 2:1 weights (concurrency 4
    keeps each trainer backlogged at the scheduler, so the weighted
    share is actually realized) plus one bursty
    open-loop scan tenant that is rate-limited by a token bucket, runs
    at a lower priority class, and is capped to a quarter of the sample
    cache and half of each qpair's depth — the configuration the
    example, the ``serve`` CLI, and the perfcheck workload all share.
    Sample ranges are disjoint thirds of a 3072-sample dataset.
    """
    from ..tenancy import TenantSpec, TenantWorkload

    specs = (
        TenantSpec(name="train_a", weight=2.0, slo_latency=5e-3),
        TenantSpec(name="train_b", weight=1.0, slo_latency=5e-3),
        TenantSpec(
            name="scan", weight=1.0, priority=2, rate=4000.0, burst=256.0,
            max_queued_jobs=32, cache_share=0.25, qpair_share=0.5,
        ),
    )
    workloads = (
        TenantWorkload(
            name="train_a", kind="train", batch=16, concurrency=4,
            sample_lo=0, sample_hi=1024,
        ),
        TenantWorkload(
            name="train_b", kind="train", batch=16, concurrency=4,
            sample_lo=1024, sample_hi=2048,
        ),
        TenantWorkload(
            name="scan", kind="bursty", rate=300.0, batch=32,
            sample_lo=2048, sample_hi=3072,
        ),
    )
    return specs, workloads


def fair_tenants(
    weights: tuple = (1.0, 2.0, 4.0),
    rate: float = 20000.0,
    span: int = 1024,
    batch: int = 8,
) -> tuple:
    """A saturating fairness mix: ``(specs, workloads)``.

    One open-loop Poisson tenant per weight, all offering the *same*
    load (``rate`` jobs/s of ``batch`` samples) over disjoint ranges, so
    under saturation the achieved device-service shares are set purely
    by the SFQ weights.
    """
    from ..tenancy import TenantSpec, TenantWorkload

    specs = tuple(
        TenantSpec(name=f"t{i}w{w:g}", weight=float(w))
        for i, w in enumerate(weights)
    )
    workloads = tuple(
        TenantWorkload(
            name=s.name, kind="poisson", rate=rate, batch=batch,
            sample_lo=i * span, sample_hi=(i + 1) * span,
        )
        for i, s in enumerate(specs)
    )
    return specs, workloads


def dlfs_tenancy(
    specs: Optional[tuple] = None,
    workloads: Optional[tuple] = None,
    num_samples: int = 3072,
    sample_bytes: int = 16 * 1024,
    horizon: float = 0.05,
    warmup: float = 0.01,
    seed: int = DEFAULT_SEED,
    queue_depth: int = 32,
    hugepage_bytes: int = 16 * 1024 * 1024,
    metrics: bool = False,
    trace: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    max_bypass: int = 8,
    testbed: Optional[Testbed] = None,
) -> TenancyReport:
    """One multi-tenant serving run on a single node.

    Defaults to :func:`demo_tenants`.  The testbed's hugepage pool is
    shrunk (16 MB ≫ one batch, ≪ the dataset) so the run is I/O-bound:
    with the whole dataset cache-resident, hits bypass the scheduler and
    fairness becomes unmeasurable.  ``warmup``/``horizon`` bound the
    service-share measurement window; arrivals stop at ``horizon`` and
    the run then drains every outstanding job and shuts down cleanly.
    """
    import dataclasses

    from ..tenancy import TrafficEngine

    if (specs is None) != (workloads is None):
        raise ConfigError("pass both specs and workloads, or neither")
    if specs is None:
        specs, workloads = demo_tenants()
    if not 0.0 <= warmup < horizon:
        raise ConfigError("need 0 <= warmup < horizon")
    env = Environment()
    tb = testbed or Testbed.paper()
    if hugepage_bytes:
        tb = dataclasses.replace(tb, hugepage_bytes=hugepage_bytes)
    cluster = Cluster(env, tb, num_nodes=1, devices_per_node=1)
    ds = _dataset(num_samples, sample_bytes)
    config = DLFSConfig(
        batching="sample", queue_depth=queue_depth, tenants=tuple(specs),
        tenancy_max_bypass=max_bypass, trace=trace, metrics=metrics,
        fault_plan=fault_plan, recovery=recovery,
    )
    fs = DLFS.mount(cluster, ds, config)
    client = fs.client(rank=0, num_ranks=1)
    runtime = client.tenancy
    engine = TrafficEngine(
        env, runtime, ds, tuple(workloads), seed=seed, horizon=horizon
    )
    procs = engine.start()

    def service_bytes() -> dict:
        return dict(runtime.scheduler.bytes_served)

    if warmup > 0:
        env.run(until=warmup)
    base = service_bytes()
    env.run(until=horizon)
    edge = service_bytes()
    window_rows = tuple(runtime.accounting.rows())
    env.run(until=env.all_of(procs))
    env.run(until=env.process(engine.drain(), name="tenancy.drain"))

    def teardown(env):
        yield from client.shutdown()

    env.run(until=env.process(teardown(env), name="tenancy.teardown"))
    env.run()  # drain trailing timers

    deltas = {
        t: edge[t] - base.get(t, 0) for t in sorted(edge)
        if edge[t] - base.get(t, 0) > 0
    }
    total = sum(deltas.values())
    shares = {t: deltas[t] / total for t in deltas} if total else {}
    sched = runtime.scheduler
    return TenancyReport(
        sample_throughput=engine.delivered / env.now if env.now > 0 else 0.0,
        delivered=engine.delivered,
        failed=engine.failed,
        rejected_jobs=engine.rejected_jobs,
        sim_time=env.now,
        samples_read=engine.samples_read(),
        per_tenant=tuple(runtime.accounting.rows()),
        window_rows=window_rows,
        service_shares=shares,
        service_bytes=deltas,
        preemptions=sched.preemptions,
        forced_serves=sched.forced_serves,
        obs=fs.obs,
    )


# ---------------------------------------------------------------------------
# Replicated cluster serving driver (crash / rejoin / hedged reads)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClusterReport:
    """One replicated-cluster serving run (:func:`dlfs_cluster`)."""

    #: Delivered samples per simulated second (over the full run).
    sample_throughput: float
    #: Samples delivered across all clients and tenants.
    delivered: int
    #: Samples lost to unrecoverable faults (zero in every healthy and
    #: single-crash R>=2 configuration — the failover gate).
    failed: int
    #: Jobs completed across all traffic engines.
    jobs: int
    #: Final simulated time (arrival horizon + drain + teardown).
    sim_time: float
    #: Every completed job's sample indices in (client, tenant, job-key)
    #: order — the determinism witness (completion-order independent).
    samples_read: np.ndarray
    #: Per-tenant accounting rows merged across clients (counts summed,
    #: percentiles recomputed from the merged completion records).
    per_tenant: tuple
    #: Every job completion as ``(t_done, tenant, latency, delivered,
    #: failed)``, merged over all clients and sorted — the raw material
    #: for windowed (victim-window) percentiles in the crash benches.
    records: tuple
    #: Merged reactor recovery accounting (failovers, hedges_posted,
    #: hedges_dropped, node_down/up, degraded_time, ...).
    recovery: dict
    #: Lifecycle counters (crashes, rejoins, handoffs, rewarms) — empty
    #: dict when no crash schedule was installed.
    lifecycle: dict
    #: Balancer counters merged across clients: per-lane ``routed``
    #: totals plus ``failovers`` and ``cache_routed``.
    balancer: dict
    #: The observability bundle (null objects unless metrics/trace on).
    obs: object


def cluster_tenants(num_samples: int = 8192, rate: float = 3000.0) -> tuple:
    """The reference cluster serving mix: ``(specs, workloads)``.

    One closed-loop training tenant (backlogged, throughput-oriented)
    plus one open-loop Poisson inference tenant with a tight SLO — the
    mix every cluster bench, the ``cluster`` CLI, and the perfcheck /
    sanitizer scenarios share.  Sample ranges are disjoint halves so
    the two tenants exercise different shards.
    """
    from ..tenancy import TenantSpec, TenantWorkload

    half = num_samples // 2
    specs = (
        TenantSpec(name="train", weight=2.0, slo_latency=5e-3),
        TenantSpec(name="serve", weight=1.0, slo_latency=2e-3),
    )
    workloads = (
        TenantWorkload(
            name="train", kind="train", batch=16, concurrency=4,
            sample_lo=0, sample_hi=half,
        ),
        TenantWorkload(
            name="serve", kind="poisson", rate=rate, batch=8,
            sample_lo=half, sample_hi=num_samples,
        ),
    )
    return specs, workloads


def _merge_tenant_rows(runtimes: list, records: tuple) -> tuple:
    """Merge per-client accounting rows by tenant name.

    Counts sum exactly; latency percentiles are recomputed from the
    merged completion records (per-client histograms can't be merged).
    """
    by_latency: dict = {}
    for _t, tenant, latency, _ok, _fail in records:
        by_latency.setdefault(tenant, []).append(latency)
    merged: dict = {}
    for rt in runtimes:
        for row in rt.accounting.rows():
            name = row["tenant"]
            if name not in merged:
                merged[name] = dict(row)
            else:
                m = merged[name]
                for key in (
                    "jobs", "rejected", "samples", "failed", "bytes",
                    "slo_violations",
                ):
                    if key in row:
                        m[key] = m.get(key, 0) + row[key]
    total_bytes = sum(m.get("bytes", 0) for m in merged.values())
    for name, m in merged.items():
        m["share"] = m.get("bytes", 0) / total_bytes if total_bytes else 0.0
        lats = sorted(by_latency.get(name, ()))
        if lats:
            m["p50"] = lats[int(0.50 * (len(lats) - 1))]
            m["p99"] = lats[int(0.99 * (len(lats) - 1))]
    return tuple(merged[name] for name in sorted(merged))


def dlfs_cluster(
    num_storage: int = 8,
    num_clients: int = 2,
    replicas: int = 2,
    num_samples: int = 8192,
    sample_bytes: int = 64 * 1024,
    horizon: float = 0.02,
    seed: int = DEFAULT_SEED,
    node_crashes: tuple = (),
    hedge_delay: float = 0.0,
    read_cache_chunks: int = 0,
    balancer: bool = True,
    queue_depth: int = 32,
    specs: Optional[tuple] = None,
    workloads: Optional[tuple] = None,
    metrics: bool = False,
    trace: bool = False,
) -> ClusterReport:
    """One replicated cluster serving run under live traffic.

    ``num_clients`` compute nodes front ``num_storage`` single-device
    storage nodes (the Fig 11 disaggregated topology), each shard
    placed on ``replicas`` nodes via rendezvous hashing.  Every client
    runs its own front-end balancer and traffic engine (per-client seed
    offsets keep arrival scripts distinct but deterministic).

    ``node_crashes`` entries are ``(lane, crash_time, rejoin_time)``
    with ``rejoin_time=None`` for a permanent loss.  With ``replicas >=
    2`` a single crash loses zero samples: queued work fails over to
    surviving replicas and the drain completes; with ``replicas == 1``
    and no rejoin the drain would wedge on parked fetches, so permanent
    single-replica crashes are rejected by :class:`FaultPlan`
    validation upstream.
    """
    from ..tenancy import TrafficEngine

    if (specs is None) != (workloads is None):
        raise ConfigError("pass both specs and workloads, or neither")
    if specs is None:
        specs, workloads = cluster_tenants(num_samples)
    env = Environment()
    cluster = Cluster(
        env,
        Testbed.paper_emulated(),
        num_nodes=num_clients + num_storage,
        devices_per_node=0,
    )
    placement = []
    for d in range(num_storage):
        storage = cluster.node(num_clients + d)
        storage.add_device()
        placement.append((storage.index, 0))
    ds = _dataset(num_samples, sample_bytes)
    plan = FaultPlan(node_crashes=tuple(node_crashes)) if node_crashes else None
    config = DLFSConfig(
        batching="sample",
        queue_depth=queue_depth,
        cluster=ClusterSpec(
            replicas=replicas,
            balancer=balancer,
            hedge_delay=hedge_delay,
            read_cache_chunks=read_cache_chunks,
        ),
        fault_plan=plan,
        trace=trace,
        metrics=metrics,
    )
    fs = DLFS.mount(cluster, ds, config, placement=placement)
    clients = [
        fs.client(rank=r, num_ranks=num_clients, node=cluster.node(r))
        for r in range(num_clients)
    ]
    runtimes = []
    engines = []
    procs = []
    for r, client in enumerate(clients):
        runtime = ClusterRuntime(env, client.reactor, specs)
        engine = TrafficEngine(
            env, runtime, ds, tuple(workloads),
            seed=seed + 1000 * r, horizon=horizon,
        )
        runtimes.append(runtime)
        engines.append(engine)
        procs.extend(engine.start())
    env.run(until=env.all_of(procs))
    for r, engine in enumerate(engines):
        env.run(until=env.process(engine.drain(), name=f"cluster.drain[{r}]"))

    def teardown(env, client):
        yield from client.shutdown()

    for r, client in enumerate(clients):
        env.run(
            until=env.process(
                teardown(env, client), name=f"cluster.teardown[{r}]"
            )
        )
    env.run()  # drain trailing timers (rejoin schedules, watchdogs)

    records = tuple(sorted(rec for rt in runtimes for rec in rt.records))
    recovery: dict = {}
    for client in clients:
        for key, value in client.reactor.recovery_stats.as_dict().items():
            recovery[key] = recovery.get(key, 0) + value
    routed: dict = {}
    failovers = 0
    cache_routed = 0
    for client in clients:
        fe = client.balancer
        if fe is None:
            continue
        for lane, count in fe.routed.items():
            routed[lane] = routed.get(lane, 0) + count
        failovers += fe.failovers
        cache_routed += fe.cache_routed
    witness_parts = [e.samples_read() for e in engines]
    witness = (
        np.concatenate(witness_parts)
        if witness_parts
        else np.empty(0, dtype=np.int64)
    )
    delivered = sum(e.delivered for e in engines)
    return ClusterReport(
        sample_throughput=delivered / env.now if env.now > 0 else 0.0,
        delivered=delivered,
        failed=sum(e.failed for e in engines),
        jobs=sum(e.jobs_completed for e in engines),
        sim_time=env.now,
        samples_read=witness,
        per_tenant=_merge_tenant_rows(runtimes, records),
        records=records,
        recovery=recovery,
        lifecycle=fs.lifecycle.counters() if fs.lifecycle is not None else {},
        balancer={
            "routed": routed,
            "failovers": failovers,
            "cache_routed": cache_routed,
        },
        obs=fs.obs,
    )


# ---------------------------------------------------------------------------
# Disaggregated fetch/transform tier driver (xform)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class XformReport:
    """One fetch/transform serving run (:func:`dlfs_xform`)."""

    #: Delivered samples per simulated second (over the full run).
    sample_throughput: float
    #: Samples delivered across all clients and tenants.
    delivered: int
    #: Samples lost to unrecoverable faults.
    failed: int
    #: Jobs completed across all traffic engines.
    jobs: int
    #: Final simulated time (arrival horizon + drain + teardown).
    sim_time: float
    #: Every completed job's sample indices in (client, tenant, job-key)
    #: order — the determinism witness (completion-order independent).
    samples_read: np.ndarray
    #: Per-tenant accounting rows merged across clients (includes the
    #: transform-queue wait column; zero-filled when xform is off).
    per_tenant: tuple
    #: Every job completion, merged over all clients and sorted.
    records: tuple
    #: Transform-tier counters (tasks, direct_ships, redispatches,
    #: crashes, rejoins, boundary, stages) — empty dict when xform off.
    tier: dict
    #: TransferEngine per-link attribution rows — empty when xform off.
    links: tuple
    #: Per-tier CPU utilization rows (storage pushdown cores + transform
    #: workers) — empty when xform off.
    utilization: tuple
    #: Per-transform-lane routed task counts — empty when xform off.
    routed: dict
    #: The observability bundle (null objects unless metrics/trace on).
    obs: object


def dlfs_xform(
    num_storage: int = 2,
    num_clients: int = 2,
    num_samples: int = 2048,
    sample_bytes: int = 64 * 1024,
    horizon: float = 0.01,
    seed: int = DEFAULT_SEED,
    spec=None,
    xform_crashes: tuple = (),
    replicas: int = 1,
    balancer: bool = False,
    queue_depth: int = 32,
    specs: Optional[tuple] = None,
    workloads: Optional[tuple] = None,
    metrics: bool = False,
    trace: bool = False,
    testbed: Optional[Testbed] = None,
) -> XformReport:
    """One serving run through the disaggregated fetch/transform tier.

    ``spec`` is a :class:`repro.xform.XformSpec`; ``None`` or a spec
    with no stages is the pay-for-use contract: **no** transform worker
    nodes are built (extra NICs would perturb the fabric digest) and
    the run is bit-identical to :func:`dlfs_cluster` with the same
    arguments — the ``xform_pay_for_use`` perfcheck workload holds the
    two side by side.

    With stages configured, ``spec.workers`` extra CPU-only nodes join
    the cluster as transform lanes.  Each fetched job re-enters the
    tier: the pushdown prefix of the stage pipeline burns storage-node
    CPU, the boundary bytes ship storage→worker through the chunked
    :class:`~repro.xform.TransferEngine`, the suffix runs on the
    client's affinity lane, and the output ships worker→trainer before
    the job completes — so transform queueing counts against tenant
    SLOs.  ``testbed`` overrides the hardware description (the
    crossover benchmark sweeps fabric bandwidth through it).
    ``xform_crashes`` entries are ``(worker, crash_time,
    rejoin_time)``; in-flight tasks on a crashed lane re-dispatch to
    survivors (re-shipping their bytes), and the run must still deliver
    every sample.
    """
    from ..tenancy import TrafficEngine
    from ..xform import XformRuntime, XformTier

    if (specs is None) != (workloads is None):
        raise ConfigError("pass both specs and workloads, or neither")
    if specs is None:
        specs, workloads = cluster_tenants(num_samples)
    enabled = spec is not None and spec.enabled
    num_workers = spec.workers if enabled else 0
    env = Environment()
    cluster = Cluster(
        env,
        testbed if testbed is not None else Testbed.paper_emulated(),
        num_nodes=num_clients + num_storage + num_workers,
        devices_per_node=0,
    )
    placement = []
    for d in range(num_storage):
        storage = cluster.node(num_clients + d)
        storage.add_device()
        placement.append((storage.index, 0))
    ds = _dataset(num_samples, sample_bytes)
    config = DLFSConfig(
        batching="sample",
        queue_depth=queue_depth,
        cluster=ClusterSpec(replicas=replicas, balancer=balancer),
        trace=trace,
        metrics=metrics,
    )
    fs = DLFS.mount(cluster, ds, config, placement=placement)
    tier = None
    if enabled:
        worker_nodes = [
            cluster.node(num_clients + num_storage + w)
            for w in range(num_workers)
        ]
        tier = XformTier(
            env, spec, fs, worker_nodes,
            crashes=tuple(xform_crashes),
            registry=fs.obs.metrics if fs.obs.enabled else None,
        )
    elif xform_crashes:
        raise ConfigError("xform_crashes given but no transform stages")
    clients = [
        fs.client(rank=r, num_ranks=num_clients, node=cluster.node(r))
        for r in range(num_clients)
    ]
    runtimes = []
    engines = []
    procs = []
    for r, client in enumerate(clients):
        runtime = ClusterRuntime(env, client.reactor, specs)
        runtimes.append(runtime)
        if tier is not None:
            runtime = XformRuntime(
                env, runtime, tier, cluster.node(r).name, rank=r
            )
        engine = TrafficEngine(
            env, runtime, ds, tuple(workloads),
            seed=seed + 1000 * r, horizon=horizon,
        )
        engines.append(engine)
        procs.extend(engine.start())
    env.run(until=env.all_of(procs))
    for r, engine in enumerate(engines):
        env.run(until=env.process(engine.drain(), name=f"xform.drain[{r}]"))

    def teardown(env, client):
        yield from client.shutdown()

    for r, client in enumerate(clients):
        env.run(
            until=env.process(
                teardown(env, client), name=f"xform.teardown[{r}]"
            )
        )
    env.run()  # drain trailing timers (rejoin schedules, watchdogs)

    records = tuple(sorted(rec for rt in runtimes for rec in rt.records))
    witness_parts = [e.samples_read() for e in engines]
    witness = (
        np.concatenate(witness_parts)
        if witness_parts
        else np.empty(0, dtype=np.int64)
    )
    delivered = sum(e.delivered for e in engines)
    return XformReport(
        sample_throughput=delivered / env.now if env.now > 0 else 0.0,
        delivered=delivered,
        failed=sum(e.failed for e in engines),
        jobs=sum(e.jobs_completed for e in engines),
        sim_time=env.now,
        samples_read=witness,
        per_tenant=_merge_tenant_rows(runtimes, records),
        records=records,
        tier=tier.counters() if tier is not None else {},
        links=tuple(tier.engine.link_rows()) if tier is not None else (),
        utilization=tuple(tier.utilization_rows()) if tier is not None else (),
        routed=tier.routed() if tier is not None else {},
        obs=fs.obs,
    )


# ---------------------------------------------------------------------------
# TensorFlow ingest driver (Fig 12)
# ---------------------------------------------------------------------------

def tf_ingest_throughput(
    system: str,
    num_nodes: int,
    sample_bytes: int,
    batches_per_node: int = 20,
    batch: int = 32,
    warmup_batches: int = 3,
    spec: Optional[TFIngestSpec] = None,
) -> Result:
    """Aggregate TF-adapter ingest throughput for one system."""
    if system not in ("dlfs", "ext4", "octopus"):
        raise ConfigError(f"unknown system {system!r}")
    env = Environment()
    cluster = Cluster(
        env, Testbed.paper_emulated(), num_nodes=num_nodes, devices_per_node=1
    )
    per_node = (batches_per_node + warmup_batches) * batch
    adapters = []
    if system == "dlfs":
        ds = _dataset(max(2 * num_nodes * per_node, 4000), sample_bytes)
        fs = DLFS.mount(cluster, ds, DLFSConfig(batching="chunk"))
        for r in range(num_nodes):
            client = fs.client(rank=r, num_ranks=num_nodes, node=cluster.node(r))
            # The TF input-pipeline thread lives on a second core; the
            # reactor busy-polls core 0.
            thread = BoundThread(cluster.node(r).cpu.core(1), f"tf{r}")
            adapters.append(DLFSTFAdapter(client, thread, spec))
    elif system == "ext4":
        for node in cluster:
            ds = Dataset.fixed(
                f"bench{node.index}", per_node + 32, sample_bytes,
                seed=DEFAULT_SEED + node.index,
            )
            fs = Ext4FileSystem(env, node.device)
            fs.ingest_dataset(ds)
            fs.warm_metadata()
            thread = BoundThread(node.cpu.core(0), f"tf{node.index}")
            adapters.append(Ext4TFAdapter(fs, ds, thread, spec=spec))
    else:
        ds = _dataset(max(2 * num_nodes * per_node, 2000), sample_bytes)
        fs = OctopusFS(cluster)
        fs.mount(ds)
        for r in range(num_nodes):
            thread = BoundThread(cluster.node(r).cpu.core(0), f"tf{r}")
            adapters.append(
                OctopusTFAdapter(fs, thread, rank=r, num_ranks=num_nodes,
                                 spec=spec)
            )

    def app(env, adapter):
        adapter.start_epoch(DEFAULT_SEED)
        for _ in range(warmup_batches):
            yield from adapter.next_batch(batch)
        adapter.meter.start()
        for _ in range(batches_per_node):
            yield from adapter.next_batch(batch)

    procs = [env.process(app(env, a)) for a in adapters]
    env.run(until=env.all_of(procs))
    throughput = sum(a.ingest_rate() for a in adapters)
    bandwidth = sum(a.meter.bandwidth() for a in adapters)
    return Result(throughput, bandwidth, 0.0, env.now)
