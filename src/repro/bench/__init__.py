"""Benchmark harness: workload drivers, per-figure experiments, reporting."""

from .figures import (
    FigureResult,
    fig01_size_distribution,
    fig06_single_node_throughput,
    fig07a_core_scaling,
    fig07b_compute_overlap,
    fig08_throughput_16_nodes,
    fig09_scalability,
    fig10_lookup_time,
    fig11_disaggregation,
    fig12_tensorflow,
    fig13_training_accuracy,
)
from .report import format_quantity, render_figure, render_headline
from .workloads import Result

__all__ = [
    "FigureResult",
    "Result",
    "fig01_size_distribution",
    "fig06_single_node_throughput",
    "fig07a_core_scaling",
    "fig07b_compute_overlap",
    "fig08_throughput_16_nodes",
    "fig09_scalability",
    "fig10_lookup_time",
    "fig11_disaggregation",
    "fig12_tensorflow",
    "fig13_training_accuracy",
    "render_figure",
    "render_headline",
    "format_quantity",
]
