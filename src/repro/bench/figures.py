"""One driver per paper figure.

Each ``figNN`` function runs its experiment at (scaled) paper
parameters and returns a :class:`FigureResult` with the same series the
paper plots plus the paper's headline numbers for side-by-side
comparison.  The ``benchmarks/`` directory wires these into
pytest-benchmark targets; ``repro.bench.report`` renders them.

``scale < 1.0`` shrinks workload sizes proportionally (used by the test
suite); the benchmarks run at ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from ..data import imagenet_like, imdb_like
from ..hw.platform import KB, MB
from ..sim import rng as sim_rng
from ..train import run_accuracy_experiment
from . import workloads as W

__all__ = [
    "FigureResult",
    "fig01_size_distribution",
    "fig06_single_node_throughput",
    "fig07a_core_scaling",
    "fig07b_compute_overlap",
    "fig08_throughput_16_nodes",
    "fig09_scalability",
    "fig10_lookup_time",
    "fig11_disaggregation",
    "fig12_tensorflow",
    "fig13_training_accuracy",
]

SMALL_SIZES = (512, 4 * KB)
LARGE_SIZES = (16 * KB, 128 * KB, 1 * MB)
ALL_SIZES = SMALL_SIZES + LARGE_SIZES
NODE_COUNTS = (2, 4, 8, 16)


@dataclass
class FigureResult:
    """Series + paper reference points for one figure."""

    figure: str
    title: str
    #: x-axis label and the plotted unit.
    x_label: str
    y_label: str
    #: series name -> {x: y}.
    series: dict[str, dict] = field(default_factory=dict)
    #: Headline comparisons: description -> (paper value, measured value).
    headline: dict[str, tuple] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def ratio(self, numerator: str, denominator: str, x) -> float:
        return self.series[numerator][x] / self.series[denominator][x]

    def mean_ratio(self, numerator: str, denominator: str, xs) -> float:
        return float(
            np.mean([self.ratio(numerator, denominator, x) for x in xs])
        )


def _n(count: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(count * scale)))


# ---------------------------------------------------------------------------
def fig01_size_distribution(num_samples: int = 200_000, seed: int = 1) -> FigureResult:
    """Fig 1: sample-size CDFs for ImageNet-like and IMDB-like datasets."""
    result = FigureResult(
        figure="fig01",
        title="Sample size distribution for different datasets",
        x_label="sample size (bytes)",
        y_label="CDF",
    )
    grid = np.unique(np.logspace(1.5, 7, 60).astype(np.int64))
    for name, dist in (("ImageNet", imagenet_like()), ("IMDB", imdb_like())):
        sizes = dist.sample(sim_rng("fig01.cdf", seed), num_samples)
        cdf = np.searchsorted(np.sort(sizes), grid, side="right") / num_samples
        result.series[name] = {int(x): float(c) for x, c in zip(grid, cdf)}
    img = imagenet_like().sample(sim_rng("fig01.imagenet", seed), num_samples)
    imdb = imdb_like().sample(sim_rng("fig01.imdb", seed), num_samples)
    result.headline["ImageNet: fraction of samples <= 147 KB"] = (
        0.75, float((img <= 147 * KB).mean())
    )
    result.headline["IMDB: fraction of samples <= 1.6 KB"] = (
        0.75, float((imdb <= 1.6 * KB).mean())
    )
    return result


# ---------------------------------------------------------------------------
def fig06_single_node_throughput(
    sizes: tuple = ALL_SIZES, scale: float = 1.0
) -> FigureResult:
    """Fig 6: random-read sample throughput on the single real NVMe device."""
    result = FigureResult(
        figure="fig06",
        title="Random read sample throughput on single node",
        x_label="sample size (bytes)",
        y_label="samples/s",
    )
    batches = _n(40, scale, 8)
    reads = _n(250, scale, 40)
    mc_threads = 10
    for series in ("Ext4-Base", "Ext4-MC", "DLFS-Base", "DLFS"):
        result.series[series] = {}
    for size in sizes:
        result.series["Ext4-Base"][size] = W.ext4_single_node(
            size, threads=1, reads_per_thread=reads
        ).sample_throughput
        result.series["Ext4-MC"][size] = W.ext4_single_node(
            size, threads=mc_threads, reads_per_thread=max(reads // 2, 30)
        ).sample_throughput
        result.series["DLFS-Base"][size] = W.dlfs_single_node(
            size, mode="none", batches=max(batches // 3, 4)
        ).sample_throughput
        result.series["DLFS"][size] = W.dlfs_single_node(
            size, mode="chunk", batches=batches
        ).sample_throughput

    small = [s for s in sizes if s <= 4 * KB]
    big = [s for s in sizes if s >= 16 * KB]
    if small:
        result.headline["DLFS-Base / Ext4-Base (<=4KB), paper: >= 1.82x"] = (
            1.82, result.mean_ratio("DLFS-Base", "Ext4-Base", small)
        )
        result.headline["DLFS / Ext4-MC (small), paper: 3.35x"] = (
            3.35, result.mean_ratio("DLFS", "Ext4-MC", small)
        )
    if big:
        ratio = result.mean_ratio("Ext4-Base", "DLFS", big)
        result.headline["Ext4-Base vs DLFS (>=16KB), paper: 43.8% lower"] = (
            0.562, ratio  # paper: Ext4-Base = (1 - 0.438) x DLFS
        )
    return result


# ---------------------------------------------------------------------------
def fig07a_core_scaling(
    core_counts: tuple = (1, 2, 3, 4, 6, 8, 10),
    sample_bytes: int = 128 * KB,
    scale: float = 1.0,
) -> FigureResult:
    """Fig 7a: bandwidth vs core count — DLFS saturates with one core."""
    result = FigureResult(
        figure="fig07a",
        title="Core count needed to saturate SSD bandwidth",
        x_label="cores",
        y_label="bandwidth (bytes/s)",
    )
    batches = _n(30, scale, 6)
    reads = _n(150, scale, 30)
    result.series["DLFS"] = {}
    result.series["Ext4"] = {}
    for cores in core_counts:
        result.series["DLFS"][cores] = W.dlfs_single_node(
            sample_bytes, mode="chunk", cores=cores, batches=batches
        ).bandwidth
        result.series["Ext4"][cores] = W.ext4_single_node(
            sample_bytes, threads=cores, reads_per_thread=reads
        ).bandwidth
    peak = 2.4 * 2**30
    result.headline["DLFS @1 core / device peak, paper: saturated"] = (
        1.0, result.series["DLFS"][core_counts[0]] / peak
    )
    ext4_curve = result.series["Ext4"]
    saturating = [
        c for c in core_counts if ext4_curve[c] >= 0.9 * max(ext4_curve.values())
    ]
    result.headline["Ext4 cores to reach ~peak, paper: >= 3"] = (
        3, min(saturating) if saturating else max(core_counts)
    )
    return result


def fig07b_compute_overlap(
    compute_points: tuple = (0.0, 0.25e-3, 0.5e-3, 1e-3, 1.5e-3, 2e-3, 3e-3, 4e-3),
    sizes: tuple = (512, 16 * KB, 128 * KB),
    scale: float = 1.0,
) -> FigureResult:
    """Fig 7b: compute injected into the poll loop before throughput drops."""
    result = FigureResult(
        figure="fig07b",
        title="CPU intensity: overlap of I/O and computation",
        x_label="injected compute per poll loop (s)",
        y_label="relative throughput",
    )
    batches = _n(25, scale, 6)
    for size in sizes:
        curve = {}
        base = None
        for compute in compute_points:
            tput = W.dlfs_single_node(
                size, mode="chunk", batches=batches,
                injected_compute=compute,
            ).sample_throughput
            if base is None:
                base = tput
            curve[compute] = tput / base
        result.series[f"{size}B"] = curve

    def tolerated(curve: dict, threshold: float = 0.90) -> float:
        ok = [c for c, rel in curve.items() if rel >= threshold]
        return max(ok) if ok else 0.0

    if 128 * KB in sizes:
        result.headline["128KB overlap tolerance, paper: ~2 ms"] = (
            2e-3, tolerated(result.series[f"{128 * KB}B"])
        )
        if 16 * KB in sizes:
            result.headline["16KB tolerance < 128KB tolerance (paper: yes)"] = (
                True,
                tolerated(result.series[f"{16 * KB}B"])
                < tolerated(result.series[f"{128 * KB}B"]),
            )
        if 512 in sizes:
            result.headline[
                "512B tolerance / 128KB tolerance, paper: ~1 (chunk batching)"
            ] = (
                1.0,
                tolerated(result.series["512B"])
                / max(tolerated(result.series[f"{128 * KB}B"]), 1e-9),
            )
    result.notes.append(
        "512B divergence: the paper's poll loop blocks on a batch of "
        "chunk-size requests, so tiny samples inherit the chunk batch's "
        "I/O window; our reader prefetches chunks across bread() calls, "
        "making 512B delivery CPU-bound — added compute subtracts "
        "directly.  128KB/16KB tolerances match the paper."
    )
    return result


# ---------------------------------------------------------------------------
def fig08_throughput_16_nodes(
    sizes: tuple = ALL_SIZES, num_nodes: int = 16, scale: float = 1.0
) -> FigureResult:
    """Fig 8: aggregated random-read throughput over 16 nodes."""
    result = FigureResult(
        figure="fig08",
        title=f"Aggregated read throughput over {num_nodes} nodes",
        x_label="sample size (bytes)",
        y_label="samples/s (aggregate)",
    )
    reads = _n(200, scale, 40)
    for series in ("DLFS", "Octopus", "Ext4"):
        result.series[series] = {}
    for size in sizes:
        # Small samples need longer runs so steady state spans many
        # 256 KB chunks (one chunk holds hundreds of tiny samples).
        batches = _n(80 if size <= 4 * KB else 20, scale, 5)
        result.series["DLFS"][size] = W.dlfs_multi_node(
            num_nodes, size, batches_per_node=batches
        ).sample_throughput
        result.series["Octopus"][size] = W.octopus_multi_node(
            num_nodes, size, reads_per_node=max(reads // 2, 25)
        ).sample_throughput
        result.series["Ext4"][size] = W.ext4_multi_node(
            num_nodes, size, reads_per_node=reads
        ).sample_throughput
    small = [s for s in sizes if s <= 4 * KB]
    big = [s for s in sizes if s >= 16 * KB]
    if small:
        result.headline["DLFS / Ext4 (small), paper: 9.72x"] = (
            9.72, result.mean_ratio("DLFS", "Ext4", small)
        )
        result.headline["DLFS / Octopus (small), paper: 6.05x"] = (
            6.05, result.mean_ratio("DLFS", "Octopus", small)
        )
    if big:
        result.headline["DLFS / Ext4 (>=16KB), paper: 1.31x"] = (
            1.31, result.mean_ratio("DLFS", "Ext4", big)
        )
        result.headline["DLFS / Octopus (>=16KB), paper: 1.12x"] = (
            1.12, result.mean_ratio("DLFS", "Octopus", big)
        )
    return result


# ---------------------------------------------------------------------------
def fig09_scalability(
    node_counts: tuple = NODE_COUNTS,
    sizes: tuple = (512, 128 * KB),
    scale: float = 1.0,
) -> FigureResult:
    """Fig 9: aggregated throughput versus node count."""
    result = FigureResult(
        figure="fig09",
        title="Aggregated throughput on networked NVMe devices",
        x_label="nodes",
        y_label="samples/s (aggregate)",
    )
    reads = _n(200, scale, 40)
    for size in sizes:
        batches = _n(80 if size <= 4 * KB else 20, scale, 5)
        for system in ("DLFS", "Octopus", "Ext4"):
            result.series[f"{system}@{size}B"] = {}
        for n in node_counts:
            result.series[f"DLFS@{size}B"][n] = W.dlfs_multi_node(
                n, size, batches_per_node=batches
            ).sample_throughput
            result.series[f"Octopus@{size}B"][n] = W.octopus_multi_node(
                n, size, reads_per_node=max(reads // 2, 25)
            ).sample_throughput
            result.series[f"Ext4@{size}B"][n] = W.ext4_multi_node(
                n, size, reads_per_node=reads
            ).sample_throughput

    if 512 in sizes:
        result.headline["DLFS / Ext4 @512B (mean), paper: 28.45x"] = (
            28.45, result.mean_ratio("DLFS@512B", "Ext4@512B", node_counts)
        )
        result.headline["DLFS / Octopus @512B (mean), paper: 104.38x"] = (
            104.38, result.mean_ratio("DLFS@512B", "Octopus@512B", node_counts)
        )
        dlfs = result.series["DLFS@512B"]
        linearity = (dlfs[node_counts[-1]] / dlfs[node_counts[0]]) / (
            node_counts[-1] / node_counts[0]
        )
        result.headline["DLFS @512B scaling linearity, paper: ~1.0"] = (
            1.0, linearity
        )
    big = 128 * KB
    if big in sizes:
        result.headline["DLFS / Ext4 @128KB (mean), paper: 1.651x"] = (
            1.651, result.mean_ratio(f"DLFS@{big}B", f"Ext4@{big}B", node_counts)
        )
        result.headline["DLFS / Octopus @128KB (mean), paper: 1.37x"] = (
            1.37, result.mean_ratio(f"DLFS@{big}B", f"Octopus@{big}B", node_counts)
        )
    return result


# ---------------------------------------------------------------------------
def fig10_lookup_time(
    node_counts: tuple = NODE_COUNTS,
    sizes: tuple = (512, 128 * KB),
    total_samples: int = 1_000_000,
    scale: float = 1.0,
) -> FigureResult:
    """Fig 10: total sample-lookup time for 1 M samples."""
    result = FigureResult(
        figure="fig10",
        title="Sample lookup time of DLFS on NVMe devices (1M samples)",
        x_label="nodes",
        y_label="total lookup time (s)",
    )
    total = max(int(total_samples * scale), 20_000)
    measured = _n(1200, scale, 150)
    for size in sizes:
        for system in ("DLFS", "Ext4", "Octopus"):
            result.series[f"{system}@{size}B"] = {}
        for n in node_counts:
            result.series[f"DLFS@{size}B"][n] = W.dlfs_lookup_time(
                n, total_samples=total, sample_bytes=size,
                measured_lookups_per_node=measured,
            )
            result.series[f"Ext4@{size}B"][n] = W.ext4_open_time(
                n, total_samples=total, sample_bytes=size,
                measured_opens_per_node=max(measured // 3, 50),
            )
            result.series[f"Octopus@{size}B"][n] = W.octopus_lookup_time(
                n, total_samples=total, sample_bytes=size,
                measured_lookups_per_node=max(measured // 3, 50),
            )
    size = sizes[0]
    n0, n1 = node_counts[0], node_counts[-1]
    result.headline["Ext4 / DLFS lookup, paper: ~2 orders of magnitude"] = (
        100.0,
        result.series[f"Ext4@{size}B"][n0] / result.series[f"DLFS@{size}B"][n0],
    )
    result.headline["Octopus is the slowest, paper: yes"] = (
        True,
        result.series[f"Octopus@{size}B"][n0]
        > result.series[f"Ext4@{size}B"][n0],
    )
    dlfs_scaling = result.series[f"DLFS@{size}B"][n0] / result.series[
        f"DLFS@{size}B"
    ][n1]
    result.headline["DLFS lookup-time speedup 2->16 nodes, paper: ~8x"] = (
        n1 / n0, dlfs_scaling
    )
    return result


# ---------------------------------------------------------------------------
def fig11_disaggregation(
    device_counts: tuple = (1, 2, 4, 8, 16),
    sample_bytes: int = 128 * KB,
    scale: float = 1.0,
) -> FigureResult:
    """Fig 11: effective throughput on disaggregated NVMe devices."""
    result = FigureResult(
        figure="fig11",
        title="Effective throughput on disaggregated NVMe devices",
        x_label="NVMe devices",
        y_label="samples/s",
    )
    batches = _n(25, scale, 6)
    for series in ("DLFS-1C", "DLFS-16C", "NVMe-1C", "NVMe-16C"):
        result.series[series] = {}
    for d in device_counts:
        result.series["DLFS-1C"][d] = W.dlfs_disaggregated(
            d, 1, sample_bytes, batches_per_client=batches * 2
        ).sample_throughput
        result.series["DLFS-16C"][d] = W.dlfs_disaggregated(
            d, 16, sample_bytes, batches_per_client=batches
        ).sample_throughput
        result.series["NVMe-1C"][d] = W.ideal_disaggregated_throughput(
            d, 1, sample_bytes
        )
        result.series["NVMe-16C"][d] = W.ideal_disaggregated_throughput(
            d, 16, sample_bytes
        )
    one_client_eff = np.mean(
        [
            result.series["DLFS-1C"][d] / result.series["NVMe-1C"][d]
            for d in device_counts
        ]
    )
    sixteen_eff = np.mean(
        [
            result.series["DLFS-16C"][d] / result.series["NVMe-16C"][d]
            for d in device_counts
        ]
    )
    result.headline["DLFS-1C / ideal, paper: 93.4%"] = (0.934, float(one_client_eff))
    result.headline["DLFS-16C / ideal, paper: up to 88%"] = (0.88, float(sixteen_eff))
    return result


# ---------------------------------------------------------------------------
def fig12_tensorflow(
    node_counts: tuple = NODE_COUNTS,
    sizes: tuple = (512, 128 * KB),
    scale: float = 1.0,
) -> FigureResult:
    """Fig 12: TensorFlow ingest throughput over each file system."""
    result = FigureResult(
        figure="fig12",
        title="Aggregated throughput for TensorFlow on top of DLFS",
        x_label="nodes",
        y_label="samples/s (aggregate)",
    )
    batches = _n(15, scale, 4)
    for size in sizes:
        for system in ("DLFS-TF", "Octopus-TF", "Ext4-TF"):
            result.series[f"{system}@{size}B"] = {}
        for n in node_counts:
            for system, tag in (("dlfs", "DLFS-TF"), ("octopus", "Octopus-TF"),
                                ("ext4", "Ext4-TF")):
                result.series[f"{tag}@{size}B"][n] = W.tf_ingest_throughput(
                    system, n, size, batches_per_node=batches
                ).sample_throughput
    if 512 in sizes:
        result.headline["DLFS-TF / Octopus-TF @512B, paper: 29.93x"] = (
            29.93,
            result.mean_ratio("DLFS-TF@512B", "Octopus-TF@512B", node_counts),
        )
        result.headline["DLFS-TF / Ext4-TF @512B, paper: 102.07x"] = (
            102.07,
            result.mean_ratio("DLFS-TF@512B", "Ext4-TF@512B", node_counts),
        )
    big = 128 * KB
    if big in sizes:
        result.headline["DLFS-TF / Octopus-TF @128KB, paper: 1.25x"] = (
            1.25,
            result.mean_ratio(f"DLFS-TF@{big}B", f"Octopus-TF@{big}B", node_counts),
        )
        result.headline["DLFS-TF / Ext4-TF @128KB, paper: 1.614x"] = (
            1.614,
            result.mean_ratio(f"DLFS-TF@{big}B", f"Ext4-TF@{big}B", node_counts),
        )
    return result


# ---------------------------------------------------------------------------
def fig13_training_accuracy(
    epochs: int = 100,
    num_samples: int = 5000,
    scale: float = 1.0,
    seed: int = 0,
) -> FigureResult:
    """Fig 13: validation accuracy, Full_Rand vs DLFS-determined order."""
    result = FigureResult(
        figure="fig13",
        title="Training accuracy with the CIFAR10-like dataset",
        x_label="epoch",
        y_label="validation accuracy",
    )
    epochs = _n(epochs, scale, 10)
    num_samples = _n(num_samples, scale, 500)
    cmp = run_accuracy_experiment(
        num_samples=num_samples, epochs=epochs,
        class_separation=0.75, seed=seed,
    )
    result.series["Full_Rand"] = {
        int(e): float(a)
        for e, a in zip(cmp.full_rand.epochs, cmp.full_rand.val_accuracy)
    }
    result.series["DLFS"] = {
        int(e): float(a)
        for e, a in zip(cmp.dlfs.epochs, cmp.dlfs.val_accuracy)
    }
    result.headline["final accuracy gap (Full_Rand - DLFS), paper: ~0"] = (
        0.0, cmp.final_gap
    )
    result.headline["max tail-epoch gap, paper: no observable difference"] = (
        0.0, cmp.max_epoch_gap
    )
    return result
