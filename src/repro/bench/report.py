"""Plain-text rendering of figure results.

The benchmark targets print these tables so a run of
``pytest benchmarks/ --benchmark-only`` regenerates every figure's data
as readable rows (series per column) plus the paper-vs-measured
headline block.
"""

from __future__ import annotations

from typing import Iterable

from .figures import FigureResult

__all__ = [
    "render_figure",
    "render_headline",
    "render_metrics_summary",
    "format_quantity",
]


def format_quantity(value) -> str:
    """Human-scale numbers: 1.23M, 45.6K, 0.0123, True/False."""
    if isinstance(value, bool):
        return str(value)
    if not isinstance(value, (int, float)):
        return str(value)
    v = float(value)
    if v == 0.0:
        return "0"
    a = abs(v)
    if a >= 1e9:
        return f"{v / 1e9:.3g}G"
    if a >= 1e6:
        return f"{v / 1e6:.3g}M"
    if a >= 1e3:
        return f"{v / 1e3:.3g}K"
    if a >= 1:
        return f"{v:.4g}"
    if a >= 1e-3:
        return f"{v * 1e3:.3g}m"
    return f"{v * 1e6:.3g}u"


def render_figure(result: FigureResult, max_rows: int = 40) -> str:
    """Figure data as an aligned table: one row per x, one column per series."""
    lines = [
        f"== {result.figure}: {result.title} ==",
        f"   ({result.x_label} vs {result.y_label})",
    ]
    names = list(result.series)
    xs: list = sorted({x for s in result.series.values() for x in s})
    if len(xs) > max_rows:
        stride = -(-len(xs) // max_rows)
        xs = xs[::stride]
    header = [result.x_label] + names
    rows = [header]
    for x in xs:
        row = [format_quantity(x)]
        for name in names:
            value = result.series[name].get(x)
            row.append("-" if value is None else format_quantity(value))
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    if result.headline:
        lines.append("")
        lines.append(render_headline(result))
    if result.notes:
        lines.extend(f"note: {n}" for n in result.notes)
    return "\n".join(lines)


def render_headline(result: FigureResult) -> str:
    """The paper-vs-measured comparison block."""
    lines = ["-- paper vs measured --"]
    for desc, (paper, measured) in result.headline.items():
        lines.append(
            f"  {desc}: paper={format_quantity(paper)} "
            f"measured={format_quantity(measured)}"
        )
    return "\n".join(lines)


def render_many(results: Iterable[FigureResult]) -> str:
    return "\n\n".join(render_figure(r) for r in results)


def render_metrics_summary(dump: dict) -> str:
    """Summarize a :meth:`repro.obs.MetricsRegistry.dump` JSON object.

    Works on the in-memory dict or one reloaded from ``metrics.json``,
    so benchmark reports can fold a prior observed run's metrics in.
    """
    if not dump:
        return "-- metrics: (none recorded) --"
    lines = [f"-- metrics @ t={dump.get('now', 0.0):.6g}s --"]
    for name, value in sorted(dump.get("counters", {}).items()):
        lines.append(f"  counter  {name:<34} {format_quantity(value)}")
    for name, h in sorted(dump.get("histograms", {}).items()):
        lines.append(
            f"  hist     {name:<34} n={h['count']} "
            f"p50={format_quantity(h['p50'])}s p99={format_quantity(h['p99'])}s"
        )
    for name, stages in sorted(dump.get("layers", {}).items()):
        busy = sum(stages.values())
        lines.append(f"  layers   {name:<34} busy={format_quantity(busy)}s")
    snapshots = dump.get("snapshots", [])
    if snapshots:
        lines.append(f"  snapshots {len(snapshots)} points")
    return "\n".join(lines)
