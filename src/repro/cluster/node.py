"""Compute nodes and the cluster container.

A :class:`Node` bundles the per-host hardware (cores, NIC, hugepage
pool, zero or more NVMe devices); a :class:`Cluster` owns the fabric and
the node set.  File systems and applications are layered on top and
never talk to raw hardware except through these objects.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..errors import ConfigError
from ..hw import CPU, Fabric, HugePagePool, NVMeDevice, Testbed
from ..hw.memory import chunk_quotas
from ..sim import Environment

__all__ = ["Node", "Cluster", "fluid_lane_stages"]


def fluid_lane_stages(nvme=None, network=None, chunk_bytes: int = 256 * 1024):
    """``(name, bytes/s)`` fluid service stages for one storage lane.

    The hybrid-fidelity engine (:mod:`repro.sim.fluid`) models a lane as
    a rate-balanced pipeline; this is the storage half: the NVMe read
    stream feeding the chunked fabric link.  Rates come from the same
    hardware specs the event-accurate models use, so the fluid
    bottleneck is the one the per-event lane would saturate.
    """
    from ..hw.platform import NetworkSpec, NVMeSpec
    from ..xform.transfer import fabric_fluid_rate
    nvme = nvme or NVMeSpec()
    network = network or NetworkSpec()
    return (
        ("nvme", float(nvme.read_bandwidth)),
        ("fabric", fabric_fluid_rate(
            network.bandwidth, chunk_bytes, network.propagation_latency)),
    )


class Node:
    """One compute node: cores, NIC, hugepage pool, local NVMe devices."""

    def __init__(self, cluster: "Cluster", index: int) -> None:
        testbed = cluster.testbed
        self.cluster = cluster
        self.env = cluster.env
        self.index = index
        self.name = f"node{index}"
        self.cpu = CPU(cluster.env, testbed.cpu, node_name=self.name)
        self.nic = cluster.fabric.attach(self.name)
        self.hugepages = HugePagePool(
            cluster.env,
            total_bytes=testbed.hugepage_bytes,
            chunk_size=cluster.hugepage_chunk_size,
            name=f"{self.name}.hugepages",
        )
        self.devices: list[NVMeDevice] = []

    def add_device(self, device: Optional[NVMeDevice] = None) -> NVMeDevice:
        """Attach an NVMe device (created from the testbed spec by default)."""
        if device is None:
            device = NVMeDevice(
                self.env,
                self.cluster.testbed.nvme,
                name=f"{self.name}.nvme{len(self.devices)}",
            )
        self.devices.append(device)
        return device

    def chunk_quota(self, share: float) -> int:
        """Hugepage-chunk quota for a fractional cache share (>= 1 chunk).

        Used by the tenancy partition to turn a per-tenant ``cache_share``
        into an absolute chunk count against this node's pool.  For a set
        of tenants use :meth:`chunk_quotas`, which additionally rejects
        share sets whose summed quotas oversubscribe the pool.
        """
        return chunk_quotas(self.hugepages.num_chunks, {"_": share})["_"]

    def chunk_quotas(self, shares: dict[str, float]) -> dict[str, int]:
        """Per-tenant chunk quotas; raises ConfigError on oversubscription."""
        return chunk_quotas(self.hugepages.num_chunks, shares)

    @property
    def device(self) -> NVMeDevice:
        """The node's single device; raises if there are zero or many."""
        if len(self.devices) != 1:
            raise ConfigError(
                f"{self.name} has {len(self.devices)} devices; "
                "use .devices for multi-device nodes"
            )
        return self.devices[0]

    def __repr__(self) -> str:
        return f"<Node {self.name!r} devices={len(self.devices)}>"


class Cluster:
    """A set of nodes joined by one RDMA fabric.

    ``devices_per_node`` attaches that many NVMe devices (testbed spec)
    to every node; pass 0 and call :meth:`Node.add_device` selectively to
    model the paper's single-real-SSD topology.
    """

    def __init__(
        self,
        env: Environment,
        testbed: Optional[Testbed] = None,
        num_nodes: int = 1,
        devices_per_node: int = 1,
        hugepage_chunk_size: int = 256 * 1024,
    ) -> None:
        if num_nodes < 1:
            raise ConfigError("cluster needs at least one node")
        if devices_per_node < 0:
            raise ConfigError("devices_per_node must be >= 0")
        self.env = env
        self.testbed = testbed or Testbed.paper()
        self.testbed.validate()
        self.hugepage_chunk_size = hugepage_chunk_size
        self.fabric = Fabric(env, self.testbed.network)
        self.nodes = [Node(self, i) for i in range(num_nodes)]
        for node in self.nodes:
            for _ in range(devices_per_node):
                node.add_device()

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def node(self, index: int) -> Node:
        if not 0 <= index < len(self.nodes):
            raise ConfigError(f"node index {index} out of range")
        return self.nodes[index]

    def all_devices(self) -> list[NVMeDevice]:
        """Every NVMe device in the cluster, node order."""
        return [d for n in self.nodes for d in n.devices]

    def __repr__(self) -> str:
        return (
            f"<Cluster {len(self.nodes)} nodes, "
            f"{len(self.all_devices())} NVMe devices>"
        )
