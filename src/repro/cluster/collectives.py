"""Collective communication over the simulated fabric.

DLFS builds its replicated sample directory with one allgather at mount
time (§III-B2 of the paper).  These helpers implement the classic
algorithms as *actual simulated transfers*, so collective cost scales
with node count and payload exactly as on a real fabric:

* ``barrier``     — dissemination barrier, ceil(log2 P) rounds.
* ``broadcast``   — binomial tree.
* ``allgather``   — ring algorithm, P-1 steps of one segment each.

The API mirrors mpi4py's lowercase methods: values are arbitrary Python
objects, and the caller supplies the on-wire size of each payload (the
simulation does not serialize objects).
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from ..errors import ConfigError
from ..obs import NULL_TRACER
from ..sim import Event
from .node import Cluster

__all__ = ["Communicator"]

#: On-wire size of a zero-payload control message (header only).
CONTROL_MSG_BYTES = 64


class Communicator:
    """A communicator over all nodes of a cluster (MPI_COMM_WORLD-style)."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.size = len(cluster)
        #: Observability (null object until install_observability).
        self.tracer = NULL_TRACER

    def install_observability(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle."""
        self.tracer = obs.tracer

    # -- internals ----------------------------------------------------------
    def _name(self, rank: int) -> str:
        if not 0 <= rank < self.size:
            raise ConfigError(f"rank {rank} out of range (size {self.size})")
        return self.cluster.node(rank).name

    def _send(self, src: int, dst: int, nbytes: int) -> Generator[Event, Any, None]:
        yield from self.cluster.fabric.transfer(
            self._name(src), self._name(dst), max(nbytes, CONTROL_MSG_BYTES)
        )

    # -- collectives -----------------------------------------------------------
    def barrier(self) -> Generator[Event, Any, None]:
        """Dissemination barrier: ceil(log2 P) rounds of control messages."""
        if self.size == 1:
            return
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "barrier", track="cluster", cat="collective", ranks=self.size
            )
        round_dist = 1
        while round_dist < self.size:
            transfers = [
                self.env.process(
                    self._send(rank, (rank + round_dist) % self.size, 0),
                    name=f"barrier.r{round_dist}.{rank}",
                )
                for rank in range(self.size)
            ]
            yield self.env.all_of(transfers)
            round_dist *= 2
        if span is not None:
            span.finish()

    def broadcast(
        self, root: int, value: Any, nbytes: int
    ) -> Generator[Event, Any, list[Any]]:
        """Binomial-tree broadcast; returns the value as seen by each rank."""
        self._name(root)  # validate
        if self.size == 1:
            return [value]
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "broadcast", track="cluster", cat="collective",
                ranks=self.size, nbytes=nbytes,
            )
        # Ranks relative to root: rank 0 holds the data initially.
        have = {0}
        dist = 1
        while dist < self.size:
            transfers = []
            senders = [r for r in sorted(have) if r + dist < self.size]
            for rel in senders:
                peer = rel + dist
                if peer in have:
                    continue
                src = (root + rel) % self.size
                dst = (root + peer) % self.size
                transfers.append(
                    self.env.process(
                        self._send(src, dst, nbytes), name=f"bcast.{src}->{dst}"
                    )
                )
                have.add(peer)
            if transfers:
                yield self.env.all_of(transfers)
            dist *= 2
        if span is not None:
            span.finish()
        return [value] * self.size

    def allgather(
        self, values: Sequence[Any], nbytes_each: Sequence[int]
    ) -> Generator[Event, Any, list[list[Any]]]:
        """Ring allgather.

        ``values[r]`` is rank r's contribution, ``nbytes_each[r]`` its
        on-wire size.  Returns ``gathered`` where ``gathered[r]`` is the
        full list (rank order) as assembled at rank r — identical
        everywhere, but returned per-rank to mirror the MPI API.
        """
        if len(values) != self.size or len(nbytes_each) != self.size:
            raise ConfigError(
                f"allgather needs exactly {self.size} contributions, "
                f"got {len(values)}"
            )
        if self.size == 1:
            return [list(values)]
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "allgather", track="cluster", cat="collective",
                ranks=self.size, nbytes=int(sum(nbytes_each)),
            )
        # Ring: in step s, rank r sends segment (r - s) mod P to rank r+1.
        for step in range(self.size - 1):
            transfers = []
            for rank in range(self.size):
                segment = (rank - step) % self.size
                dst = (rank + 1) % self.size
                transfers.append(
                    self.env.process(
                        self._send(rank, dst, nbytes_each[segment]),
                        name=f"allgather.s{step}.{rank}",
                    )
                )
            yield self.env.all_of(transfers)
        if span is not None:
            span.finish()
        return [list(values) for _ in range(self.size)]

    def __repr__(self) -> str:
        return f"<Communicator size={self.size}>"
