"""The replicated cluster serving tier.

PR 1-5 built one user-level storage stack per node; this module turns
the :class:`~repro.cluster.Cluster` container into a *serving fleet*:

* :class:`ClusterSpec` — the pay-for-use switch.  ``replicas=1`` with
  the balancer off (``is_flat``) makes DLFS construct the exact
  single-node datapath of previous PRs, bit-identically.
* :class:`ClusterState` — shared placement/liveness view: the
  :class:`~repro.cluster.hashring.ShardMap`, per-(shard, lane) device
  base offsets (replica co-hosting packs several shards onto one
  device), and the standby registrations produced by shard handoff.
* :class:`FrontEndBalancer` — per-client router: shard → live replica,
  preferring lanes whose node read cache already holds the span, then
  least-loaded, with a deterministic lane-id tie-break.  The residency
  peek stands in for the residency gossip a real fleet would run.
* :class:`NodeReadCache` — per-node serving cache (hugepage chunks,
  accounted in a :class:`~repro.hw.memory.ChunkLedger`); crash drops it
  (empty ledger on rejoin) and re-warm replays the pre-crash journal.
* :class:`ClusterLifecycle` — drives the seeded
  :attr:`FaultPlan.node_crashes` schedule: crash (target wedges, client
  qpairs torn down), shard handoff to a ring standby, rejoin (qpairs
  reconnect) and background cache re-warm.
* :class:`ClusterRuntime` — the minimal tenant runtime the traffic
  engine needs to drive live multi-tenant load through a balanced
  reactor (per-tenant SLO accounting, no SFQ/admission — the balancer
  is the arbiter in cluster mode).

Module-level imports stay below ``core``/``tenancy`` so the reader can
import the lifecycle messages without a cycle.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..hw.memory import ChunkLedger
from ..spdk.request import align_up

__all__ = [
    "ClusterSpec",
    "ClusterState",
    "FrontEndBalancer",
    "NodeReadCache",
    "ClusterLifecycle",
    "ClusterRuntime",
    "NodeDown",
    "NodeUp",
    "fluid_bulk_shares",
]


def fluid_bulk_shares(lanes: int, weights=None) -> tuple:
    """Per-lane traffic fractions of the balancer's fluid model.

    The front-end balancer spreads steady-state bulk load evenly over
    live lanes (its residency/least-loaded preferences matter per
    request, not in aggregate), so the hybrid-fidelity engine charges
    each lane ``1/lanes`` of the cohort envelope — or a normalized
    ``weights`` vector when lanes are heterogeneous.
    """
    if lanes < 1:
        raise ConfigError(f"fluid_bulk_shares: lanes={lanes} < 1")
    if weights is None:
        return tuple(1.0 / lanes for _ in range(lanes))
    if len(weights) != lanes or any(w < 0 for w in weights):
        raise ConfigError("weights must be one non-negative value per lane")
    total = float(sum(weights))
    if total <= 0:
        raise ConfigError("weights must sum to > 0")
    return tuple(float(w) / total for w in weights)


@dataclass(frozen=True)
class ClusterSpec:
    """Configuration of the replicated serving tier (``config.cluster``)."""

    #: Replication factor R: each shard lives on R distinct nodes.
    replicas: int = 2
    #: Cache-aware front-end routing.  Off with ``replicas=1`` ⇒ the
    #: flat single-lane datapath (bit-identical to no cluster spec).
    balancer: bool = True
    #: Deadline after which a still-pending part is duplicated on
    #: another replica (hedged read); 0 disables hedging.
    hedge_delay: float = 0.0
    #: Crash-detection lag: time between a node dying and clients
    #: learning about it (membership/heartbeat propagation).
    detect_delay: float = 1e-3
    #: Per-node serving-cache capacity in hugepage chunks (0 = none).
    read_cache_chunks: int = 0
    #: Copy a dead node's shards to a ring standby while it is down.
    handoff: bool = True
    #: Handoff copy granularity, bytes.
    handoff_chunk_bytes: int = 1 << 20
    #: Replay the node read cache's journal after a rejoin.
    rewarm: bool = True

    def validate(self) -> None:
        if self.replicas < 1:
            raise ConfigError(
                f"cluster replication factor must be >= 1, got {self.replicas}"
            )
        if self.hedge_delay < 0:
            raise ConfigError(f"hedge_delay must be >= 0, got {self.hedge_delay}")
        if self.detect_delay < 0:
            raise ConfigError(
                f"detect_delay must be >= 0, got {self.detect_delay}"
            )
        if self.read_cache_chunks < 0:
            raise ConfigError(
                f"read_cache_chunks must be >= 0, got {self.read_cache_chunks}"
            )
        if self.handoff_chunk_bytes < 512 or self.handoff_chunk_bytes % 512:
            raise ConfigError(
                "handoff_chunk_bytes must be a positive multiple of 512"
            )

    @property
    def is_flat(self) -> bool:
        """No replication, no routing: the single-node datapath."""
        return self.replicas == 1 and not self.balancer


class NodeDown:
    """Reactor inbox message: lane's node crashed (detection instant)."""

    __slots__ = ("lane",)

    def __init__(self, lane: int) -> None:
        self.lane = lane


class NodeUp:
    """Reactor inbox message: lane's node rejoined the fleet."""

    __slots__ = ("lane",)

    def __init__(self, lane: int) -> None:
        self.lane = lane


class NodeReadCache:
    """Server-side read cache on one storage node.

    LRU over served ``(device_offset, nbytes)`` spans; capacity is
    accounted in a :class:`ChunkLedger` so a crash demonstrably resets
    the ledger (the rejoin-from-empty-ledger case) and re-warm recharges
    it.  A hit lets :meth:`NVMeoFTarget.serve_read` skip the device
    read entirely.
    """

    def __init__(self, name: str, capacity_chunks: int, chunk_size: int) -> None:
        if capacity_chunks < 1:
            raise ConfigError("read cache needs at least one chunk")
        if chunk_size < 1:
            raise ConfigError("read cache chunk_size must be >= 1")
        self.name = name
        self.capacity_chunks = capacity_chunks
        self.chunk_size = chunk_size
        self.ledger = ChunkLedger()
        self.ledger.set_quota(name, capacity_chunks)
        #: (offset, nbytes) -> chunk count, LRU order (oldest first).
        self._lru: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.crashes = 0
        #: Spans resident at the last crash — the re-warm worklist.
        self.journal: tuple = ()
        self.rewarmed_chunks = 0

    def _chunks(self, nbytes: int) -> int:
        return -(-nbytes // self.chunk_size)

    @property
    def used_chunks(self) -> int:
        return self.ledger.used(self.name)

    def peek(self, offset: int, nbytes: int) -> bool:
        """Residency check without LRU side effects (balancer routing)."""
        return (offset, nbytes) in self._lru

    def lookup(self, offset: int, nbytes: int) -> bool:
        """Serve-path check: hit bumps LRU, miss counts."""
        key = (offset, nbytes)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, offset: int, nbytes: int) -> bool:
        need = self._chunks(nbytes)
        if need > self.capacity_chunks:
            return False  # oversized span: serve uncached
        key = (offset, nbytes)
        if key in self._lru:
            self._lru.move_to_end(key)
            return True
        while self.used_chunks + need > self.capacity_chunks:
            victim, held = self._lru.popitem(last=False)
            self.ledger.uncharge(self.name, held)
            self.evictions += 1
        self._lru[key] = need
        self.ledger.charge(self.name, need)
        return True

    def crash(self) -> None:
        """Power loss: contents gone, ledger reset, journal kept."""
        self.journal = tuple(self._lru)
        for held in self._lru.values():
            self.ledger.uncharge(self.name, held)
        self._lru.clear()
        self.crashes += 1

    def __repr__(self) -> str:
        return (
            f"<NodeReadCache {self.name!r} "
            f"{self.used_chunks}/{self.capacity_chunks} chunks>"
        )


class ClusterState:
    """Placement, liveness, and replica address translation.

    Shared by every client's balancer and the lifecycle driver, so a
    crash detected once re-routes everyone.  Address translation: all
    shards occupy the *same* layout range ``[base_offset, base_offset +
    shard_bytes)`` on their own device, so co-hosting R shards per
    device requires a per-(shard, lane) base.  Bases are 4096-aligned
    with a guard page between regions; ``delta()`` turns a layout
    offset into that lane's device offset with one addition.
    """

    def __init__(self, shard_map, layout, spec: ClusterSpec) -> None:
        self.shard_map = shard_map
        self.layout = layout
        self.spec = spec
        self.lanes = tuple(shard_map.nodes)
        self.alive = {lane: True for lane in self.lanes}
        #: shard -> handoff standby lane (at most one graft per shard).
        self._standby: dict[int, int] = {}
        self._base: dict[tuple, int] = {}
        self._devend: dict[int, int] = {}
        for lane in self.lanes:
            off = 0
            for s in shard_map.shards_on(lane):
                self._base[(s, lane)] = off
                off += self._stride(s)
            self._devend[lane] = off
        #: lane -> NodeReadCache, populated by DLFS when the spec asks.
        self.read_caches: dict[int, NodeReadCache] = {}

    def _stride(self, shard: int) -> int:
        # Guard page after each region: aligned_span may round a span's
        # start down up to 511 bytes past the region base.
        return align_up(
            self.layout.base_offset + self.layout.shard_bytes(shard), 4096
        ) + 4096

    def delta(self, shard: int, lane: int) -> int:
        """``device_offset = layout_offset + delta(shard, lane)``."""
        return self._base[(shard, lane)] - self.layout.base_offset

    def has_replica(self, shard: int, lane: int) -> bool:
        return (shard, lane) in self._base

    def alive_replicas(self, shard: int) -> list[int]:
        """Routable lanes for a shard: live replicas, then live standby."""
        lanes = [
            lane
            for lane in self.shard_map.replicas_of(shard)
            if self.alive[lane]
        ]
        standby = self._standby.get(shard)
        if standby is not None and self.alive.get(standby, False):
            lanes.append(standby)
        return lanes

    def mark_dead(self, lane: int) -> None:
        self.alive[lane] = False

    def mark_alive(self, lane: int) -> None:
        self.alive[lane] = True

    def graft(self, shard: int, lane: int) -> int:
        """Reserve device address space on ``lane`` for a handoff copy."""
        base = self._devend[lane]
        self._devend[lane] = base + self._stride(shard)
        self._base[(shard, lane)] = base
        return base

    def promote_standby(self, shard: int, lane: int) -> None:
        """Handoff copy finished: the standby becomes routable."""
        self._standby[shard] = lane

    def retire_standbys(self, lane: int) -> None:
        """A replica of these shards rejoined; drop their grafts."""
        for shard in self.shard_map.shards_on(lane):
            self._standby.pop(shard, None)

    def __repr__(self) -> str:
        dead = sorted(l for l in self.lanes if not self.alive[l])
        return f"<ClusterState lanes={len(self.lanes)} dead={dead}>"


class FrontEndBalancer:
    """Per-client shard → replica router (cache-aware, least-loaded)."""

    def __init__(self, state: ClusterState, hedge_delay: float = 0.0) -> None:
        self.state = state
        self.hedge_delay = hedge_delay
        #: Outstanding fetches per lane (this client's view).
        self.loads = {lane: 0 for lane in state.lanes}
        #: Fetches ever routed per lane (render_cluster).
        self.routed = {lane: 0 for lane in state.lanes}
        self.failovers = 0
        self.cache_routed = 0

    # -- liveness / translation ----------------------------------------------
    def is_alive(self, lane: int) -> bool:
        return self.state.alive[lane]

    def delta(self, shard: int, lane: int) -> int:
        return self.state.delta(shard, lane)

    def mark_dead(self, lane: int) -> None:
        self.state.mark_dead(lane)

    def mark_alive(self, lane: int) -> None:
        self.state.mark_alive(lane)

    # -- routing ---------------------------------------------------------------
    def _pick(
        self, shard: int, offset: int, nbytes: int, exclude: Optional[int]
    ) -> Optional[int]:
        cands = [
            lane
            for lane in self.state.alive_replicas(shard)
            if lane != exclude
        ]
        if not cands:
            return None
        caches = self.state.read_caches
        if caches:
            resident = []
            for lane in cands:
                rc = caches.get(lane)
                if rc is None:
                    continue
                first = min(rc.chunk_size, nbytes)
                if rc.peek(offset + self.state.delta(shard, lane), first):
                    resident.append(lane)
            if resident:
                self.cache_routed += 1
                cands = resident
        return min(cands, key=lambda lane: (self.loads[lane], lane))

    def route(self, fetch) -> int:
        """Choose the lane for a new fetch (called once, at creation).

        With every replica dead the fetch *parks* on the shard's primary
        lane; it waits in that lane's ready queue until a replica
        returns (shutdown fails parked work via the drain path).
        """
        fetch.done_parts = set()
        fetch.hedged_parts = set()
        lane = self._pick(fetch.shard, fetch.offset, fetch.nbytes, None)
        if lane is None:
            lane = self.state.shard_map.primary(fetch.shard)
        self.loads[lane] += 1
        self.routed[lane] += 1
        return lane

    def reroute(self, fetch) -> bool:
        """Move a fetch off its (dead) lane; False when nowhere to go."""
        lane = self._pick(fetch.shard, fetch.offset, fetch.nbytes, fetch.lane)
        if lane is None:
            return False
        self.loads[fetch.lane] -= 1
        self.loads[lane] += 1
        self.routed[lane] += 1
        fetch.lane = lane
        self.failovers += 1
        return True

    def pick_hedge(self, fetch, exclude: int) -> Optional[int]:
        return self._pick(fetch.shard, fetch.offset, fetch.nbytes, exclude)

    def fetch_done(self, fetch) -> None:
        self.loads[fetch.lane] -= 1

    def __repr__(self) -> str:
        return f"<FrontEndBalancer loads={self.loads}>"


class _RecordingAccounting:
    """TenantAccounting wrapper that also timestamps every completion.

    The crash/rejoin benches need *windowed* latency percentiles (the
    victim window around a crash vs the no-crash baseline); the plain
    accounting only keeps whole-run histograms.
    """

    def __init__(self, inner, env) -> None:
        self._inner = inner
        self._env = env
        #: (t_done, tenant, latency, delivered, failed) per job.
        self.records: list[tuple] = []

    def on_job_done(self, tenant, latency, delivered, failed, nbytes) -> None:
        self.records.append(
            (self._env.now, tenant, latency, delivered, failed)
        )
        self._inner.on_job_done(tenant, latency, delivered, failed, nbytes)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ClusterRuntime:
    """Tenant runtime facade for cluster serving.

    The traffic engine needs ``submit(job) -> bool`` and an
    ``accounting`` with ``on_job_done``; in cluster mode there is no
    SFQ/admission stage (the balancer spreads load), so jobs go straight
    to the reactor and every submission is accepted.
    """

    def __init__(self, env, reactor, specs: tuple = (), registry=None) -> None:
        # Lazy import: tenancy pulls obs/metrics; keep cluster import-light.
        from ..tenancy.slo import TenantAccounting

        self.env = env
        self.reactor = reactor
        self.accounting = _RecordingAccounting(
            TenantAccounting(env, tuple(specs), registry=registry), env
        )

    def submit(self, job) -> bool:
        self.reactor.submit(job)
        return True

    @property
    def records(self) -> list:
        return self.accounting.records


class ClusterLifecycle:
    """Seeded node crash/rejoin driver: failover, handoff, re-warm.

    One process per :attr:`FaultPlan.node_crashes` entry:

    1. ``crash_time``: the target wedges (in-flight service hangs, new
       capsules black-hole) and the node's read cache is lost.
    2. ``+ detect_delay``: every registered reactor gets ``NodeDown``
       (qpair teardown, queued work re-routed) and — when the spec says
       so — each shard hosted by the dead lane is copied from a live
       replica to its ring standby, chunk by chunk over the fabric.
    3. ``rejoin_time``: the target serves again, reactors get
       ``NodeUp`` (qpair rejoin), standby grafts are retired, and the
       read cache re-warms from its journal in the background.

    A rejoin racing an unfinished handoff aborts the copy (checked at
    every chunk boundary) — the crash-during-handoff sanitizer case.
    """

    def __init__(
        self,
        env,
        state: ClusterState,
        spec: ClusterSpec,
        crashes: tuple,
        targets: dict,
        devices: dict,
        fabric,
        injector=None,
        tracer=None,
    ) -> None:
        from ..obs import NULL_TRACER

        self.env = env
        self.state = state
        self.spec = spec
        self.targets = targets
        self.devices = devices
        self.fabric = fabric
        self.injector = injector
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Reactors to notify (clients register themselves).
        self.reactors: list = []
        self.crashes = 0
        self.rejoins = 0
        self.handoffs_started = 0
        self.handoffs_completed = 0
        self.handoffs_aborted = 0
        self.handoff_bytes = 0
        self.rewarms = 0
        #: Shards with a handoff copy in flight.  An aborting handoff only
        #: notices the rejoin at its next chunk boundary; without this guard
        #: a crash of the shard's other replica in that gap would graft the
        #: same (shard, standby) slot twice and the two aborts would race.
        self._handoff_live: set = set()
        for entry in crashes:
            lane, crash_time, rejoin_time = entry
            if lane not in self.state.alive:
                raise ConfigError(
                    f"fault plan crashes node {lane}, which hosts no shards "
                    f"(storage lanes: {sorted(self.state.alive)})"
                )
            env.process(
                self._lifecycle(lane, crash_time, rejoin_time),
                name=f"cluster.crash[{lane}]@{crash_time:g}",
            )

    def register(self, reactor) -> None:
        self.reactors.append(reactor)

    # -- the schedule ----------------------------------------------------------
    def _lifecycle(self, lane: int, crash_time: float, rejoin_time):
        if crash_time > self.env.now:
            yield self.env.timeout(crash_time - self.env.now)
        self._crash(lane)
        if self.spec.detect_delay > 0:
            yield self.env.timeout(self.spec.detect_delay)
        self._detect(lane)
        if rejoin_time is None:
            return
        if rejoin_time > self.env.now:
            yield self.env.timeout(rejoin_time - self.env.now)
        self._rejoin(lane)

    def _crash(self, lane: int) -> None:
        self.crashes += 1
        self.targets[lane].fail()
        rc = self.state.read_caches.get(lane)
        if rc is not None:
            rc.crash()
        if self.injector is not None:
            self.injector.record(self.env.now, f"node{lane}", "node_crash")
        if self.tracer.enabled:
            self.tracer.instant("node_crash", track="cluster", lane=lane)

    def _detect(self, lane: int) -> None:
        self.state.mark_dead(lane)
        for reactor in self.reactors:
            reactor.inbox.put_nowait(NodeDown(lane))
        if self.spec.handoff and self.spec.replicas > 1:
            for shard in self.state.shard_map.shards_on(lane):
                self.env.process(
                    self._handoff(shard, lane),
                    name=f"cluster.handoff[s{shard}<-{lane}]",
                )

    def _rejoin(self, lane: int) -> None:
        self.rejoins += 1
        self.targets[lane].restore()
        self.state.mark_alive(lane)
        self.state.retire_standbys(lane)
        for reactor in self.reactors:
            reactor.inbox.put_nowait(NodeUp(lane))
        if self.injector is not None:
            self.injector.record(self.env.now, f"node{lane}", "node_rejoin")
        if self.tracer.enabled:
            self.tracer.instant("node_rejoin", track="cluster", lane=lane)
        rc = self.state.read_caches.get(lane)
        if rc is not None and self.spec.rewarm and rc.journal:
            self.env.process(
                self._rewarm(lane, rc), name=f"cluster.rewarm[{lane}]"
            )

    # -- shard handoff ---------------------------------------------------------

    #: Every handoff a crash triggers would otherwise start at the crash
    #: instant — their first device commands (and, when two nodes die in
    #: the same tick, their liveness snapshots) would race at identical
    #: timestamps, and same-tick ordering is sanitizer-perturbed.  A
    #: shard-keyed stagger gives each copy its own start instant, after
    #: every same-tick crash event has settled (same idea as the traffic
    #: engine's WORKER_START_STAGGER).
    HANDOFF_START_STAGGER = 100e-9

    def _handoff(self, shard: int, dead_lane: int):
        """Copy a dead lane's shard to its ring standby, chunk by chunk."""
        yield self.env.timeout((shard + 1) * self.HANDOFF_START_STAGGER)
        sources = [
            l
            for l in self.state.shard_map.replicas_of(shard)
            if l != dead_lane and self.state.alive[l]
        ]
        standby = self.state.shard_map.standby(shard)
        if not sources or standby is None or not self.state.alive[standby]:
            return
        if self.state._standby.get(shard) == standby:
            return  # already grafted by an earlier crash
        if shard in self._handoff_live:
            return  # a copy for this shard is already in flight
        self._handoff_live.add(shard)
        src = sources[0]
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "cluster.handoff", track="cluster", cat="cluster",
                shard=shard, src=src, dst=standby,
            )
        self.handoffs_started += 1
        src_base = self.state._base[(shard, src)]
        dst_base = self.state.graft(shard, standby)
        total = align_up(self.state.layout.shard_bytes(shard), 512)
        src_dev = self.devices[src]
        dst_dev = self.devices[standby]
        src_host = self.targets[src].host
        dst_host = self.targets[standby].host
        copied = 0
        while copied < total:
            if self.state.alive[dead_lane]:
                # Rejoin won the race: abort, roll the graft back.
                self.handoffs_aborted += 1
                self._handoff_live.discard(shard)
                del self.state._base[(shard, standby)]
                if span is not None:
                    span.finish(status="aborted_rejoin")
                return
            step = min(self.spec.handoff_chunk_bytes, total - copied)
            step = align_up(step, 512)
            cmd = src_dev.read(src_base + copied, step)
            yield cmd.completion
            yield from self.fabric.transfer(src_host, dst_host, step)
            cmd = dst_dev.write(dst_base + copied, step)
            yield cmd.completion
            copied += step
            self.handoff_bytes += step
        self.state.promote_standby(shard, standby)
        self._handoff_live.discard(shard)
        self.handoffs_completed += 1
        if span is not None:
            span.finish(status="ok")
        if self.injector is not None:
            self.injector.record(
                self.env.now, f"shard{shard}", "handoff_complete"
            )

    # -- cache re-warm ----------------------------------------------------------
    def _rewarm(self, lane: int, rc: NodeReadCache):
        """Replay the pre-crash journal into the (empty) read cache."""
        self.rewarms += 1
        device = self.devices[lane]
        for offset, nbytes in rc.journal:
            if not self.state.alive[lane]:
                return  # crashed again mid-warm
            cmd = device.read(offset, align_up(nbytes, 512))
            yield cmd.completion
            if rc.insert(offset, nbytes):
                rc.rewarmed_chunks += rc._chunks(nbytes)
        if self.tracer.enabled:
            self.tracer.instant(
                "cache_rewarmed", track="cluster", lane=lane,
                chunks=rc.rewarmed_chunks,
            )

    def counters(self) -> dict:
        return {
            "crashes": self.crashes,
            "rejoins": self.rejoins,
            "handoffs_started": self.handoffs_started,
            "handoffs_completed": self.handoffs_completed,
            "handoffs_aborted": self.handoffs_aborted,
            "handoff_bytes": self.handoff_bytes,
            "rewarms": self.rewarms,
        }
