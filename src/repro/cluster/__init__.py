"""Cluster substrate: nodes, fabric topology, collectives, and the
replicated serving tier (consistent-hash placement, front-end
balancing, node crash/rejoin lifecycle)."""

from .collectives import Communicator
from .hashring import ShardMap, rendezvous_order
from .node import Cluster, Node
from .serving import (
    ClusterLifecycle,
    ClusterRuntime,
    ClusterSpec,
    ClusterState,
    FrontEndBalancer,
    NodeDown,
    NodeReadCache,
    NodeUp,
)

__all__ = [
    "Cluster",
    "Node",
    "Communicator",
    "ShardMap",
    "rendezvous_order",
    "ClusterSpec",
    "ClusterState",
    "FrontEndBalancer",
    "NodeReadCache",
    "ClusterLifecycle",
    "ClusterRuntime",
    "NodeDown",
    "NodeUp",
]
