"""Cluster substrate: nodes, fabric topology, and MPI-style collectives."""

from .collectives import Communicator
from .node import Cluster, Node

__all__ = ["Cluster", "Node", "Communicator"]
