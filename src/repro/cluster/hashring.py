"""Consistent-hash replica placement for the cluster serving tier.

Placement uses rendezvous (highest-random-weight) hashing: for each
shard, every node is scored with ``zlib.crc32(shard|node)`` (stable
across processes — builtin ``hash`` is not) and the nodes are ranked by
descending score.  The top R distinct nodes are the replica set; the
rest of the ranking is the standby succession for shard handoff.  Like
a vnode ring this is *consistent* — removing a node disturbs only the
shards that ranked it — but the per-shard rankings are independent
uniform permutations, so replica load stays balanced even on the small
fleets these benches run (a crc32 vnode ring at 8 nodes routinely hands
one node 5 of 8 secondaries; rendezvous caps it at 2).

FanStore (arXiv:1809.10799) distributes packed sample files across
nodes the same way; the anchor option pins each shard's primary to the
node whose device the mount staged it on, so the hash only governs the
secondary replicas and the handoff succession.
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = ["ShardMap", "rendezvous_order"]


def rendezvous_order(key: str, nodes: Sequence[int]) -> Tuple[int, ...]:
    """All nodes ranked by descending rendezvous weight for ``key``.

    Ties (crc32 collisions) break on the node index, keeping the order
    fully deterministic.
    """
    return tuple(
        sorted(
            nodes,
            key=lambda n: (-zlib.crc32(f"{key}|node:{n}".encode()), n),
        )
    )


class ShardMap:
    """R-way replica placement of directory shards onto storage nodes."""

    def __init__(
        self,
        num_shards: int,
        nodes: Sequence[int],
        replicas: int = 2,
        anchors: Optional[Sequence[int]] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigError("shard map needs at least one shard")
        if not nodes:
            raise ConfigError("shard map needs at least one storage node")
        if len(set(nodes)) != len(nodes):
            raise ConfigError("shard map nodes must be distinct")
        if replicas < 1:
            raise ConfigError(f"replication factor must be >= 1, got {replicas}")
        if replicas > len(nodes):
            raise ConfigError(
                f"replication factor {replicas} exceeds {len(nodes)} storage nodes"
            )
        if anchors is not None and len(anchors) != num_shards:
            raise ConfigError("need one anchor node per shard")
        self.nodes = tuple(sorted(nodes))
        self.num_shards = num_shards
        self.replicas = replicas
        #: shard -> full node preference order (replicas are the prefix).
        #: An *anchor* pins a shard's primary (DLFS anchors shard s to
        #: the node whose device the mount staged it on); the hash then
        #: orders the secondary replicas and the standby succession.
        self._order = {}
        for s in range(num_shards):
            ranked = rendezvous_order(f"shard:{s}", self.nodes)
            if anchors is not None:
                anchor = anchors[s]
                if anchor not in self.nodes:
                    raise ConfigError(
                        f"anchor node {anchor} for shard {s} is not a storage node"
                    )
                ranked = (anchor,) + tuple(n for n in ranked if n != anchor)
            self._order[s] = ranked

    def replicas_of(self, shard: int) -> Tuple[int, ...]:
        """The R nodes holding ``shard``, primary first."""
        return self._order[shard][: self.replicas]

    def primary(self, shard: int) -> int:
        return self._order[shard][0]

    def standby(self, shard: int, exclude: Sequence[int] = ()) -> Optional[int]:
        """First non-replica node in preference order, for shard handoff."""
        held = set(self.replicas_of(shard)) | set(exclude)
        for node in self._order[shard][self.replicas :]:
            if node not in held:
                return node
        return None

    def shards_on(self, node: int) -> Tuple[int, ...]:
        """Shards replicated on ``node``, ascending."""
        return tuple(
            s for s in range(self.num_shards) if node in self.replicas_of(s)
        )

    def __repr__(self) -> str:
        return (
            f"<ShardMap {self.num_shards} shards x{self.replicas} "
            f"over {len(self.nodes)} nodes>"
        )
