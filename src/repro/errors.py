"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing simulation faults from file-system faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class DeadlockError(SimulationError):
    """``run()`` returned with live processes but no scheduled events."""


class InterruptedProcess(SimulationError):
    """A simulation process was interrupted while waiting on an event."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ResourceError(SimulationError):
    """Illegal use of a simulated resource (double release, bad handle...)."""


class HardwareError(ReproError):
    """A hardware model was driven outside its operating envelope."""


class QueueFullError(HardwareError):
    """A bounded hardware queue (NVMe SQ, QPair) rejected a submission."""


class AllocationError(HardwareError):
    """A fixed-size pool (hugepages, cache chunks) is exhausted."""


class FileSystemError(ReproError):
    """Base class for errors raised by any of the simulated file systems."""


class FileNotFound(FileSystemError):
    """Lookup failed: no such file or sample."""


class NotMounted(FileSystemError):
    """Operation attempted before ``mount`` (or after ``unmount``)."""


class InvalidHandle(FileSystemError):
    """A file/sample handle is stale or was never issued."""


class DirectoryError(FileSystemError):
    """The in-memory sample directory rejected an operation."""


class EntryFormatError(DirectoryError):
    """A field does not fit the 128-bit sample-entry layout."""


class ConfigError(ReproError):
    """Invalid configuration value."""


class FaultError(ReproError):
    """Base class for injected-fault failures in the datapath.

    Raised (or recorded) by the fault-injection subsystem
    (:mod:`repro.faults`) and the recovery machinery that handles it.
    """


class MediaError(FaultError):
    """An NVMe read completed with an unrecoverable media error."""


class RequestTimeout(FaultError):
    """An I/O request missed its completion deadline."""


class QPairResetError(FaultError):
    """An I/O qpair was reset (or is disconnected) with requests in flight."""


class AdmissionRejected(ReproError):
    """A tenant's read job was refused at admission control.

    Raised (recorded per sample, like :class:`SampleReadError`) when the
    tenant's token bucket is exhausted *and* its deferred-admission queue
    is full.  The job still completes — the rejection is visible in
    ``job.errors`` — so open-loop traffic generators never wedge on a
    throttled tenant.
    """

    def __init__(self, message: str, tenant: object = None, key: object = None) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.key = key


class SampleReadError(FaultError):
    """A sample could not be delivered after exhausting the retry budget.

    Carries the cache key of the failed span; the batch it belonged to
    still completes (graceful degradation), with the failure recorded in
    the job's error list.
    """

    def __init__(self, message: str, key: object = None) -> None:
        super().__init__(message)
        self.key = key
