"""Cost-model constants for the simulated testbed.

Single source of truth for every hardware and OS cost in the simulation.
The defaults describe the paper's in-house cluster (§IV): dual-socket
Xeon E5-2650 nodes, 64 GB RAM, FDR InfiniBand via ConnectX-3, and one
480 GB Intel Optane NVMe SSD.  Each constant is annotated with its
provenance — the paper where it gives one, public spec sheets or widely
reported measurements otherwise.

All times are **seconds**, all sizes **bytes**, all rates **bytes/second**.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError

__all__ = [
    "CPUSpec",
    "NVMeSpec",
    "NetworkSpec",
    "OSSpec",
    "Testbed",
    "KB",
    "MB",
    "GB",
    "USEC",
    "MSEC",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
USEC = 1e-6
MSEC = 1e-3


@dataclass(frozen=True)
class CPUSpec:
    """Per-node CPU resources and micro-operation costs."""

    #: Cores available per node (paper: 10 dual-socket E5-2650 cores usable
    #: for I/O experiments).
    cores: int = 10
    #: One-way memcpy bandwidth of a single core (DRAM copy, ~10 GB/s on
    #: Sandy Bridge class parts).
    memcpy_bandwidth: float = 10.0 * GB
    #: Cost of one iteration of a busy-poll loop that finds nothing
    #: (SPDK completion check is a couple of cached loads).
    poll_iteration: float = 0.10 * USEC
    #: Cost of hashing a file/sample name to a 48-bit key (FNV-1a over a
    #: short string).
    hash_cost: float = 0.05 * USEC
    #: Cost of visiting one node during an AVL-tree descent (pointer chase
    #: + comparison; dominated by a cache miss).
    tree_node_visit: float = 0.02 * USEC
    #: Fixed per-request bookkeeping in user space (allocating the request
    #: record, list appends).
    request_setup: float = 0.20 * USEC

    def validate(self) -> None:
        if self.cores < 1:
            raise ConfigError("CPUSpec.cores must be >= 1")
        for name in ("memcpy_bandwidth", "poll_iteration", "hash_cost",
                     "tree_node_visit", "request_setup"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"CPUSpec.{name} must be positive")


@dataclass(frozen=True)
class OSSpec:
    """Kernel I/O stack costs (the Ext4 baseline pays these; DLFS does not)."""

    #: User->kernel->user boundary crossing for one syscall (mode switch
    #: pair + register save/restore).
    syscall_overhead: float = 0.60 * USEC
    #: Full context switch when a thread blocks on I/O and is later woken
    #: (scheduler, cache/TLB disturbance).
    context_switch: float = 2.0 * USEC
    #: Interrupt handling + completion soft-irq for one block-layer I/O.
    interrupt_overhead: float = 2.5 * USEC
    #: Walking VFS + dentry cache for one path component (hit).
    dentry_lookup: float = 0.40 * USEC
    #: Ext4 inode fetch + extent-tree descent for one file (metadata
    #: cached in memory; still several tree levels + locking).
    inode_lookup: float = 4.0 * USEC
    #: Page-cache lookup/insert per 4 KB page touched.
    page_cache_op: float = 0.15 * USEC
    #: Block-layer request construction, merging, queueing (per request).
    block_request: float = 1.2 * USEC
    #: Kernel copy bandwidth for copy_to_user (slightly below raw memcpy
    #: because of page-at-a-time loops and checks).
    copy_to_user_bandwidth: float = 8.0 * GB
    #: Extra per-read cost for each additional concurrent kernel I/O
    #: thread (shared-lock and cache-line contention in the VFS/block
    #: layers) — why Ext4-MC dips at high core counts in Fig 7a.
    smp_contention_per_thread: float = 0.30 * USEC

    def validate(self) -> None:
        for name in ("syscall_overhead", "context_switch", "interrupt_overhead",
                     "dentry_lookup", "inode_lookup", "page_cache_op",
                     "block_request", "copy_to_user_bandwidth"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"OSSpec.{name} must be positive")


@dataclass(frozen=True)
class NVMeSpec:
    """Service model of one NVMe device.

    The device is modeled as a serialized *command processor* (fixed
    per-command cost -> IOPS ceiling), a shared *data pipe* (device read
    bandwidth), and a constant media access latency added to every
    command.  This reproduces the latency/IOPS/bandwidth envelope of the
    real part without flash-level detail.
    """

    name: str = "intel-optane-480g"
    #: Aggregate sequential/large-block read bandwidth.  Intel Optane
    #: SSD 900P/P4800X class: ~2.4 GB/s.
    read_bandwidth: float = 2.4 * GB
    #: Fixed command-processing cost; 1.7 us/cmd ~= 590 K IOPS ceiling,
    #: matching published 4 KB random-read numbers for Optane.
    cmd_overhead: float = 1.7 * USEC
    #: Media access latency added to each command (Optane: ~10 us).
    read_latency: float = 10.0 * USEC
    #: Maximum outstanding commands the controller accepts.
    max_outstanding: int = 65536
    #: Added per-command processing when multiple submission queues are
    #: active (controller round-robin arbitration) — the source of the
    #: slight DLFS throughput drop at high core counts in Fig 7a.
    queue_arbitration_penalty: float = 0.30 * USEC
    #: True when this device stands in for the paper's RAMdisk-based
    #: NVMe emulation (multi-node experiments, §IV).
    emulated: bool = False

    def validate(self) -> None:
        if self.read_bandwidth <= 0 or self.cmd_overhead <= 0:
            raise ConfigError("NVMeSpec rates must be positive")
        if self.read_latency < 0:
            raise ConfigError("NVMeSpec.read_latency must be >= 0")
        if self.max_outstanding < 1:
            raise ConfigError("NVMeSpec.max_outstanding must be >= 1")

    @classmethod
    def intel_optane_480g(cls) -> "NVMeSpec":
        """The single real device of the paper's testbed (§IV-A)."""
        return cls()

    @classmethod
    def emulated_ramdisk(cls) -> "NVMeSpec":
        """RAMdisk + injected delay, as the paper uses for multi-node runs.

        The paper injects delays so the RAMdisk behaves like the NVMe
        device; we therefore keep the Optane envelope and just mark the
        spec as emulated.
        """
        return cls(name="emulated-nvme-ramdisk", emulated=True)

    def transfer_time(self, nbytes: int) -> float:
        """Pure data-pipe occupancy for ``nbytes`` (no latency/overhead)."""
        return nbytes / self.read_bandwidth


@dataclass(frozen=True)
class NetworkSpec:
    """FDR InfiniBand fabric with RDMA (ConnectX-3)."""

    #: Effective per-port bandwidth.  FDR 4x signals at 56 Gb/s;
    #: ~6.0 GB/s is achievable goodput with ConnectX-3.
    bandwidth: float = 6.0 * GB
    #: One-way propagation + switch latency.
    propagation_latency: float = 1.5 * USEC
    #: CPU cost of posting one RDMA work request (doorbell write etc.).
    rdma_post_overhead: float = 0.30 * USEC
    #: Extra latency of reaching an NVMe-oF target versus raw RDMA
    #: (paper/NVMe-oF spec: remote access adds < 10 us; SPDK targets
    #: sit near the low end).
    nvmf_added_latency: float = 5.0 * USEC

    def validate(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError("NetworkSpec.bandwidth must be positive")
        for name in ("propagation_latency", "rdma_post_overhead",
                     "nvmf_added_latency"):
            if getattr(self, name) < 0:
                raise ConfigError(f"NetworkSpec.{name} must be >= 0")

    def transfer_time(self, nbytes: int) -> float:
        """Wire occupancy for ``nbytes``."""
        return nbytes / self.bandwidth


@dataclass(frozen=True)
class Testbed:
    """A complete node/cluster hardware description."""

    __test__ = False  # not a pytest test class despite the name

    cpu: CPUSpec = field(default_factory=CPUSpec)
    os: OSSpec = field(default_factory=OSSpec)
    nvme: NVMeSpec = field(default_factory=NVMeSpec.intel_optane_480g)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: Node memory; bounds the in-memory sample directory + caches.
    memory_bytes: int = 64 * GB
    #: Hugepage pool reserved for SPDK I/O buffers per node.
    hugepage_bytes: int = 2 * GB

    def validate(self) -> None:
        self.cpu.validate()
        self.os.validate()
        self.nvme.validate()
        self.network.validate()
        if self.memory_bytes <= 0 or self.hugepage_bytes <= 0:
            raise ConfigError("Testbed memory sizes must be positive")
        if self.hugepage_bytes > self.memory_bytes:
            raise ConfigError("hugepage pool larger than node memory")

    @classmethod
    def paper(cls) -> "Testbed":
        """The paper's in-house cluster, single real NVMe device."""
        return cls()

    @classmethod
    def paper_emulated(cls) -> "Testbed":
        """Multi-node configuration: every node gets an emulated device."""
        return cls(nvme=NVMeSpec.emulated_ramdisk())

    def with_nvme(self, nvme: NVMeSpec) -> "Testbed":
        return replace(self, nvme=nvme)

    def with_cores(self, cores: int) -> "Testbed":
        return replace(self, cpu=replace(self.cpu, cores=cores))
