"""NVMe device model.

The controller is reduced to the three features the paper's evaluation
exercises:

* a serialized **command processor** — fixed cost per command, which
  caps IOPS and is what chunk-level batching amortizes;
* a shared **data pipe** — the device's read bandwidth;
* a constant **media latency** per command, paid concurrently by
  outstanding commands (the device's internal parallelism).

A command's solo latency is ``cmd_overhead + read_latency +
nbytes/bandwidth``; sustained small-command throughput approaches
``1/cmd_overhead``; sustained large-command throughput approaches
``bandwidth``.  Those are the published envelope numbers for the
paper's Intel Optane device.

For multi-node experiments the paper emulates NVMe with RAMdisk plus an
injected delay; ``NVMeSpec.emulated_ramdisk()`` mirrors that by keeping
the same envelope and tagging the spec, exactly as the paper intends.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from collections import deque

from ..errors import ConfigError, HardwareError, QueueFullError
from ..obs import NULL_METRICS, NULL_TRACER
from ..sim import Environment, Event, Resource, Tally, ThroughputMeter
from ..sim.engine import fastpath_enabled
from .platform import GB, NVMeSpec

__all__ = [
    "NVMeCommand",
    "NVMeDevice",
    "READ",
    "WRITE",
    "STATUS_OK",
    "STATUS_MEDIA_ERROR",
    "STATUS_TIMEOUT",
    "STATUS_ABORTED_RESET",
]

READ = "read"
WRITE = "write"

#: Completion statuses shared by NVMe commands and SPDK requests.
STATUS_OK = "ok"
STATUS_MEDIA_ERROR = "media_error"
STATUS_TIMEOUT = "timeout"
STATUS_ABORTED_RESET = "aborted_reset"

#: Logical block size used for address validation.
BLOCK_SIZE = 512


@dataclass(eq=False)
class NVMeCommand:
    """One NVMe I/O command."""

    op: str
    offset: int
    nbytes: int
    #: Fires (with the command as value) when the device completes it.
    completion: Event = field(repr=False)
    #: Opaque tag the submitter can use to route completions.
    tag: Optional[object] = None
    submit_time: float = 0.0
    complete_time: float = 0.0
    #: Completion status (``STATUS_OK`` unless a fault was injected).
    status: str = STATUS_OK
    #: Observability context: causal parent span of this command and the
    #: device-side span opened while servicing it (``None`` = untraced).
    parent_span: Optional[object] = None
    span: Optional[object] = None

    @property
    def latency(self) -> float:
        return self.complete_time - self.submit_time

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class NVMeDevice:
    """One NVMe SSD (real or paper-style RAMdisk emulation)."""

    _ids = itertools.count()

    def __init__(
        self,
        env: Environment,
        spec: Optional[NVMeSpec] = None,
        name: Optional[str] = None,
        capacity: int = 480 * GB,
    ) -> None:
        self.env = env
        self.spec = spec or NVMeSpec.intel_optane_480g()
        self.spec.validate()
        if capacity <= 0:
            raise ConfigError("device capacity must be positive")
        self.name = name or f"nvme{next(self._ids)}"
        self.capacity = capacity
        #: Optional fault injector (see :mod:`repro.faults`); ``None``
        #: keeps the healthy fast path with zero overhead.
        self.injector = None
        self._cmd_proc = Resource(env, capacity=1, name=f"{self.name}.cmdproc")
        self._data_pipe = Resource(env, capacity=1, name=f"{self.name}.data")
        self._outstanding = 0
        self._active_queues = 0
        self.read_meter = ThroughputMeter(env, name=f"{self.name}.read")
        self.write_meter = ThroughputMeter(env, name=f"{self.name}.write")
        self.latency = Tally(f"{self.name}.latency")
        #: Observability (null objects until install_observability).
        self.tracer = NULL_TRACER
        self._h_latency = NULL_METRICS.histogram("")
        #: Analytic fast path (healthy commands only): completion times
        #: are computed in closed form at submit and a single timer chain
        #: delivers them, replacing the per-command service process.
        #: ``perfcheck`` proves results bit-identical to the process path.
        self._fastpath = fastpath_enabled()
        #: Next instant each serialized stage is free (closed-form
        #: mirrors of the _cmd_proc/_data_pipe FIFO resources).
        self._proc_free = 0.0
        self._pipe_free = 0.0
        #: Pending analytic completions, (complete_time, cmd), sorted —
        #: completion times are strictly increasing in submit order
        #: because both stages are FIFO pipes.
        self._fp_pending: deque[tuple[float, NVMeCommand]] = deque()
        self._fp_timer_active = False

    def install_observability(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle."""
        self.tracer = obs.tracer
        self._h_latency = obs.metrics.histogram("nvme.latency")

    # -- introspection -------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Commands submitted but not yet completed."""
        return self._outstanding

    def bandwidth_utilization(self) -> float:
        """Fraction of the data pipe kept busy since t=0."""
        return self._data_pipe.utilization()

    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`repro.faults.FaultInjector` to this device."""
        self.injector = injector

    def register_queue(self) -> None:
        """Declare one more active submission queue.

        The controller arbitrates round-robin across queues; each extra
        active queue adds ``spec.queue_arbitration_penalty`` to the
        per-command processing cost (the Fig 7a high-core-count dip).
        """
        self._active_queues += 1

    @property
    def effective_cmd_overhead(self) -> float:
        extra_queues = max(0, self._active_queues - 1)
        return (
            self.spec.cmd_overhead
            + self.spec.queue_arbitration_penalty * extra_queues
        )

    # -- command submission ----------------------------------------------------
    def submit(
        self,
        op: str,
        offset: int,
        nbytes: int,
        tag: Optional[object] = None,
        parent: Optional[object] = None,
    ) -> NVMeCommand:
        """Queue one command; returns it with a live ``completion`` event.

        Raises :class:`QueueFullError` beyond ``spec.max_outstanding`` —
        queue-depth pacing is the submitter's job (the SPDK QPair and the
        kernel block layer both do it).
        """
        if op not in (READ, WRITE):
            raise HardwareError(f"unsupported NVMe opcode: {op!r}")
        if nbytes <= 0:
            raise HardwareError(f"command size must be positive, got {nbytes}")
        if offset < 0 or offset + nbytes > self.capacity:
            raise HardwareError(
                f"command [{offset}, {offset + nbytes}) outside device "
                f"capacity {self.capacity}"
            )
        if offset % BLOCK_SIZE:
            raise HardwareError(
                f"offset {offset} not aligned to {BLOCK_SIZE}-byte blocks"
            )
        if self._outstanding >= self.spec.max_outstanding:
            raise QueueFullError(
                f"{self.name}: {self._outstanding} commands outstanding "
                f"(max {self.spec.max_outstanding})"
            )
        cmd = NVMeCommand(
            op=op,
            offset=offset,
            nbytes=nbytes,
            completion=self.env.event(),
            tag=tag,
            submit_time=self.env.now,
            parent_span=parent,
        )
        if self.tracer.enabled:
            cmd.span = self.tracer.start(
                "nvme.cmd", track=self.name, parent=parent, cat="nvme",
                op=op, nbytes=nbytes,
            )
        self._outstanding += 1
        if self._fastpath and self.injector is None:
            self._fp_submit(cmd)
        else:
            self.env.process(self._service(cmd), name=f"{self.name}.cmd")
        return cmd

    def read(
        self,
        offset: int,
        nbytes: int,
        tag: Optional[object] = None,
        parent: Optional[object] = None,
    ) -> NVMeCommand:
        return self.submit(READ, offset, nbytes, tag, parent=parent)

    def write(
        self,
        offset: int,
        nbytes: int,
        tag: Optional[object] = None,
        parent: Optional[object] = None,
    ) -> NVMeCommand:
        return self.submit(WRITE, offset, nbytes, tag, parent=parent)

    # -- analytic fast path ------------------------------------------------------
    def _fp_submit(self, cmd: NVMeCommand) -> None:
        """Closed-form service timing for one healthy command.

        Mirrors :meth:`_service` stage by stage with the *same float
        operations in the same order*, so completion times are
        bit-identical to the process path:

        1. serialized command processing — FIFO grant of ``_cmd_proc``
           at ``max(now, proc_free)``, released ``cmd_overhead`` later;
        2. media latency — paid concurrently, ``read_latency`` after
           processing;
        3. serialized data movement — FIFO grant of ``_data_pipe``.

        Both stages are capacity-1 FIFO pipes fed in submit order, so
        grant order equals submit order and each stage's free time is a
        single scalar.  Busy-time integrals are credited to the same
        resources with the same per-hold summands in the same (submit ==
        release) order the process path would accumulate them, keeping
        ``bandwidth_utilization()`` bit-identical at end of run (the
        integral is booked at submit, so a mid-flight reading would run
        slightly ahead of the process path).

        With an injector installed, commands take the process path; the
        in-repo chaos workloads install injectors before any I/O is
        submitted, so the two accounting schemes never interleave.
        """
        env = self.env
        now = env._now
        proc_start = self._proc_free if self._proc_free > now else now
        proc_done = proc_start + self.effective_cmd_overhead
        self._proc_free = proc_done
        ready = proc_done + self.spec.read_latency
        pipe_start = self._pipe_free if self._pipe_free > ready else ready
        complete = pipe_start + self.spec.transfer_time(cmd.nbytes)
        self._pipe_free = complete
        self._cmd_proc._busy_integral += proc_done - proc_start
        self._data_pipe._busy_integral += complete - pipe_start
        self._fp_pending.append((complete, cmd))
        if not self._fp_timer_active:
            self._fp_schedule(complete)

    def _fp_schedule(self, when: float) -> None:
        """Arm the delivery timer for the earliest pending completion."""
        timer = Event(self.env)
        timer._value = None
        timer.callbacks.append(self._fp_deliver)
        self.env._post_at(timer, when)
        self._fp_timer_active = True

    def _fp_deliver(self, _timer: Event) -> None:
        """Complete every command due now; re-arm for the next instant.

        One timer event per completion *instant* — a same-instant burst
        is drained in submit order under a single event, and the 5+
        intermediate events per command of the process path (process
        start, stage grants, stage timeouts, process end) never exist.
        """
        pending = self._fp_pending
        now = self.env._now
        while pending and pending[0][0] <= now:
            _, cmd = pending.popleft()
            self._complete(cmd, STATUS_OK)
        if pending:
            self._fp_schedule(pending[0][0])
        else:
            self._fp_timer_active = False

    # -- service -----------------------------------------------------------------
    def _service(self, cmd: NVMeCommand) -> Generator[Event, Any, None]:
        fault = None
        if self.injector is not None and cmd.op == READ:
            fault = self.injector.nvme_fault(self.name, self.env.now)
        if fault is not None and cmd.span is not None:
            cmd.span.event("fault_injected", kind=fault[0])
        # 1. command processing (serialized: the IOPS ceiling)
        yield from self._cmd_proc.hold(self.effective_cmd_overhead)
        if fault is not None:
            kind, extra = fault
            if kind == "media_error":
                # The media access fails after its latency; no data moves.
                yield self.env.timeout(self.spec.read_latency)
                self._complete(cmd, STATUS_MEDIA_ERROR)
                return
            if kind == "timeout":
                # The command wedges inside the controller before it
                # surfaces — far past any sane client deadline.
                yield self.env.timeout(self.spec.read_latency + extra)
                self._complete(cmd, STATUS_TIMEOUT)
                return
            # Hiccup: a latency spike on an otherwise-healthy read.
            yield self.env.timeout(extra)
        # 2. media access latency (paid concurrently across commands)
        yield self.env.timeout(self.spec.read_latency)
        # 3. data movement (serialized on the device's bandwidth)
        yield from self._data_pipe.hold(self.spec.transfer_time(cmd.nbytes))
        self._complete(cmd, STATUS_OK)

    def _complete(self, cmd: NVMeCommand, status: str) -> None:
        cmd.status = status
        cmd.complete_time = self.env.now
        self._outstanding -= 1
        self.latency.observe(cmd.latency)
        self._h_latency.observe(cmd.latency)
        if cmd.span is not None:
            cmd.span.finish(status=status)
        if status == STATUS_OK:
            meter = self.read_meter if cmd.op == READ else self.write_meter
            meter.record(nbytes=cmd.nbytes)
        cmd.completion.succeed(cmd)

    def __repr__(self) -> str:
        kind = "emulated" if self.spec.emulated else "real"
        return f"<NVMeDevice {self.name!r} ({kind}, {self.capacity // GB} GB)>"
