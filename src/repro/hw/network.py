"""RDMA fabric model (FDR InfiniBand, ConnectX-3).

Each node owns a NIC with independent transmit and receive pipes; the
switch is non-blocking, so a transfer contends only at the two endpoint
NICs.  A transfer occupies the source TX pipe and the destination RX
pipe for ``nbytes / bandwidth`` seconds and completes one propagation
latency later — a cut-through model that matches RDMA behaviour at the
microsecond scale the paper cares about.

The one-sided primitives (``rdma_read`` / ``rdma_write``) move payload
without involving remote CPU; ``rpc`` models a two-sided message pair
with server-side processing, which is what Octopus metadata lookups pay.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import ConfigError
from ..obs import NULL_METRICS, NULL_TRACER
from ..sim import Environment, Event, Resource, Tally, ThroughputMeter
from .platform import NetworkSpec

__all__ = ["NIC", "Fabric"]


class NIC:
    """One host adapter: a TX pipe and an RX pipe of equal bandwidth."""

    def __init__(self, env: Environment, spec: NetworkSpec, name: str) -> None:
        self.env = env
        self.spec = spec
        self.name = name
        self.tx = Resource(env, capacity=1, name=f"{name}.tx")
        self.rx = Resource(env, capacity=1, name=f"{name}.rx")
        self.tx_meter = ThroughputMeter(env, name=f"{name}.tx")
        self.rx_meter = ThroughputMeter(env, name=f"{name}.rx")

    def __repr__(self) -> str:
        return f"<NIC {self.name!r}>"


class Fabric:
    """A set of NICs joined by a non-blocking switch."""

    def __init__(self, env: Environment, spec: Optional[NetworkSpec] = None) -> None:
        self.env = env
        self.spec = spec or NetworkSpec()
        self.spec.validate()
        self._nics: dict[str, NIC] = {}
        self.transfer_latency = Tally("fabric.transfer_latency")
        #: Optional fault injector (see :mod:`repro.faults`); ``None``
        #: keeps the healthy fast path with zero overhead.
        self.injector = None
        #: Observability (null objects until install_observability).
        self.tracer = NULL_TRACER
        self._h_latency = NULL_METRICS.histogram("")

    def install_fault_injector(self, injector) -> None:
        """Attach a :class:`repro.faults.FaultInjector` to this fabric."""
        self.injector = injector

    def install_observability(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` bundle."""
        self.tracer = obs.tracer
        self._h_latency = obs.metrics.histogram("fabric.latency")

    # -- topology ----------------------------------------------------------
    def attach(self, name: str) -> NIC:
        """Create and register the NIC for host ``name``."""
        if name in self._nics:
            raise ConfigError(f"host {name!r} already attached to fabric")
        nic = NIC(self.env, self.spec, name)
        self._nics[name] = nic
        return nic

    def nic(self, name: str) -> NIC:
        try:
            return self._nics[name]
        except KeyError:
            raise ConfigError(f"host {name!r} is not attached to fabric") from None

    def __len__(self) -> int:
        return len(self._nics)

    # -- data movement -------------------------------------------------------
    def transfer(
        self, src: str, dst: str, nbytes: int, parent: Optional[object] = None
    ) -> Generator[Event, Any, None]:
        """Move ``nbytes`` from ``src`` to ``dst`` (process helper).

        Local transfers (``src == dst``) do not touch the fabric: RDMA to
        self is served from memory, consistent with how the paper treats
        node-local NVMe access.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src == dst or nbytes == 0:
            return
        t0 = self.env.now
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "fabric.transfer", track=f"link:{src}->{dst}", parent=parent,
                cat="fabric", nbytes=nbytes,
            )
        if self.injector is not None:
            # A dropped transfer is re-driven after a detection stall
            # (go-back-N at the reliable-connection layer).
            stall = self.injector.link_fault(src, dst, self.env.now)
            if stall is not None:
                if span is not None:
                    span.event("retransmit_stall", stall=stall)
                yield self.env.timeout(stall)
        src_nic, dst_nic = self.nic(src), self.nic(dst)
        wire_time = self.spec.transfer_time(nbytes)
        # Cut-through: both endpoint pipes are busy for the wire time.
        # Acquire TX first, then RX (uniform order; the two pools are
        # disjoint so no deadlock is possible).
        tx_req = src_nic.tx.request()
        yield tx_req
        rx_req = dst_nic.rx.request()
        yield rx_req
        try:
            yield self.env.timeout(wire_time)
        finally:
            src_nic.tx.release(tx_req)
            dst_nic.rx.release(rx_req)
        yield self.env.timeout(self.spec.propagation_latency)
        src_nic.tx_meter.record(nbytes=nbytes)
        dst_nic.rx_meter.record(nbytes=nbytes)
        latency = self.env.now - t0
        self.transfer_latency.observe(latency)
        self._h_latency.observe(latency)
        if span is not None:
            span.finish()

    def rdma_read(
        self, reader: str, target: str, nbytes: int,
        parent: Optional[object] = None,
    ) -> Generator[Event, Any, None]:
        """One-sided read: payload flows ``target -> reader``.

        The doorbell (work-request post) costs CPU at the *reader*; that
        charge is the caller's responsibility (it knows which core posts).
        Here we pay the request's one-way latency plus the data transfer.
        """
        if reader != target:
            # Request message travels to the target first.
            yield self.env.timeout(self.spec.propagation_latency)
        yield from self.transfer(target, reader, nbytes, parent=parent)

    def rdma_write(
        self, writer: str, target: str, nbytes: int,
        parent: Optional[object] = None,
    ) -> Generator[Event, Any, None]:
        """One-sided write: payload flows ``writer -> target``."""
        yield from self.transfer(writer, target, nbytes, parent=parent)

    def rpc(
        self,
        client: str,
        server: str,
        request_bytes: int,
        response_bytes: int,
        server_time: float = 0.0,
        server_work: Optional[Callable[[], Generator[Event, Any, Any]]] = None,
    ) -> Generator[Event, Any, Any]:
        """Two-sided request/response exchange (process helper).

        ``server_time`` charges a fixed service delay; ``server_work``
        runs an arbitrary server-side process between the two messages
        (e.g. a metadata lookup on the server's core).  Returns the value
        of ``server_work`` if given.
        """
        yield from self.transfer(client, server, request_bytes)
        result = None
        if server_time > 0:
            yield self.env.timeout(server_time)
        if server_work is not None:
            result = yield from server_work()
        yield from self.transfer(server, client, response_bytes)
        return result
