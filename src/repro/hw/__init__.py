"""Hardware models: CPU cores, memory pools, RDMA fabric, NVMe devices.

All cost-model constants live in :mod:`repro.hw.platform`; the component
classes here turn those constants into contended simulation resources.
"""

from .cpu import CPU, BoundThread, Core
from .memory import HugePageChunk, HugePagePool
from .network import NIC, Fabric
from .nvme import (
    READ,
    STATUS_ABORTED_RESET,
    STATUS_MEDIA_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    WRITE,
    NVMeCommand,
    NVMeDevice,
)
from .platform import (
    GB,
    KB,
    MB,
    MSEC,
    USEC,
    CPUSpec,
    NetworkSpec,
    NVMeSpec,
    OSSpec,
    Testbed,
)

__all__ = [
    "CPU",
    "Core",
    "BoundThread",
    "HugePagePool",
    "HugePageChunk",
    "Fabric",
    "NIC",
    "NVMeDevice",
    "NVMeCommand",
    "READ",
    "WRITE",
    "STATUS_OK",
    "STATUS_MEDIA_ERROR",
    "STATUS_TIMEOUT",
    "STATUS_ABORTED_RESET",
    "CPUSpec",
    "OSSpec",
    "NVMeSpec",
    "NetworkSpec",
    "Testbed",
    "KB",
    "MB",
    "GB",
    "USEC",
    "MSEC",
]
