"""Memory models: the SPDK hugepage pool and DRAM buffers.

SPDK mandates that every I/O buffer live on hugepages (§III-C of the
paper).  The pool hands out fixed-size *chunks* (the DLFS sample cache is
built from 256 KB chunks by default); exhaustion makes allocators wait,
which back-pressures the read pipeline exactly like the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import AllocationError, ConfigError
from ..sim import Environment, Event, Store

__all__ = ["HugePageChunk", "HugePagePool"]


@dataclass(eq=False)
class HugePageChunk:
    """One pinned, physically contiguous buffer from the hugepage pool."""

    index: int
    size: int
    pool: "HugePagePool"
    #: Bytes of valid data currently in the chunk (set by the I/O path).
    valid_bytes: int = 0
    #: Opaque owner tag for debugging (e.g. which cache slot holds it).
    owner: Optional[object] = None

    def __repr__(self) -> str:
        return f"<HugePageChunk #{self.index} {self.valid_bytes}/{self.size}B>"


class HugePagePool:
    """Fixed population of equal-size hugepage chunks.

    ``alloc`` blocks (FIFO) when the pool is empty; ``free`` returns a
    chunk.  ``try_alloc`` is the non-blocking variant used by
    opportunistic paths.
    """

    def __init__(
        self,
        env: Environment,
        total_bytes: int,
        chunk_size: int,
        name: str = "hugepages",
    ) -> None:
        if chunk_size <= 0:
            raise ConfigError("chunk_size must be positive")
        if total_bytes < chunk_size:
            raise ConfigError(
                f"pool of {total_bytes} B cannot hold one {chunk_size} B chunk"
            )
        self.env = env
        self.name = name
        self.chunk_size = chunk_size
        self.num_chunks = total_bytes // chunk_size
        self._free = Store(env, name=f"{name}-free")
        self._all: list[HugePageChunk] = []
        for i in range(self.num_chunks):
            chunk = HugePageChunk(index=i, size=chunk_size, pool=self)
            self._all.append(chunk)
            self._free.put(chunk)
        self._outstanding = 0

    # -- introspection -------------------------------------------------------
    @property
    def free_chunks(self) -> int:
        return len(self._free)

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def total_bytes(self) -> int:
        return self.num_chunks * self.chunk_size

    # -- allocation ----------------------------------------------------------
    def alloc(self) -> Event:
        """Blocking allocation; the event's value is a :class:`HugePageChunk`."""
        self._outstanding += 1
        return self._free.get()

    def alloc_many(self, count: int) -> Generator[Event, Any, list[HugePageChunk]]:
        """Process helper: allocate ``count`` chunks (may block per chunk)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count > self.num_chunks:
            raise AllocationError(
                f"request for {count} chunks exceeds pool of {self.num_chunks}"
            )
        chunks = []
        for _ in range(count):
            chunk = yield self.alloc()
            chunks.append(chunk)
        return chunks

    def try_alloc(self) -> Optional[HugePageChunk]:
        """Non-blocking allocation; ``None`` when the pool is empty."""
        if len(self._free) == 0:
            return None
        self._outstanding += 1
        event = self._free.get()
        assert event.triggered
        return event.value

    def free(self, chunk: HugePageChunk) -> None:
        """Return a chunk to the pool."""
        if chunk.pool is not self:
            raise AllocationError(f"{chunk!r} does not belong to pool {self.name!r}")
        if self._outstanding <= 0:
            raise AllocationError(f"double free of {chunk!r}")
        chunk.valid_bytes = 0
        chunk.owner = None
        self._outstanding -= 1
        self._free.put(chunk)

    def __repr__(self) -> str:
        return (
            f"<HugePagePool {self.name!r} {self.free_chunks}/{self.num_chunks} "
            f"free x {self.chunk_size}B>"
        )
