"""Memory models: the SPDK hugepage pool and DRAM buffers.

SPDK mandates that every I/O buffer live on hugepages (§III-C of the
paper).  The pool hands out fixed-size *chunks* (the DLFS sample cache is
built from 256 KB chunks by default); exhaustion makes allocators wait,
which back-pressures the read pipeline exactly like the real system.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import AllocationError, ConfigError
from ..sim import Environment, Event, Store, fastpath_enabled

__all__ = ["HugePageChunk", "HugePagePool", "ChunkLedger", "chunk_quotas"]


def chunk_quotas(num_chunks: int, shares: dict[str, float]) -> dict[str, int]:
    """Absolute chunk quotas for fractional shares, never oversubscribed.

    Each share is floored (minimum 1 chunk so every tenant can make
    progress); because flooring never rounds *up* past a share, quotas
    summing to <= 1.0 of the pool always fit.  Oversubscription — from
    shares summing past 1.0, or from many sub-chunk shares each bumped
    to the 1-chunk minimum — raises :class:`ConfigError` up front
    instead of letting tenants deadlock against a pool that cannot hold
    everyone's minimum.
    """
    if num_chunks < 1:
        raise ConfigError("chunk_quotas needs a pool of at least one chunk")
    quotas: dict[str, int] = {}
    for name in sorted(shares):
        share = shares[name]
        if not 0.0 < share <= 1.0:
            raise ConfigError(
                f"cache share for {name!r} must be in (0, 1], got {share}"
            )
        quotas[name] = max(1, int(num_chunks * share))
    total = sum(quotas.values())
    if total > num_chunks:
        raise ConfigError(
            f"cache shares oversubscribe the pool: {total} chunks needed "
            f"for {len(quotas)} tenants, pool holds {num_chunks}"
        )
    return quotas


class ChunkLedger:
    """Per-owner chunk accounting against optional quotas.

    The multi-tenant cache partition (:mod:`repro.tenancy.partition`)
    charges every tenant's sample-cache slots here; ``quota == 0`` means
    unlimited.  Pure bookkeeping — the ledger never touches the pool, so
    it adds nothing to the single-tenant fast path.
    """

    def __init__(self) -> None:
        self._charged: dict[str, int] = {}
        self._quota: dict[str, int] = {}

    def set_quota(self, owner: str, chunks: int) -> None:
        if chunks < 0:
            raise ConfigError(f"quota for {owner!r} must be >= 0")
        self._quota[owner] = chunks

    def quota(self, owner: str) -> int:
        """Chunk quota for ``owner`` (0 = unlimited)."""
        return self._quota.get(owner, 0)

    def used(self, owner: str) -> int:
        return self._charged.get(owner, 0)

    def charge(self, owner: str, chunks: int) -> None:
        self._charged[owner] = self._charged.get(owner, 0) + chunks

    def uncharge(self, owner: str, chunks: int) -> None:
        held = self._charged.get(owner, 0)
        if chunks > held:
            raise AllocationError(
                f"ledger uncharge of {chunks} chunks exceeds {owner!r}'s {held}"
            )
        self._charged[owner] = held - chunks

    def as_dict(self) -> dict[str, dict[str, int]]:
        owners = sorted({*self._charged, *self._quota})
        return {
            o: {"used": self.used(o), "quota": self.quota(o)} for o in owners
        }

    def __repr__(self) -> str:
        return f"<ChunkLedger owners={len(self._charged)}>"


class HugePageChunk:
    """One pinned, physically contiguous buffer from the hugepage pool.

    A plain ``__slots__`` class rather than a dataclass: a 2 GB pool
    materializes 8192 of these per node at mount time, where dataclass
    ``__init__`` overhead is measurable.
    """

    __slots__ = ("index", "size", "pool", "valid_bytes", "owner")

    def __init__(
        self,
        index: int,
        size: int,
        pool: "HugePagePool",
        valid_bytes: int = 0,
        owner: Optional[object] = None,
    ) -> None:
        self.index = index
        self.size = size
        self.pool = pool
        #: Bytes of valid data currently in the chunk (set by the I/O path).
        self.valid_bytes = valid_bytes
        #: Opaque owner tag for debugging (e.g. which cache slot holds it).
        self.owner = owner

    def __repr__(self) -> str:
        return f"<HugePageChunk #{self.index} {self.valid_bytes}/{self.size}B>"


class HugePagePool:
    """Fixed population of equal-size hugepage chunks.

    ``alloc`` blocks (FIFO) when the pool is empty; ``free`` returns a
    chunk.  ``try_alloc`` is the non-blocking variant used by
    opportunistic paths.
    """

    def __init__(
        self,
        env: Environment,
        total_bytes: int,
        chunk_size: int,
        name: str = "hugepages",
    ) -> None:
        if chunk_size <= 0:
            raise ConfigError("chunk_size must be positive")
        if total_bytes < chunk_size:
            raise ConfigError(
                f"pool of {total_bytes} B cannot hold one {chunk_size} B chunk"
            )
        self.env = env
        self.name = name
        self.chunk_size = chunk_size
        self.num_chunks = total_bytes // chunk_size
        self._free = Store(env, name=f"{name}-free")
        if fastpath_enabled():
            # Materialize chunks on demand instead of building the full
            # population up front: a 2 GB pool is 8192 objects at mount
            # time, of which a workload typically touches under 1%.
            # Allocation order is unchanged — the eager pool hands out
            # fresh chunks 0..N-1 before ever reusing a freed one (the
            # free list is FIFO and freed chunks land behind the fresh
            # population), and _materialize front-pushes fresh chunks in
            # exactly that index order until the population is complete.
            #: Next never-materialized chunk index.
            self._fresh = 0
        else:
            for i in range(self.num_chunks):
                self._free.put(HugePageChunk(index=i, size=chunk_size, pool=self))
            self._fresh = self.num_chunks
        self._outstanding = 0

    def _materialize(self) -> None:
        """Fast path: front-push the next fresh chunk onto the free list."""
        self._free._items.appendleft(
            HugePageChunk(index=self._fresh, size=self.chunk_size, pool=self)
        )
        self._fresh += 1

    # -- introspection -------------------------------------------------------
    @property
    def free_chunks(self) -> int:
        return len(self._free) + (self.num_chunks - self._fresh)

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def total_bytes(self) -> int:
        return self.num_chunks * self.chunk_size

    # -- allocation ----------------------------------------------------------
    def alloc(self) -> Event:
        """Blocking allocation; the event's value is a :class:`HugePageChunk`."""
        self._outstanding += 1
        if self._fresh < self.num_chunks:
            self._materialize()
        return self._free.get()

    def alloc_many(self, count: int) -> Generator[Event, Any, list[HugePageChunk]]:
        """Process helper: allocate ``count`` chunks (may block per chunk)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count > self.num_chunks:
            raise AllocationError(
                f"request for {count} chunks exceeds pool of {self.num_chunks}"
            )
        chunks = []
        for _ in range(count):
            chunk = yield self.alloc()
            chunks.append(chunk)
        return chunks

    def try_alloc(self) -> Optional[HugePageChunk]:
        """Non-blocking allocation; ``None`` when the pool is empty."""
        if self._fresh < self.num_chunks:
            self._materialize()
        elif len(self._free) == 0:
            return None
        self._outstanding += 1
        event = self._free.get()
        assert event.triggered
        return event.value

    def free(self, chunk: HugePageChunk) -> None:
        """Return a chunk to the pool."""
        if chunk.pool is not self:
            raise AllocationError(f"{chunk!r} does not belong to pool {self.name!r}")
        if self._outstanding <= 0:
            raise AllocationError(f"double free of {chunk!r}")
        chunk.valid_bytes = 0
        chunk.owner = None
        self._outstanding -= 1
        self._free.put_nowait(chunk)

    def __repr__(self) -> str:
        return (
            f"<HugePagePool {self.name!r} {self.free_chunks}/{self.num_chunks} "
            f"free x {self.chunk_size}B>"
        )
