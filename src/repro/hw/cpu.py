"""CPU model: cores as contended resources.

Every software activity in the simulation — syscalls, metadata walks,
memcpys, busy-poll loops — executes *on a core*.  A thread that blocks on
interrupt-driven I/O releases its core (the kernel path); a thread that
busy-polls keeps the core for the whole wait (the SPDK path).  That
difference is exactly what the paper's CPU-utilization experiment
(Fig 7) measures.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import ConfigError
from ..sim import Environment, Event, Request, Resource
from .platform import CPUSpec

__all__ = ["Core", "CPU", "BoundThread"]


class Core(Resource):
    """One physical core.  Capacity-1 FIFO resource with busy accounting."""

    def __init__(self, env: Environment, index: int, spec: CPUSpec) -> None:
        super().__init__(env, capacity=1, name=f"core{index}")
        self.index = index
        self.spec = spec

    def execute(self, duration: float) -> Generator[Event, Any, None]:
        """Run ``duration`` seconds of computation (acquire/hold/release).

        Use as ``yield from core.execute(t)``.
        """
        if duration < 0:
            raise ValueError(f"negative compute duration: {duration}")
        if duration == 0:
            return
        yield from self.hold(duration)

    def memcpy(self, nbytes: int) -> Generator[Event, Any, None]:
        """Copy ``nbytes`` through this core at the spec'd copy bandwidth."""
        yield from self.execute(nbytes / self.spec.memcpy_bandwidth)


class CPU:
    """The set of cores on one node."""

    def __init__(self, env: Environment, spec: CPUSpec, node_name: str = "") -> None:
        spec.validate()
        self.env = env
        self.spec = spec
        self.node_name = node_name
        self.cores = [Core(env, i, spec) for i in range(spec.cores)]

    def __len__(self) -> int:
        return len(self.cores)

    def core(self, index: int) -> Core:
        """Core by index; raises ConfigError when out of range."""
        if not 0 <= index < len(self.cores):
            raise ConfigError(
                f"core index {index} out of range on node "
                f"{self.node_name!r} with {len(self.cores)} cores"
            )
        return self.cores[index]

    def utilization(self) -> float:
        """Mean utilization across all cores."""
        return sum(c.utilization() for c in self.cores) / len(self.cores)

    def busiest(self) -> Core:
        return max(self.cores, key=lambda c: c.utilization())

    def __repr__(self) -> str:
        return f"<CPU {self.node_name!r} {len(self.cores)} cores>"


class BoundThread:
    """A software thread pinned to one core.

    Provides the two occupancy disciplines the paper contrasts:

    * :meth:`run` — compute segments that occupy the core (both stacks).
    * :meth:`pinned` context — acquire the core once and keep it across
      many segments (the SPDK busy-poll reactor).
    * :meth:`block` — release the core while waiting on an event (the
      kernel interrupt-driven path).
    """

    def __init__(self, core: Core, name: str = "") -> None:
        self.core = core
        self.env = core.env
        self.name = name or f"thread@{core.name}"
        self._held: Optional[Request] = None

    @property
    def holds_core(self) -> bool:
        return self._held is not None

    # -- pinned discipline (busy polling) -----------------------------------
    def acquire(self) -> Generator[Event, Any, None]:
        """Take the core and keep it until :meth:`release` is called."""
        if self._held is not None:
            raise ConfigError(f"{self.name} already holds its core")
        req = self.core.request()
        yield req
        self._held = req

    def release(self) -> None:
        """Give the core back."""
        if self._held is None:
            raise ConfigError(f"{self.name} does not hold its core")
        self.core.release(self._held)
        self._held = None

    def run(self, duration: float) -> Generator[Event, Any, None]:
        """Compute for ``duration``; transparently pinned-or-not."""
        if duration < 0:
            raise ValueError(f"negative compute duration: {duration}")
        if duration == 0:
            return
        if self._held is not None:
            yield self.env.timeout(duration)
        else:
            yield from self.core.execute(duration)

    def delay(self, duration: float) -> Event:
        """One pinned compute segment as a directly yieldable event.

        Equivalent to ``yield from thread.run(duration)`` for a thread
        holding its core, minus one generator frame per segment — the
        reactor charges thousands of doorbell/poll segments per run.
        Callers must skip zero durations themselves (``run`` yields no
        event for them) and must hold the core.
        """
        if duration <= 0:
            raise ValueError(f"delay() needs a positive duration: {duration}")
        if self._held is None:
            raise ConfigError(f"{self.name} does not hold its core")
        return self.env.timeout(duration)

    def memcpy(self, nbytes: int) -> Generator[Event, Any, None]:
        yield from self.run(nbytes / self.core.spec.memcpy_bandwidth)

    # -- blocking discipline (interrupt-driven I/O) --------------------------
    def block(self, event: Event) -> Generator[Event, Any, Any]:
        """Wait for ``event`` with the core released (kernel-style sleep).

        Returns the event's value.  If the thread holds its core, the core
        is released for the duration of the wait and re-acquired after, so
        other threads can run while this one sleeps.
        """
        was_pinned = self._held is not None
        if was_pinned:
            self.release()
        value = yield event
        if was_pinned:
            yield from self.acquire()
        return value
