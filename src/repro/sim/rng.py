"""Named, seeded RNG substreams — the one blessed way to get randomness.

Every random decision in the simulation must come from a generator
constructed here.  ``rng(name, seed)`` is the single entry point the
``simlint`` static pass (:mod:`repro.analysis.simlint`, rule SL105)
recognizes; direct ``np.random.default_rng(...)`` / ``random.Random(...)``
constructions anywhere else in ``src/repro`` are lint errors.

Design rules:

* **The name is an audit handle, not entropy.**  The stream is derived
  from the explicit ``seed`` material only, so renaming a substream (or
  migrating a call site onto this helper) never shifts simulation
  results.  Call sites that need per-site decorrelation fold the site
  into the seed material themselves (e.g. ``[seed, crc32(site)]``), in
  the open, at the call site.
* **No ambient entropy.**  ``seed`` is mandatory-by-default: passing
  ``None`` derives the stream from the *name* alone (stable across
  processes — CRC32 of the name), never from the OS.  There is no way
  to get a wall-clock- or ``os.urandom``-seeded generator here.
* **Every construction is logged.**  The per-process substream log
  (:func:`substream_log`) lets the sanitizer and tests audit which
  streams a run created and how often — a duplicate name with different
  seed material is a smell the tooling can surface.

>>> from repro.sim import rng
>>> g = rng("doctest.stream", 1234)
>>> g2 = rng("doctest.stream", 1234)
>>> float(g.random()) == float(g2.random())
True
"""

from __future__ import annotations

import zlib
from typing import Sequence, Union

import numpy as np

from ..errors import ConfigError

__all__ = ["rng", "derive_seed", "substream_log", "reset_substream_log"]

#: Acceptable seed material: anything numpy's SeedSequence takes.
SeedLike = Union[int, Sequence[int], np.integer, None]

#: Per-process audit log: substream name -> number of constructions.
_SUBSTREAMS: dict[str, int] = {}


def derive_seed(name: str) -> int:
    """Stable integer seed for ``name`` (CRC32 — not ``hash()``, which is
    randomized per process by PYTHONHASHSEED)."""
    return zlib.crc32(name.encode("utf-8"))


def rng(name: str, seed: SeedLike = None) -> np.random.Generator:
    """Construct the named substream seeded from explicit material.

    ``name``
        Dotted audit handle, e.g. ``"fault.nvme.nvme0.media"`` or
        ``"train.sgd.epoch"``.  Recorded in the substream log; does not
        enter the stream derivation.
    ``seed``
        Explicit seed material (an int or a sequence of ints).  ``None``
        derives the seed from the name alone via CRC32 — still fully
        deterministic, just not caller-tunable.
    """
    if not name or not isinstance(name, str):
        raise ConfigError(f"rng substream needs a non-empty name, got {name!r}")
    _SUBSTREAMS[name] = _SUBSTREAMS.get(name, 0) + 1
    if seed is None:
        seed = derive_seed(name)
    return np.random.default_rng(seed)  # simlint: disable=SL105 -- the blessed constructor itself


def substream_log() -> dict[str, int]:
    """Snapshot of the per-process substream construction counts."""
    return dict(_SUBSTREAMS)


def reset_substream_log() -> None:
    """Clear the audit log (test isolation)."""
    _SUBSTREAMS.clear()
