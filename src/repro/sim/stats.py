"""Measurement helpers for simulation experiments.

The benchmark harness reports throughput, latency, and utilization from
these accumulators rather than scraping component internals.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

__all__ = ["Tally", "TimeWeighted", "Counter", "ThroughputMeter", "RecoveryStats"]


class Tally:
    """Streaming summary of observed values (Welford mean/variance).

    Keeps every observation so percentiles are exact; the workloads in
    this repo observe at most a few hundred thousand values per run.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: list[float] = []
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(value)
        n = len(self._values)
        delta = value - self._mean
        self._mean += delta / n
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError(f"tally {self.name!r} is empty")
        return self._mean

    @property
    def variance(self) -> float:
        n = len(self._values)
        if n < 2:
            return 0.0
        return self._m2 / (n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def maximum(self) -> float:
        return max(self._values) if self._values else 0.0

    @property
    def total(self) -> float:
        return float(np.sum(self._values)) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile, ``q`` in [0, 100]; 0.0 for an empty tally."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q!r} outside [0, 100]")
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    def summary(self) -> dict[str, float]:
        """Dense summary dict suitable for reporting."""
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        if not self._values:
            return f"<Tally {self.name!r} empty>"
        return f"<Tally {self.name!r} n={self.count} mean={self.mean:.3g}>"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Used for queue lengths and utilization levels: call :meth:`set`
    whenever the level changes and :meth:`average` at the end.
    """

    def __init__(self, env, initial: float = 0.0, name: str = "") -> None:
        self.env = env
        self.name = name
        self._level = float(initial)
        self._integral = 0.0
        self._start = env.now
        self._last = env.now

    @property
    def level(self) -> float:
        return self._level

    def set(self, level: float) -> None:
        """Record a level change at the current simulated time."""
        now = self.env.now
        self._integral += self._level * (now - self._last)
        self._last = now
        self._level = float(level)

    def add(self, delta: float) -> None:
        self.set(self._level + delta)

    def average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean from construction until ``until`` (default now)."""
        end = self.env.now if until is None else until
        integral = self._integral + self._level * (end - self._last)
        span = end - self._start
        if span <= 0.0:
            return self._level
        return integral / span


class Counter:
    """Monotonic named counters, e.g. cache hits / misses / posted commands."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"<Counter {self._counts!r}>"


# RecoveryStats migrated onto the unified metrics registry (PR 2); the
# import here keeps the historical ``repro.sim.RecoveryStats`` spelling
# and attribute API working unchanged.
from ..obs.metrics import RecoveryStats  # noqa: E402, F401


class ThroughputMeter:
    """Counts discrete completions and converts to a rate over sim time.

    ``start()`` marks the beginning of the measured window (defaults to
    construction time); ``rate()`` is completions per second of simulated
    time since then.
    """

    def __init__(self, env, name: str = "") -> None:
        self.env = env
        self.name = name
        self._t0 = env.now
        self._completions = 0
        self._bytes = 0

    def start(self) -> None:
        """Reset the measurement window to the current time."""
        self._t0 = self.env.now
        self._completions = 0
        self._bytes = 0

    def record(self, nbytes: int = 0, count: int = 1) -> None:
        self._completions += count
        self._bytes += nbytes

    @property
    def completions(self) -> int:
        return self._completions

    @property
    def bytes(self) -> int:
        return self._bytes

    def elapsed(self) -> float:
        return self.env.now - self._t0

    def rate(self) -> float:
        """Completions per second of simulated time."""
        dt = self.elapsed()
        if dt <= 0.0:
            return 0.0
        return self._completions / dt

    def bandwidth(self) -> float:
        """Bytes per second of simulated time."""
        dt = self.elapsed()
        if dt <= 0.0:
            return 0.0
        return self._bytes / dt
