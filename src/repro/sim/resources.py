"""Shared-resource primitives for the DES kernel.

Three primitives cover every contention point in the simulated testbed:

:class:`Resource`
    FIFO semaphore with fixed capacity — CPU cores, NIC directions,
    NVMe channel slots.
:class:`PriorityResource`
    Same, but waiters are served lowest-priority-value first.
:class:`Store`
    Unbounded-or-bounded FIFO queue of items — request queues,
    submission/completion queues.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Generator, Iterable, Optional

from ..errors import ResourceError
from .engine import Environment, Event, audit_register, fastpath_enabled

__all__ = ["Resource", "PriorityResource", "Request", "Store", "Container"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable directly as a yielded event.  Once granted, pass it back to
    :meth:`Resource.release`.
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority


class Resource:
    """A FIFO semaphore with ``capacity`` identical slots.

    >>> def proc(env, core):
    ...     req = core.request()
    ...     yield req
    ...     yield env.timeout(1.0)      # hold the core for 1 s
    ...     core.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._waiters: Deque[Request] = deque()
        # Usage accounting for utilization reporting.
        self._busy_integral = 0.0
        self._last_change = env.now
        audit_register(self)

    # -- accounting ----------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._waiters)

    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += len(self._users) * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Time-weighted mean fraction of capacity in use since t=0."""
        self._account()
        elapsed = self.env.now
        if elapsed <= 0.0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    # -- protocol --------------------------------------------------------------
    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self, priority)
        if len(self._users) < self.capacity and not self._waiters:
            self._grant(req)
        else:
            self._enqueue(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request not in self._users:
            raise ResourceError(
                f"release of a request not holding {self.name or 'resource'}"
            )
        self._account()
        self._users.discard(request)
        self._dispatch()

    def cancel(self, request: Request) -> None:
        """Withdraw a request that has not been granted yet."""
        if request in self._users:
            raise ResourceError("cannot cancel a granted request; release it")
        self._remove_waiter(request)

    # -- queue policy (overridden by PriorityResource) ---------------------------
    def _enqueue(self, req: Request) -> None:
        self._waiters.append(req)

    def _next_waiter(self) -> Optional[Request]:
        return self._waiters.popleft() if self._waiters else None

    def _remove_waiter(self, req: Request) -> None:
        try:
            self._waiters.remove(req)
        except ValueError:
            raise ResourceError("request is not waiting") from None

    def _grant(self, req: Request) -> None:
        if req in self._users or req.triggered:
            # Double-acquire: a request granted twice corrupts the slot
            # accounting (SimSanitizer lifecycle invariant).
            raise ResourceError(
                f"double grant of {req!r} on {self.name or 'resource'}"
            )
        self._account()
        self._users.add(req)
        req.succeed(req)

    def _dispatch(self) -> None:
        while len(self._users) < self.capacity:
            nxt = self._next_waiter()
            if nxt is None:
                break
            self._grant(nxt)

    # -- convenience ------------------------------------------------------------
    def hold(self, duration: float) -> Generator[Event, Any, None]:
        """Process helper: acquire one slot, keep it ``duration``, release.

        Use as ``yield from resource.hold(t)``.  If the caller is thrown
        into (or closed) at any point, the slot is released or the pending
        claim withdrawn.
        """
        req = self.request()
        try:
            yield req
            yield self.env.timeout(duration)
        finally:
            if req in self._users:
                self.release(req)
            elif not req.triggered:
                self.cancel(req)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} {self.count}/{self.capacity} "
            f"({self.queue_length} waiting)>"
        )


class PriorityResource(Resource):
    """A resource whose waiters are served lowest ``priority`` value first.

    Ties are FIFO (stable via an insertion counter).
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = "") -> None:
        super().__init__(env, capacity, name)
        self._heap: list[tuple[float, int, Request]] = []
        self._counter = 0

    def _enqueue(self, req: Request) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (req.priority, self._counter, req))

    def _next_waiter(self) -> Optional[Request]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def _remove_waiter(self, req: Request) -> None:
        for i, (_, _, r) in enumerate(self._heap):
            if r is req:
                self._heap[i] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                return
        raise ResourceError("request is not waiting")

    @property
    def queue_length(self) -> int:
        return len(self._heap)


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any) -> None:
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    __slots__ = ()


class Store:
    """A FIFO queue of arbitrary items with blocking ``get``/``put``.

    ``capacity`` bounds the number of buffered items; ``put`` on a full
    store blocks until a ``get`` makes room.  ``capacity=None`` means
    unbounded (puts always succeed immediately).
    """

    def __init__(
        self,
        env: Environment,
        capacity: Optional[int] = None,
        name: str = "",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()
        #: Snapshot of the kernel mode at construction; see put_nowait.
        self._fastpath = fastpath_enabled()
        audit_register(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def preload(self, items: Iterable[Any]) -> None:
        """Seed buffered items without creating accepted-put events.

        Construction-time bulk loading: a pool that pre-populates
        thousands of free buffers with ``put`` floods the t=0 event
        queue with StorePut events nobody waits on.  ``preload``
        side-steps the event machinery entirely, which is only sound
        while nothing is blocked on the store — it refuses otherwise.
        """
        batch = list(items)
        if self._getters or self._putters:
            raise ResourceError(
                f"{self.name or 'store'}: preload with blocked getters/putters"
            )
        if self.capacity is not None and len(self._items) + len(batch) > self.capacity:
            raise ResourceError(
                f"{self.name or 'store'}: preload of {len(batch)} item(s) "
                f"exceeds capacity {self.capacity}"
            )
        self._items.extend(batch)

    def put_nowait(self, item: Any) -> None:
        """Fire-and-forget ``put`` for callers that discard the event.

        ``put`` on a non-full store accepts the item and serves waiting
        getters *synchronously, inside the call* — the StorePut event it
        returns is already resolved state-wise and exists only so the
        caller may yield it.  When the caller throws it away (the SCQ
        datapath puts thousands per run), the event is pure queue load,
        so the fast-path kernel skips creating it; timing and wakeup
        order of every other event are unchanged.  Under the reference
        kernel, or when the put would block (bounded store full), this
        falls back to ``put`` so behaviour matches the seed exactly.
        """
        if self._fastpath and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            self._items.append(item)
            self._serve_getters()
        else:
            self.put(item)

    def put(self, item: Any) -> StorePut:
        """Append ``item``; the event fires once the item is accepted."""
        event = StorePut(self.env, item)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)
        return event

    def get(self) -> StoreGet:
        """Remove the oldest item; the event's value is the item."""
        event = StoreGet(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self._items:
            self._getters.popleft().succeed(self._items.popleft())
            self._serve_putters()

    def _serve_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            put = self._putters.popleft()
            self._items.append(put.item)
            put.succeed()
            self._serve_getters()

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else self.capacity
        return f"<Store {self.name!r} {len(self._items)}/{cap}>"


class Container:
    """A continuous-quantity pool (e.g. bytes of hugepage memory).

    ``get`` blocks until the requested amount is available; ``put``
    returns quantity.  Waiters are served FIFO; a large request at the
    head blocks smaller ones behind it (no starvation).
    """

    def __init__(
        self,
        env: Environment,
        capacity: float,
        initial: float = 0.0,
        name: str = "",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= initial <= capacity:
            raise ValueError("initial level outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = initial
        self._getters: Deque[tuple[float, Event]] = deque()
        audit_register(self)

    @property
    def level(self) -> float:
        """Currently available quantity."""
        return self._level

    def get(self, amount: float) -> Event:
        """Take ``amount`` from the pool (blocking if unavailable)."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.capacity:
            raise ResourceError(
                f"requested {amount} exceeds container capacity {self.capacity}"
            )
        event = Event(self.env)
        if not self._getters and self._level >= amount:
            self._level -= amount
            event.succeed(amount)
        else:
            self._getters.append((amount, event))
        return event

    def put(self, amount: float) -> None:
        """Return ``amount`` to the pool (never blocks)."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if self._level + amount > self.capacity + 1e-9:
            raise ResourceError("container overflow")
        self._level = min(self.capacity, self._level + amount)
        while self._getters and self._getters[0][0] <= self._level:
            need, event = self._getters.popleft()
            self._level -= need
            event.succeed(need)

    def __repr__(self) -> str:
        return f"<Container {self.name!r} {self._level}/{self.capacity}>"
