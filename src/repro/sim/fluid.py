"""Hybrid-fidelity engine: fluid-flow bulk lanes + event-accurate tagged flows.

The per-event kernel tops out around ~1e6 events/s, so a fleet-scale day
(millions of users, ~1e9 requests) is hours of host time.  This module
adds the second fidelity level the ROADMAP calls for: *bulk* steady-state
traffic advances analytically between epoch boundaries while a seeded
sample of *tagged* flows stays fully event-accurate, populating latency
percentiles, SLO accounting, and traces from real events.

The load-bearing trick is the **anchored backlog closed form**.  A lane's
queue depth is

    B(t) = max(0, B_a + (r - mu) * (t - t_a))

where ``(t_a, B_a)`` is the last *anchor* and ``r``/``mu`` are the bulk
inflow and bottleneck service rates.  Anchors move only at epoch
boundaries (rate changes, faults) and tagged-flow arrivals (impulses) —
*identically in both fidelity modes*.  Bulk arrivals are charge-only
reads of the closed form: in all-event mode each bulk request is a real
kernel event that evaluates ``wait_at(t)``; in hybrid mode an entire
epoch of them is charged by one arithmetic-series sum over the same
expression.  Because the anchor trajectory is mode-independent, tagged
flows observe bit-identical waits in both modes — that is the
equivalence obligation ``equivalence_check`` enforces (exact sha1 of
tagged sample order and latencies; integer-exact bulk request/byte
counters; aggregate latency sums within :data:`EQUIVALENCE_EPSILON`, the
only place the series association differs from per-event summation).

Bulk arrival *instants* are deterministic, not sampled: a rate-envelope
segment of duration ``d`` and rate ``r`` realizes ``round(d * r)``
arrivals at the mid-riser grid ``t_k = start + (k + 0.5) * gap``.  Both
modes share :class:`ArrivalSchedule`, so per-epoch counts split exactly
at any boundary (``index_at`` is the shared inverse of the grid).

Fluid code never reads ``env.now``: epoch bodies take the epoch bounds
``(t0, t1)`` as arguments (lint rule SL111 enforces this), so the math
cannot silently couple to event-processing order.
"""

from __future__ import annotations

import hashlib
import math
import zlib
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .rng import rng as sim_rng

__all__ = [
    "EQUIVALENCE_EPSILON",
    "Segment",
    "RateEnvelope",
    "ArrivalSchedule",
    "FluidLane",
    "TaggedFlow",
    "TaggedRecord",
    "tag_flows",
    "flow_arrival_times",
    "ScaleSpec",
    "ScaleReport",
    "run_scale",
    "equivalence_check",
    "tagged_digests",
]

#: Declared tolerance for aggregate (bulk) latency sums between the
#: hybrid and all-event runs.  Everything else — tagged digests, request
#: and byte counters — must match exactly; only the association order of
#: the latency summation differs (arithmetic series vs per-event adds).
EQUIVALENCE_EPSILON = 1e-9


# ---------------------------------------------------------------------------
# Rate envelopes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Segment:
    """One piecewise-constant piece of a rate envelope: [start, end)."""

    start: float
    end: float
    #: Aggregate request arrival rate over the piece, requests/second.
    rate: float
    #: Bytes per request.
    size: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(f"segment end {self.end} <= start {self.start}")
        if self.rate < 0:
            raise ConfigError(f"segment rate {self.rate} < 0")
        if self.size <= 0:
            raise ConfigError(f"segment size {self.size} <= 0")


class RateEnvelope:
    """A piecewise-constant open-loop arrival-rate profile.

    Segments must be sorted and contiguous (each starts where the
    previous ends); zero-rate segments express idle/inactive windows.
    """

    __slots__ = ("segments",)

    def __init__(self, segments: Sequence[Segment]) -> None:
        segs = tuple(segments)
        if not segs:
            raise ConfigError("rate envelope needs at least one segment")
        for prev, cur in zip(segs, segs[1:]):
            if cur.start != prev.end:
                raise ConfigError(
                    f"envelope segments not contiguous at {prev.end} -> {cur.start}"
                )
        self.segments = segs

    @property
    def start(self) -> float:
        return self.segments[0].start

    @property
    def end(self) -> float:
        return self.segments[-1].end

    def boundaries(self) -> Tuple[float, ...]:
        """Every segment edge (epoch boundaries for the driver)."""
        return tuple(s.start for s in self.segments) + (self.end,)

    def rate_at(self, t: float) -> float:
        """Rate of the segment covering ``t`` (half-open [start, end))."""
        for seg in self.segments:
            if seg.start <= t < seg.end:
                return seg.rate
        return 0.0

    def bytes_rate_at(self, t: float) -> float:
        """Byte inflow rate at ``t`` (requests/s * bytes/request)."""
        for seg in self.segments:
            if seg.start <= t < seg.end:
                return seg.rate * seg.size
        return 0.0

    @classmethod
    def diurnal(
        cls,
        base_rate: float,
        size: int,
        day: float,
        segments: int = 24,
        amplitude: float = 0.5,
        bumps: Sequence[Tuple[float, float, float]] = (),
        active: Optional[Tuple[float, float]] = None,
    ) -> "RateEnvelope":
        """A day-long diurnal profile with optional flash-crowd bumps.

        ``base_rate`` is the midline; the sinusoid troughs at t=0 and
        peaks at midday.  ``bumps`` are ``(start_frac, dur_frac, mult)``
        multipliers on top of the diurnal shape (the flash crowds).
        ``active`` clips the profile to a sub-window (tenant arrival and
        departure); outside it the rate is zero.
        """
        if day <= 0 or segments < 1:
            raise ConfigError("diurnal envelope needs day > 0, segments >= 1")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigError(f"amplitude {amplitude} outside [0, 1)")
        lo, hi = active if active is not None else (0.0, day)
        edges = [day * i / segments for i in range(segments + 1)]
        edges += [lo, hi]
        for start_frac, dur_frac, _ in bumps:
            edges.append(day * start_frac)
            edges.append(day * (start_frac + dur_frac))
        cut = sorted(e for e in edges if 0.0 <= e <= day)
        boundaries: List[float] = []
        for e in cut:
            if not boundaries or e > boundaries[-1]:
                boundaries.append(e)
        if boundaries[0] > 0.0:
            boundaries.insert(0, 0.0)
        if boundaries[-1] < day:
            boundaries.append(day)
        pieces = []
        for a, b in zip(boundaries, boundaries[1:]):
            mid = 0.5 * (a + b)
            if not (lo <= mid < hi):
                pieces.append(Segment(a, b, 0.0, size))
                continue
            mult = 1.0 + amplitude * math.sin(2.0 * math.pi * mid / day - 0.5 * math.pi)
            for start_frac, dur_frac, bump_mult in bumps:
                if day * start_frac <= mid < day * (start_frac + dur_frac):
                    mult *= bump_mult
            pieces.append(Segment(a, b, base_rate * mult, size))
        return cls(pieces)


# ---------------------------------------------------------------------------
# Deterministic bulk arrival schedules
# ---------------------------------------------------------------------------

class _SchedSeg:
    """One envelope segment realized as an arrival grid."""

    __slots__ = ("start", "end", "count", "gap", "size")

    def __init__(self, start: float, end: float, count: int, size: int) -> None:
        self.start = start
        self.end = end
        self.count = count
        self.gap = (end - start) / count if count else 0.0
        self.size = size


class ArrivalSchedule:
    """Evenly-spaced arrivals realizing ``fraction`` of an envelope.

    A segment of duration ``d`` at effective rate ``r`` yields
    ``round(d * r)`` arrivals at ``t_k = start + (k + 0.5) * gap`` —
    strictly interior to the segment, so an epoch boundary (always a
    segment edge or an anchor instant) never lands *on* an arrival.
    The hybrid and all-event modes share one schedule object, which is
    what makes per-interval request counts split integer-exactly.
    """

    __slots__ = ("segments", "total")

    def __init__(self, envelope: RateEnvelope, fraction: float = 1.0) -> None:
        if fraction < 0:
            raise ConfigError(f"schedule fraction {fraction} < 0")
        segs: List[_SchedSeg] = []
        total = 0
        for seg in envelope.segments:
            dur = seg.end - seg.start
            count = int(dur * seg.rate * fraction + 0.5)
            segs.append(_SchedSeg(seg.start, seg.end, count, seg.size))
            total += count
        self.segments = tuple(segs)
        self.total = total

    @staticmethod
    def _index_at(seg: _SchedSeg, t: float) -> int:
        """First arrival index ``k`` with ``t_k >= t`` (clamped).

        Exact inverse of the ``t_k = start + (k + 0.5) * gap`` grid:
        the division round-trip can land one off for non-dyadic gaps,
        so the candidate is snapped against the grid expression itself
        (the one :meth:`arrivals_between` emits).  Without the snap, a
        window cut through an arrival instant could count it twice or
        drop it, and per-interval counts would stop telescoping.
        """
        if seg.count == 0:
            return 0
        k = int(math.ceil((t - seg.start) / seg.gap - 0.5))
        if k < 0:
            k = 0
        elif k > seg.count:
            k = seg.count
        while k > 0 and seg.start + (k - 0.5) * seg.gap >= t:
            k -= 1
        while k < seg.count and seg.start + (k + 0.5) * seg.gap < t:
            k += 1
        return k

    def count_between(self, a: float, b: float) -> int:
        """Arrivals with ``a <= t_k < b``."""
        n = 0
        for seg in self.segments:
            if seg.end <= a or seg.start >= b or seg.count == 0:
                continue
            n += self._index_at(seg, b) - self._index_at(seg, a)
        return n

    def arrivals_between(self, a: float, b: float) -> Iterator[Tuple[float, int]]:
        """Yield ``(t_k, size)`` for every arrival in ``[a, b)``."""
        for seg in self.segments:
            if seg.end <= a or seg.start >= b or seg.count == 0:
                continue
            for k in range(self._index_at(seg, a), self._index_at(seg, b)):
                yield seg.start + (k + 0.5) * seg.gap, seg.size


# ---------------------------------------------------------------------------
# The fluid lane
# ---------------------------------------------------------------------------

class FluidLane:
    """One service lane (NVMe -> fabric -> transform) with a fluid model.

    ``stages`` is a sequence of ``(name, bytes_per_second)`` service
    stages; the bottleneck ``mu = min(rates)`` drains the backlog, and a
    request's no-queue latency is ``overhead + sum(size / rate_i)``.

    The lane is *registered* with its environment: after each
    ``env.run_epoch(until)`` the kernel calls :meth:`epoch_end` with the
    epoch bounds, and the lane charges the epoch's bulk arrivals
    analytically (unless the window was covered by real events — fault
    windows in hybrid mode, everything in all-event mode).
    """

    def __init__(
        self,
        env,
        name: str,
        stages: Sequence[Tuple[str, float]],
        overhead: float = 0.0,
        start: float = 0.0,
        registry=None,
    ) -> None:
        if not stages:
            raise ConfigError(f"lane {name!r} needs at least one stage")
        self.env = env
        self.name = name
        self.stages = tuple((str(n), float(r)) for n, r in stages)
        for stage_name, rate in self.stages:
            if rate <= 0:
                raise ConfigError(
                    f"lane {name!r} stage {stage_name!r} rate {rate} <= 0"
                )
        self.mu = min(rate for _, rate in self.stages)
        self.overhead = float(overhead)
        #: Bulk arrival schedules feeding this lane (set by the driver).
        self.schedules: List[ArrivalSchedule] = []
        #: Bulk counters (events + analytic charges combined).
        self.requests = 0
        self.bytes = 0
        self.latency_sum = 0.0
        #: The analytically-charged share of the bulk counters.
        self.fluid_requests = 0
        self.fluid_bytes = 0
        self.fluid_latency_sum = 0.0
        #: Tagged-flow counters (always event-charged, both modes).
        self.tagged_requests = 0
        self.tagged_bytes = 0
        self.tagged_latency_sum = 0.0
        #: Bulk before this instant is charged by real events (hybrid
        #: fault windows set it; all-event mode pins it to +inf).
        self.evented_until = float(start)
        #: Service is down before this instant (waits include the gap).
        self.outage_until = float(start)
        self._inflow = 0.0
        #: Anchor history for the current epoch: (t, backlog, net rate).
        self._marks: List[Tuple[float, float, float]] = [
            (float(start), 0.0, -self.mu)
        ]
        self._registry = registry
        if registry is not None and registry.enabled:
            prefix = f"fluid.lane.{name}."
            registry.mark_fluid(prefix + "requests")
            registry.mark_fluid(prefix + "bytes")
        env.register_lane(self)

    # -- closed-form state -------------------------------------------------
    def backlog_at(self, t: float) -> float:
        """Queue depth in bytes at ``t`` (>= the last anchor)."""
        ta, ba, net = self._marks[-1]
        b = ba + net * (t - ta)
        return b if b > 0.0 else 0.0

    def wait_at(self, t: float) -> float:
        """Queueing delay seen by an arrival at ``t``."""
        w = self.backlog_at(t) / self.mu
        if t < self.outage_until:
            w += self.outage_until - t
        return w

    def base_latency(self, nbytes: int) -> float:
        """No-queue pipeline latency for one request of ``nbytes``."""
        total = self.overhead
        for _, rate in self.stages:
            total += nbytes / rate
        return total

    # -- anchor transitions (epoch boundaries + tagged impulses) -----------
    def _append_anchor(self, t: float, backlog: float, net: float) -> None:
        if self._marks[-1][0] == t:
            self._marks[-1] = (t, backlog, net)
        else:
            self._marks.append((t, backlog, net))

    def set_inflow(self, t: float, rate: float) -> None:
        """Re-anchor with a new bulk byte inflow rate (epoch boundary)."""
        self._inflow = float(rate)
        mu_eff = 0.0 if t < self.outage_until else self.mu
        self._append_anchor(t, self.backlog_at(t), self._inflow - mu_eff)

    def set_outage(self, t: float, until: float) -> None:
        """Service outage over ``[t, until)``: backlog fills undrained."""
        if until <= t:
            raise ConfigError(f"outage until {until} <= start {t}")
        self.outage_until = float(until)
        self.set_inflow(t, self._inflow)

    def clear_outage(self, t: float) -> None:
        """Service resumed at ``t`` (an epoch boundary >= outage end)."""
        self.set_inflow(t, self._inflow)

    # -- charging ----------------------------------------------------------
    def offer(self, t: float, nbytes: int, tagged: bool = False) -> float:
        """Charge one request arriving at ``t``; returns its latency.

        Bulk offers are charge-only reads of the closed form (they never
        move the anchor — the envelope inflow already accounts for their
        mass).  Tagged offers are impulses: their bytes enter the
        backlog and delay everything behind them, in both modes.
        """
        lat = self.wait_at(t) + self.base_latency(nbytes)
        if tagged:
            net = self._marks[-1][2]
            self._append_anchor(t, self.backlog_at(t) + nbytes, net)
            self.tagged_requests += 1
            self.tagged_bytes += nbytes
            self.tagged_latency_sum += lat
        else:
            self.requests += 1
            self.bytes += nbytes
            self.latency_sum += lat
        return lat

    # -- the fluid epoch body ---------------------------------------------
    def epoch_end(self, t0: float, t1: float) -> None:
        """Close the epoch ``[t0, t1)``: charge bulk analytically.

        Called by :meth:`Environment.run_epoch`.  Takes the epoch bounds
        as arguments — fluid code must never read ``env.now`` (SL111).
        """
        a = t0 if t0 >= self.evented_until else self.evented_until
        if a < t1:
            self._advance(a, t1)
        net = self._marks[-1][2]
        self._marks = [(t1, self.backlog_at(t1), net)]
        registry = self._registry
        if registry is not None and registry.enabled:
            prefix = f"fluid.lane.{self.name}."
            registry.counter(prefix + "requests").value = self.fluid_requests
            registry.counter(prefix + "bytes").value = self.fluid_bytes
            registry.gauge(prefix + "backlog").set(self.backlog_at(t1))

    def _advance(self, t0: float, t1: float) -> None:
        """Charge every bulk arrival in ``[t0, t1)`` in closed form."""
        marks = self._marks
        for i, (ta, ba, net) in enumerate(marks):
            lo = t0 if t0 >= ta else ta
            hi = marks[i + 1][0] if i + 1 < len(marks) else t1
            if hi > t1:
                hi = t1
            if hi <= lo:
                continue
            for sched in self.schedules:
                self._charge_interval(sched, lo, hi, ta, ba, net)

    def _charge_interval(
        self,
        sched: ArrivalSchedule,
        a: float,
        b: float,
        ta: float,
        ba: float,
        net: float,
    ) -> None:
        """Series-sum the waits of ``sched``'s arrivals in ``[a, b)``.

        ``(ta, ba, net)`` is the anchor in force over the whole interval
        (the caller splits at anchor instants), so each arrival's wait is
        ``max(0, ba + net*(t_k - ta)) / mu`` plus the outage gap — both
        linear in ``t_k``, hence exactly summable as arithmetic series.
        """
        mu = self.mu
        out = self.outage_until
        for seg in sched.segments:
            if seg.end <= a or seg.start >= b or seg.count == 0:
                continue
            k_lo = ArrivalSchedule._index_at(seg, a)
            k_hi = ArrivalSchedule._index_at(seg, b)
            n = k_hi - k_lo
            if n <= 0:
                continue
            t_first = seg.start + (k_lo + 0.5) * seg.gap
            base = self.base_latency(seg.size)
            wait_first = (ba + net * (t_first - ta)) / mu
            dwait = net * seg.gap / mu
            # Backlog clamps at zero: count the leading arrivals that
            # still see a positive backlog (it only crosses downward —
            # anchors always start with backlog >= 0).
            if wait_first <= 0.0:
                m = 0
            elif dwait >= 0.0:
                m = n
            else:
                m = math.ceil(wait_first / -dwait)
                if m > n:
                    m = n
            wait_sum = m * wait_first + dwait * (m * (m - 1) // 2)
            if b <= out:
                # Entire interval inside the outage (outage edges are
                # epoch boundaries, so intervals never straddle them).
                t_sum = n * t_first + seg.gap * (n * (n - 1) // 2)
                wait_sum += n * out - t_sum
            self.requests += n
            self.bytes += n * seg.size
            self.latency_sum += wait_sum + n * base
            self.fluid_requests += n
            self.fluid_bytes += n * seg.size
            self.fluid_latency_sum += wait_sum + n * base


# ---------------------------------------------------------------------------
# Tagged flows
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TaggedRecord:
    """One event-accurate tagged request, as observed."""

    tenant: str
    flow: int
    seq: int
    lane: str
    t: float
    latency: float


@dataclass(frozen=True)
class TaggedFlow:
    """One per-user flow sampled to stay fully event-accurate."""

    tenant: str
    flow_id: int
    lane_index: int
    size: int
    times: Tuple[float, ...]


def tag_flows(tenant: str, flows: int, k: int, seed: int) -> Tuple[int, ...]:
    """Seeded choice of ``k`` flow ids (of ``flows``) to tag for ``tenant``.

    Drawn from the ``fluid.tag.<tenant>`` substream so the tagged set is
    a pure function of (tenant, seed) — identical in both fidelity modes
    and stable under any event reordering.
    """
    if flows <= 0 or k < 0:
        raise ConfigError(f"tag_flows: flows={flows}, k={k} out of range")
    if k >= flows:
        return tuple(range(flows))
    stream = sim_rng(
        f"fluid.tag.{tenant}", [seed, zlib.crc32(tenant.encode("utf-8"))]
    )
    picked = stream.choice(flows, size=k, replace=False)
    return tuple(sorted(int(i) for i in picked))


def flow_arrival_times(
    envelope: RateEnvelope,
    flows: int,
    tenant: str,
    flow_id: int,
    seed: int,
) -> Tuple[float, ...]:
    """Poisson arrival instants for one flow under a piecewise-constant rate.

    Standard inversion: unit-exponential increments consumed against the
    per-flow rate ``segment.rate / flows``, carrying unused mass across
    segment edges.  A pure function of the substream, so hybrid and
    all-event runs see bit-identical tagged timelines.
    """
    if flows <= 0:
        raise ConfigError(f"flow_arrival_times: flows={flows} <= 0")
    stream = sim_rng(
        f"fluid.flow.{tenant}.{flow_id}",
        [seed, zlib.crc32(tenant.encode("utf-8")), flow_id],
    )
    times: List[float] = []
    pending = float(stream.exponential(1.0))
    for seg in envelope.segments:
        rate = seg.rate / flows
        if rate <= 0.0:
            continue
        t = seg.start
        while True:
            dt = pending / rate
            if t + dt >= seg.end:
                pending -= (seg.end - t) * rate
                break
            t += dt
            times.append(t)
            pending = float(stream.exponential(1.0))
    return tuple(times)


def tagged_digests(records: Sequence[TaggedRecord]) -> Tuple[str, str]:
    """(sample-order sha1, latency sha1) over the tagged record stream.

    Latencies hash via ``float.hex`` — bit-exact, no repr rounding.
    """
    order = hashlib.sha1()
    lat = hashlib.sha1()
    for r in records:
        order.update(f"{r.tenant}:{r.flow}:{r.seq}:{r.lane}\n".encode("utf-8"))
        lat.update(f"{r.t.hex()}:{r.latency.hex()}\n".encode("utf-8"))
    return order.hexdigest(), lat.hexdigest()


# ---------------------------------------------------------------------------
# The fleet-scale scenario
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScaleSpec:
    """A fleet-scale diurnal day: cohorts of users over fluid lanes.

    Times in ``bumps``/``churn``/``faults``/``event_window`` are
    *fractions of the day*, so a downscaled slice (``sliced``) keeps the
    same shape.
    """

    users: int = 1_000_000
    cohorts: int = 8
    day: float = 86400.0
    lanes: int = 8
    #: Open-loop request rate per user at the diurnal midline.
    rate_per_user: float = 0.02
    sample_bytes: int = 262144
    #: K: tagged (fully event-accurate) flows per cohort.
    tagged_per_cohort: int = 4
    seed: int = 42
    diurnal_segments: int = 24
    amplitude: float = 0.5
    #: Flash crowds: (start_frac, dur_frac, rate multiplier).
    bumps: Tuple[Tuple[float, float, float], ...] = (
        (0.38, 0.02, 3.0),
        (0.80, 0.015, 2.5),
    )
    #: Tenant churn: (cohort index, join_frac, leave_frac).
    churn: Tuple[Tuple[int, float, float], ...] = ((7, 0.30, 0.90),)
    #: Lane outages: (lane index, down_frac, up_frac).
    faults: Tuple[Tuple[int, float, float], ...] = ((0, 0.55, 0.56),)
    #: Forced event-fidelity window after each fault/churn boundary,
    #: as a fraction of the day.
    event_window: float = 0.002
    #: SLO bound on tagged request latency, seconds.
    slo: float = 0.01
    #: Optional transform stage appended to every lane, bytes/second
    #: (0 = storage + fabric only).
    xform_rate: float = 0.0

    def validate(self) -> None:
        if self.users < self.cohorts or self.cohorts < 1:
            raise ConfigError("need users >= cohorts >= 1")
        if self.lanes < 1 or self.day <= 0 or self.rate_per_user <= 0:
            raise ConfigError("need lanes >= 1, day > 0, rate_per_user > 0")
        if self.tagged_per_cohort < 1:
            raise ConfigError("need tagged_per_cohort >= 1 (the accurate set)")
        for idx, join, leave in self.churn:
            if not (0 <= idx < self.cohorts and 0.0 <= join < leave <= 1.0):
                raise ConfigError(f"bad churn entry {(idx, join, leave)}")
        for idx, down, up in self.faults:
            if not (0 <= idx < self.lanes and 0.0 <= down < up <= 1.0):
                raise ConfigError(f"bad fault entry {(idx, down, up)}")

    def sliced(self, users: int, day: float) -> "ScaleSpec":
        """The downscaled equivalence slice: same shape, smaller fleet."""
        return replace(self, users=users, day=day)


@dataclass
class ScaleReport:
    """Everything one ``run_scale`` produced."""

    mode: str
    spec: ScaleSpec
    sim_time: float
    events_scheduled: int
    bulk_requests: int = 0
    bulk_bytes: int = 0
    bulk_latency_sum: float = 0.0
    fluid_requests: int = 0
    fluid_bytes: int = 0
    tagged: List[TaggedRecord] = field(default_factory=list)
    lanes: List[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def order_digest(self) -> str:
        return tagged_digests(self.tagged)[0]

    @property
    def latency_digest(self) -> str:
        return tagged_digests(self.tagged)[1]

    @property
    def elide_ratio(self) -> float:
        """Fraction of bulk requests charged without a kernel event."""
        return self.fluid_requests / self.bulk_requests if self.bulk_requests else 0.0

    def tagged_percentiles(self) -> dict:
        """Exact (nearest-rank) latency percentiles of the tagged set."""
        lats = sorted(r.latency for r in self.tagged)
        if not lats:
            return {"count": 0}
        def rank(p: float) -> float:
            i = math.ceil(p * len(lats)) - 1
            return lats[max(0, min(i, len(lats) - 1))]
        return {
            "count": len(lats),
            "p50": rank(0.50),
            "p90": rank(0.90),
            "p99": rank(0.99),
            "p999": rank(0.999),
            "max": lats[-1],
            "slo_violations": sum(1 for v in lats if v > self.spec.slo),
        }

    def summary(self) -> dict:
        out = {
            "mode": self.mode,
            "users": self.spec.users,
            "day": self.spec.day,
            "lanes": len(self.lanes),
            "sim_time": self.sim_time,
            "events_scheduled": self.events_scheduled,
            "bulk_requests": self.bulk_requests,
            "bulk_bytes": self.bulk_bytes,
            "fluid_requests": self.fluid_requests,
            "elide_ratio": self.elide_ratio,
            "order_digest": self.order_digest,
            "latency_digest": self.latency_digest,
            "tagged": self.tagged_percentiles(),
        }
        return out


def _cohort_envelopes(spec: ScaleSpec) -> List[Tuple[str, RateEnvelope, int]]:
    """Per-cohort (name, envelope, flows) with churn windows applied."""
    flows = spec.users // spec.cohorts
    churn_by_cohort = {idx: (join, leave) for idx, join, leave in spec.churn}
    out = []
    for c in range(spec.cohorts):
        active = None
        window = churn_by_cohort.get(c)
        if window is not None:
            active = (window[0] * spec.day, window[1] * spec.day)
        envelope = RateEnvelope.diurnal(
            base_rate=flows * spec.rate_per_user,
            size=spec.sample_bytes,
            day=spec.day,
            segments=spec.diurnal_segments,
            amplitude=spec.amplitude,
            bumps=spec.bumps,
            active=active,
        )
        out.append((f"cohort{c}", envelope, flows))
    return out


def _lane_stages(spec: ScaleSpec) -> Tuple[Tuple[str, float], ...]:
    """Service stages for one lane, from the hardware/transfer models."""
    from ..cluster.node import fluid_lane_stages
    stages = list(fluid_lane_stages())
    if spec.xform_rate > 0.0:
        stages.append(("xform", float(spec.xform_rate)))
    return tuple(stages)


def _bulk_emitter(env, lane: FluidLane, sched: ArrivalSchedule,
                  start: float, end: float):
    """All-event bulk: one real kernel event per scheduled arrival."""
    for t_k, size in sched.arrivals_between(start, end):
        delay = t_k - env.now
        if delay > 0.0:
            yield env.timeout(delay)
        lane.offer(t_k, size)


def _tagged_process(env, lane: FluidLane, flow: TaggedFlow,
                    records: List[TaggedRecord]):
    """One tagged flow: every request is a real, traced kernel event."""
    seq = 0
    for t in flow.times:
        delay = t - env.now
        if delay > 0.0:
            yield env.timeout(delay)
        lat = lane.offer(t, flow.size, tagged=True)
        records.append(TaggedRecord(
            tenant=flow.tenant, flow=flow.flow_id, seq=seq,
            lane=lane.name, t=t, latency=lat,
        ))
        seq += 1


def _boundaries(spec: ScaleSpec, cohorts=None) -> List[float]:
    """Epoch boundaries: envelope edges, faults, churn, window ends."""
    edges = [0.0, spec.day]
    if cohorts is None:
        cohorts = _cohort_envelopes(spec)
    for _, envelope, _ in cohorts:
        edges.extend(envelope.boundaries())
    window = spec.event_window * spec.day
    forcing = []
    for _, down, up in spec.faults:
        forcing.extend([down * spec.day, up * spec.day])
    for _, join, leave in spec.churn:
        forcing.extend([join * spec.day, leave * spec.day])
    edges.extend(forcing)
    edges.extend(t + window for t in forcing if t + window < spec.day)
    cut = sorted(e for e in edges if 0.0 <= e <= spec.day)
    out: List[float] = []
    for e in cut:
        if not out or e > out[-1]:
            out.append(e)
    return out


def run_scale(
    spec: ScaleSpec,
    mode: str = "hybrid",
    registry=None,
    envelopes=None,
) -> ScaleReport:
    """Simulate the fleet-scale day at the requested fidelity.

    ``mode="hybrid"`` advances bulk lanes analytically between epoch
    boundaries (faults and churn force bounded event windows);
    ``mode="event"`` emits every bulk arrival as a kernel event.  Both
    share the anchor trajectory, schedules, and tagged substreams, so
    tagged results are bit-identical (see :func:`equivalence_check`).

    ``envelopes`` overrides the built-in diurnal cohort envelopes with
    explicit ``(name, RateEnvelope, flows)`` triples — the scenario DSL
    compiles its phase timelines into these.  Each envelope must span
    exactly ``[0, spec.day]``.
    """
    if mode not in ("hybrid", "event"):
        raise ConfigError(f"unknown scale mode {mode!r}")
    spec.validate()
    if envelopes is not None:
        for name, envelope, flows in envelopes:
            if envelope.start != 0.0 or envelope.end != spec.day:
                raise ConfigError(
                    f"cohort {name!r}: envelope spans "
                    f"[{envelope.start}, {envelope.end}], expected [0, {spec.day}]"
                )
            if flows < 1:
                raise ConfigError(f"cohort {name!r}: flows {flows} < 1")
    from .engine import Environment
    env = Environment()
    stages = _lane_stages(spec)
    lanes = [
        FluidLane(env, f"lane{i}", stages, registry=registry)
        for i in range(spec.lanes)
    ]
    cohorts = list(envelopes) if envelopes is not None else _cohort_envelopes(spec)
    records: List[TaggedRecord] = []

    # Bulk schedules: each cohort's non-tagged mass, split evenly over
    # lanes (the front-end balancer's fluid share).
    from ..cluster.serving import fluid_bulk_shares
    shares = fluid_bulk_shares(spec.lanes)
    lane_scheds: List[List[ArrivalSchedule]] = [[] for _ in lanes]
    for name, envelope, flows in cohorts:
        k = min(spec.tagged_per_cohort, flows)
        bulk_frac = (flows - k) / flows
        for li, share in enumerate(shares):
            sched = ArrivalSchedule(envelope, fraction=bulk_frac * share)
            lane_scheds[li].append(sched)
            lanes[li].schedules.append(sched)

    # Tagged flows: seeded choice per cohort, round-robin over lanes.
    for name, envelope, flows in cohorts:
        k = min(spec.tagged_per_cohort, flows)
        for j, flow_id in enumerate(tag_flows(name, flows, k, spec.seed)):
            flow = TaggedFlow(
                tenant=name,
                flow_id=flow_id,
                lane_index=j % spec.lanes,
                size=spec.sample_bytes,
                times=flow_arrival_times(
                    envelope, flows, name, flow_id, spec.seed
                ),
            )
            lane = lanes[flow.lane_index]
            env.process(
                _tagged_process(env, lane, flow, records),
                name=f"tagged.{name}.{flow_id}",
            )

    if mode == "event":
        for lane in lanes:
            lane.evented_until = math.inf
        for li, lane in enumerate(lanes):
            for sched in lane_scheds[li]:
                env.process(
                    _bulk_emitter(env, lane, sched, 0.0, spec.day),
                    name=f"bulk.{lane.name}",
                )

    window = spec.event_window * spec.day
    fault_down = {down * spec.day: (idx, up * spec.day)
                  for idx, down, up in spec.faults}
    fault_up = {up * spec.day: idx for idx, down, up in spec.faults}
    churn_edges = []
    for _, join, leave in spec.churn:
        churn_edges.extend([join * spec.day, leave * spec.day])

    edges = _boundaries(spec, cohorts)
    for a, b in zip(edges, edges[1:]):
        down = fault_down.get(a)
        if down is not None:
            lanes[down[0]].set_outage(a, down[1])
        up = fault_up.get(a)
        if up is not None:
            lanes[up].clear_outage(a)
        for li, lane in enumerate(lanes):
            inflow = 0.0
            for sname, envelope, flows in cohorts:
                k = min(spec.tagged_per_cohort, flows)
                inflow += (
                    envelope.bytes_rate_at(a) * ((flows - k) / flows) * shares[li]
                )
            lane.set_inflow(a, inflow)
        if mode == "hybrid":
            # Fault/churn boundaries force a bounded event-fidelity
            # window on the affected lanes: real bulk events, no
            # analytic charging, so transients are event-accurate.
            affected = []
            if down is not None:
                affected = [down[0]]
            elif up is not None:
                affected = [up]
            elif a in churn_edges:
                affected = list(range(spec.lanes))
            for li in affected:
                w_end = a + window
                if w_end > spec.day:
                    w_end = spec.day
                lane = lanes[li]
                if w_end > lane.evented_until:
                    lane.evented_until = w_end
                for sched in lane_scheds[li]:
                    env.process(
                        _bulk_emitter(env, lane, sched, a, w_end),
                        name=f"bulkwin.{lane.name}",
                    )
        env.run_epoch(until=b)
    env.run()

    report = ScaleReport(
        mode=mode,
        spec=spec,
        sim_time=env.now,
        events_scheduled=env._eid,
        tagged=records,
    )
    for lane in lanes:
        report.bulk_requests += lane.requests
        report.bulk_bytes += lane.bytes
        report.bulk_latency_sum += lane.latency_sum
        report.fluid_requests += lane.fluid_requests
        report.fluid_bytes += lane.fluid_bytes
        report.lanes.append({
            "name": lane.name,
            "requests": lane.requests,
            "bytes": lane.bytes,
            "latency_sum": lane.latency_sum,
            "fluid_requests": lane.fluid_requests,
            "fluid_bytes": lane.fluid_bytes,
            "tagged_requests": lane.tagged_requests,
            "tagged_latency_sum": lane.tagged_latency_sum,
        })
    if registry is not None and registry.enabled:
        report.metrics = registry.dump()
    return report


def equivalence_check(spec: ScaleSpec, envelopes=None) -> dict:
    """The tagged-flow equivalence obligation, on one spec.

    Runs both fidelity modes and demands: exact tagged sample-order and
    latency digests, integer-exact per-lane bulk request/byte counters,
    and aggregate bulk latency sums within :data:`EQUIVALENCE_EPSILON`
    (relative).  Returns a JSON-able verdict.
    """
    hybrid = run_scale(spec, mode="hybrid", envelopes=envelopes)
    event = run_scale(spec, mode="event", envelopes=envelopes)
    failures: List[str] = []
    if hybrid.order_digest != event.order_digest:
        failures.append("tagged sample-order digest mismatch")
    if hybrid.latency_digest != event.latency_digest:
        failures.append("tagged latency digest mismatch")
    for hl, el in zip(hybrid.lanes, event.lanes):
        if hl["requests"] != el["requests"]:
            failures.append(
                f"{hl['name']}: requests {hl['requests']} != {el['requests']}"
            )
        if hl["bytes"] != el["bytes"]:
            failures.append(
                f"{hl['name']}: bytes {hl['bytes']} != {el['bytes']}"
            )
        if hl["tagged_latency_sum"] != el["tagged_latency_sum"]:
            failures.append(f"{hl['name']}: tagged latency sum mismatch")
        scale = max(abs(hl["latency_sum"]), abs(el["latency_sum"]), 1.0)
        if abs(hl["latency_sum"] - el["latency_sum"]) > EQUIVALENCE_EPSILON * scale:
            failures.append(
                f"{hl['name']}: bulk latency sum off by "
                f"{abs(hl['latency_sum'] - el['latency_sum']) / scale:.3e} "
                f"(> {EQUIVALENCE_EPSILON:g} relative)"
            )
    return {
        "ok": not failures,
        "failures": failures,
        "epsilon": EQUIVALENCE_EPSILON,
        "order_digest": hybrid.order_digest,
        "latency_digest": hybrid.latency_digest,
        "hybrid_events": hybrid.events_scheduled,
        "event_events": event.events_scheduled,
        "bulk_requests": event.bulk_requests,
        "elide_ratio": hybrid.elide_ratio,
    }
