"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of SimPy.  Every
hardware and software component in this reproduction is a *process*: a
Python generator that yields :class:`Event` objects to suspend itself until
the event fires.  The kernel owns simulated time (``env.now``, in seconds)
and never consults the wall clock, so every run is reproducible.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import DeadlockError, SimulationError, InterruptedProcess

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "PENDING",
    "set_tiebreak_factory",
    "set_lifecycle_audit",
    "audit_register",
    "set_fastpath",
    "fastpath_enabled",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

# --------------------------------------------------------------------------
# SimSanitizer hooks (repro.analysis.sanitizer).
#
# Both default to None and cost the hot path a single falsy check.  They
# are *harness* knobs: production code must never set them — the
# sanitizer installs them around a run and restores None afterwards.
# --------------------------------------------------------------------------

#: When set, every new Environment calls the factory once and uses the
#: returned object's ``random()`` to draw a tiebreak rank per scheduled
#: event — a seeded shuffle of same-timestamp event order.  The engine's
#: *contract* (docs: DESIGN.md, "determinism") is that component-level
#: outcomes must not depend on the insertion-order tiebreak; this knob
#: is how the sanitizer falsifies that claim.
_TIEBREAK_FACTORY: Optional[Callable[[], Any]] = None

#: When set, Resources/Stores/qpairs register themselves here at
#: construction so the sanitizer can check lifecycle invariants
#: (leak-on-stop, stale completions) after a run.  Must expose
#: ``register(obj)``.
_LIFECYCLE_AUDIT: Optional[Any] = None


def set_tiebreak_factory(factory: Optional[Callable[[], Any]]) -> None:
    """Install (or clear, with ``None``) the sanitizer tiebreak factory."""
    global _TIEBREAK_FACTORY
    _TIEBREAK_FACTORY = factory


def set_lifecycle_audit(audit: Optional[Any]) -> None:
    """Install (or clear, with ``None``) the sanitizer lifecycle audit."""
    global _LIFECYCLE_AUDIT
    _LIFECYCLE_AUDIT = audit


def audit_register(obj: Any) -> None:
    """Register a lifecycle-checked object with the active audit, if any."""
    if _LIFECYCLE_AUDIT is not None:
        _LIFECYCLE_AUDIT.register(obj)


# --------------------------------------------------------------------------
# Fast-path toggle.
#
# The kernel and the hardware models carry two equivalent implementations
# of several hot paths: a *reference* one (heap-only scheduling, one
# process per NVMe command / qpair flight) and an optimized one (the
# immediate-event FIFO lane below, closed-form device timing, callback
# flights).  ``python -m repro perfcheck`` proves the two produce
# bit-identical results; this switch selects between them so the proof
# can run both in one process.  Components snapshot the flag at
# construction — flip it *between* building workloads, never mid-run.
# --------------------------------------------------------------------------

_FASTPATH = True


def set_fastpath(enabled: bool) -> None:
    """Enable/disable optimized kernel+model paths for new components."""
    global _FASTPATH
    _FASTPATH = bool(enabled)


def fastpath_enabled() -> bool:
    """True when new components should take the optimized paths."""
    return _FASTPATH


class Event:
    """A one-shot occurrence in simulated time.

    Events move through three states: *untriggered* (just created),
    *triggered* (scheduled for processing; value fixed), and *processed*
    (callbacks have run).  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks run when the event is processed.  ``None`` once processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection --------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is not yet triggered."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined zero-delay _post: succeed() dominates datapath posts.
        env = self.env
        if env._use_fifo:
            env._eid += 1
            env._fifo.append((env._now, env._eid, self))
        else:
            env._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._post(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def _resolve(self) -> None:
        """Run callbacks.  Called by the environment, exactly once."""
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self._defused:
            # A failure nobody waited on must not pass silently.
            raise self._value

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__: timeouts are the most-constructed
        # event type (one per compute charge in the datapath).
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        # Inlined _post: nonzero delays go straight to the heap, zero
        # delays to the FIFO lane when active.
        env._eid += 1
        if delay == 0.0 and env._use_fifo:
            env._fifo.append((env._now, env._eid, self))
        elif env._tiebreak is None:
            heapq.heappush(env._queue, (env._now + delay, 0.0, env._eid, self))
        else:
            heapq.heappush(
                env._queue,
                (env._now + delay, float(env._tiebreak.random()), env._eid, self),
            )


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._post(self)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator; itself an event that fires when the generator ends.

    The process's value is the generator's return value; if the generator
    raises, the process fails with that exception (propagated to waiters).
    """

    __slots__ = ("_generator", "_target", "name", "_stale")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when running).
        self._target: Optional[Event] = None
        #: Events abandoned by interrupt(); their firings are tombstoned:
        #: _resume drops them instead of paying an O(n) callbacks.remove
        #: at interrupt time.  None (no check at all) in the common case.
        self._stale: Optional[list[Event]] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptedProcess` into the process.

        The process must currently be suspended on an event; the event is
        abandoned (its firing will be ignored by this process).
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is None:
            raise SimulationError(f"{self!r} is not waiting on an event")
        # Detach from the old target: O(1) tombstone instead of an O(n)
        # callbacks.remove — the subscription stays in place and _resume
        # discards the stale firing when it arrives.
        target = self._target
        self._target = None
        if target.callbacks is not None:
            if self._stale is None:
                self._stale = [target]
            else:
                self._stale.append(target)
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = InterruptedProcess(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._post(interrupt_event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        stale = self._stale
        if stale is not None and event in stale:
            # Firing of an event abandoned by interrupt(): swallow it.
            stale.remove(event)
            if not stale:
                self._stale = None
            return
        self.env._active_process = self
        # (ok, payload): payload is a value when ok, an exception otherwise.
        ok, payload = event._ok, event._value
        if not ok:
            event._defused = True
        while True:
            try:
                if ok:
                    next_event = self._generator.send(payload)
                else:
                    next_event = self._generator.throw(payload)
            except StopIteration as stop:
                self._target = None
                self._ok = True
                self._value = stop.value
                self.env._post(self)
                break
            except BaseException as exc:
                self._target = None
                self._ok = False
                self._value = exc
                self.env._post(self)
                break

            if not isinstance(next_event, Event):
                ok, payload = False, SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                continue
            if next_event.env is not self.env:
                ok, payload = False, SimulationError(
                    f"process {self.name!r} yielded an event from a "
                    "different environment"
                )
                continue

            if next_event.callbacks is not None:
                # Event still pending: subscribe and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue synchronously.
            ok, payload = next_event._ok, next_event._value
            if not ok:
                next_event._defused = True
        self.env._active_process = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        fired = None
        remaining = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition spans multiple environments")
            if event.callbacks is None:
                if fired is None:
                    fired = [event]
                else:
                    fired.append(event)
            else:
                remaining += 1
        self._remaining = remaining
        # Subscribe after validation so a foreign event cannot leave a
        # partially subscribed condition behind.
        callback = self._child_fired
        for event in self._events:
            if event.callbacks is not None:
                event.callbacks.append(callback)
        if fired is not None:
            for event in fired:
                self._child_fired(event, immediate=True)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* children count as fired: a Timeout carries its
        # value from construction, so checking ``_value`` would wrongly
        # include timeouts that have not elapsed yet.  Called exactly
        # once per condition, at success — child firings only bump the
        # O(1) ``_remaining`` counter, so an AllOf/AnyOf over N events
        # does O(N) total bookkeeping, not O(N^2).
        return {e: e._value for e in self._events if e.processed}

    def _child_fired(self, event: Event, immediate: bool = False) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *all* child events have fired; value maps event -> value."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events)
        if self._value is PENDING and self._remaining == 0:
            self.succeed(self._collect())

    def _child_fired(self, event: Event, immediate: bool = False) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if not immediate:
            self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires when *any* child event fires; value maps fired events -> values."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events)
        # An empty AnyOf fires immediately (any-of-nothing is vacuous);
        # non-empty already-fired children were handled by _child_fired.
        if self._value is PENDING and not self._events:
            self.succeed({})

    def _child_fired(self, event: Event, immediate: bool = False) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """Owns the event queue and simulated time.

    Time is a float in **seconds**.  Ties are broken by insertion order,
    which makes runs fully deterministic.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Heap entries are (time, tiebreak rank, insertion id, event).
        #: The rank is a constant 0.0 in normal runs (so ties fall back
        #: to insertion order); under the SimSanitizer it is a seeded
        #: random draw, shuffling same-timestamp event order.
        self._queue: list[tuple[float, float, int, Event]] = []
        self._eid = 0
        self._tiebreak = (
            _TIEBREAK_FACTORY() if _TIEBREAK_FACTORY is not None else None
        )
        #: Immediate-event FIFO lane: ``delay == 0`` posts bypass the heap.
        #: Entries are (time, insertion id, event).  Because ``_now`` never
        #: decreases and insertion ids strictly increase, appends arrive in
        #: nondecreasing (time, id) order, so the deque *is* sorted by the
        #: same key the heap uses (rank is a constant 0.0 whenever the lane
        #: is active) — step() pops the global minimum of both lanes and the
        #: total event order is identical to the heap-only kernel.  Disabled
        #: under the sanitizer tiebreak factory: random ranks must shuffle
        #: *all* same-timestamp events, so everything goes through the heap.
        self._fifo: deque[tuple[float, int, Event]] = deque()
        self._use_fifo = _FASTPATH and self._tiebreak is None
        self._active_process: Optional[Process] = None
        #: Observability hooks called after each processed event; ``None``
        #: (the default) keeps step() at a single falsy check.
        self._step_listeners: Optional[list[Callable[[float, Event], None]]] = None
        #: Fluid lanes registered for epoch stepping (repro.sim.fluid);
        #: ``None`` (the default) keeps run_epoch() pay-for-use.
        self._lanes: Optional[list[Any]] = None

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing once all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event`` for processing ``delay`` seconds from now."""
        self._eid += 1
        if delay == 0.0 and self._use_fifo:
            self._fifo.append((self._now, self._eid, event))
            return
        rank = 0.0 if self._tiebreak is None else float(self._tiebreak.random())
        heapq.heappush(self._queue, (self._now + delay, rank, self._eid, event))

    def _post_at(self, event: Event, time: float) -> None:
        """Schedule ``event`` at the *absolute* time ``time``.

        Kernel-internal: used by analytic model fast paths that compute
        fire times in closed form and must hit the exact float the
        reference event chain would have produced (``now + delay`` is not
        bit-identical to a precomputed absolute time under IEEE 754).
        """
        self._eid += 1
        if time == self._now and self._use_fifo:
            self._fifo.append((self._now, self._eid, event))
            return
        rank = 0.0 if self._tiebreak is None else float(self._tiebreak.random())
        heapq.heappush(self._queue, (time, rank, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._fifo:
            if self._queue and self._queue[0][0] < self._fifo[0][0]:
                return self._queue[0][0]
            return self._fifo[0][0]
        return self._queue[0][0] if self._queue else float("inf")

    def add_step_listener(self, listener: Callable[[float, Event], None]) -> None:
        """Register an observability hook run after every processed event.

        Listeners must be purely observational: they see ``(now, event)``
        and must not create, trigger, or cancel simulation events, so a
        monitored run stays bit-identical to an unmonitored one.
        """
        if self._step_listeners is None:
            self._step_listeners = []
        self._step_listeners.append(listener)

    def step(self) -> None:
        """Process exactly one event.

        Pops the global minimum of the FIFO lane and the heap, keyed by
        (time, insertion id) — identical total order to a heap-only
        kernel (ranks are all 0.0 whenever the FIFO lane is in use).
        """
        fifo = self._fifo
        queue = self._queue
        if fifo:
            if queue:
                head = queue[0]
                imm = fifo[0]
                ht = head[0]
                it = imm[0]
                if ht < it or (ht == it and head[2] < imm[1]):
                    self._now, _, _, event = heapq.heappop(queue)
                else:
                    self._now, _, event = fifo.popleft()
            else:
                self._now, _, event = fifo.popleft()
        elif queue:
            self._now, _, _, event = heapq.heappop(queue)
        else:
            raise SimulationError("step() on an empty event queue")
        # Inlined Event._resolve — this is the hottest loop in the repo.
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on must not pass silently.
            raise event._value
        if self._step_listeners is not None:
            for listener in self._step_listeners:
                listener(self._now, event)

    # -- epoch stepping (hybrid-fidelity lanes) ------------------------------
    def register_lane(self, lane: Any) -> None:
        """Register a fluid lane for epoch stepping.

        Registered lanes get ``lane.epoch_end(t0, t1)`` after every
        :meth:`run_epoch`, with the epoch bounds passed explicitly —
        fluid epoch bodies must not read ``env.now`` (lint rule SL111).
        """
        if self._lanes is None:
            self._lanes = []
        self._lanes.append(lane)

    @property
    def lanes(self) -> tuple:
        """The registered fluid lanes, in registration order."""
        return tuple(self._lanes) if self._lanes is not None else ()

    def run_epoch(self, until: float) -> None:
        """Run events up to ``until``, then close the epoch on every lane.

        The event phase is a plain :meth:`run`, so anything scheduled in
        ``[now, until]`` (tagged flows, fault windows) is processed with
        full event fidelity; the epoch hook then lets each registered
        lane charge its bulk traffic for the window analytically.
        """
        t0 = self._now
        self.run(until=float(until))
        if self._lanes is not None:
            for lane in self._lanes:
                lane.epoch_end(t0, self._now)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a time
        (run until simulated time reaches it), or an :class:`Event` (run
        until that event is processed, returning its value).
        """
        step = self.step
        if until is None:
            while self._queue or self._fifo:
                step()
            return None

        if isinstance(until, Event):
            stop = until
            # `stop.callbacks is None` is `stop.processed` without the
            # property descriptor — this loop brackets every driver run.
            while stop.callbacks is not None and (self._queue or self._fifo):
                step()
            if not stop.triggered:
                raise DeadlockError(
                    "run(until=event): event queue drained before the "
                    "target event fired (deadlock?)"
                )
            if not stop._ok:
                stop._defused = True
                raise stop._value
            return stop._value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon!r} is in the past (now={self._now!r})")
        while self.peek() <= horizon:
            step()
        self._now = horizon
        return None
