"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`Environment` — event queue and simulated clock.
* :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf` — the waitable primitives processes yield.
* :class:`Resource`, :class:`PriorityResource`, :class:`Store`,
  :class:`Container` — contention primitives.
* :class:`Tally`, :class:`TimeWeighted`, :class:`Counter`,
  :class:`ThroughputMeter` — measurement accumulators.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Process,
    Timeout,
    fastpath_enabled,
    set_fastpath,
)
from .fluid import (
    ArrivalSchedule,
    FluidLane,
    RateEnvelope,
    ScaleSpec,
    Segment,
    equivalence_check,
    run_scale,
)
from .resources import Container, PriorityResource, Request, Resource, Store
from .rng import derive_seed, reset_substream_log, rng, substream_log
from .stats import Counter, RecoveryStats, Tally, ThroughputMeter, TimeWeighted

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Resource",
    "PriorityResource",
    "Request",
    "Store",
    "Container",
    "Tally",
    "TimeWeighted",
    "Counter",
    "ThroughputMeter",
    "RecoveryStats",
    "FluidLane",
    "RateEnvelope",
    "Segment",
    "ArrivalSchedule",
    "ScaleSpec",
    "run_scale",
    "equivalence_check",
    "set_fastpath",
    "fastpath_enabled",
    "rng",
    "derive_seed",
    "substream_log",
    "reset_substream_log",
]
