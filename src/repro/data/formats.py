"""Batched dataset file formats (TFRecord-like, CIFAR-like).

§II-B of the paper discusses the common workaround for small random
reads: preprocessing samples into large batched files (TFRecord,
CIFAR10 binary).  The cost is shuffling quality — a TFRecord is read
sequentially through a bounded shuffle buffer, so samples can only be
permuted within a window.  These models let us (a) lay batched files out
on the simulated devices, (b) index *individual samples inside* a
batched file (DLFS's sample directory supports this, §III-B1), and
(c) quantify shuffle quality versus buffer size for the motivation
experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .dataset import Dataset

__all__ = [
    "BatchedFile",
    "TFRecordFormat",
    "CIFARBatchFormat",
    "DecodeCostModel",
    "decompression_selectivity",
    "tfrecord_parse_selectivity",
    "shuffle_quality",
    "shuffle_buffer_order",
]

#: TFRecord framing: 8-byte length + 4-byte length CRC + 4-byte data CRC.
TFRECORD_HEADER_BYTES = 16
#: CIFAR binary framing: 1 label byte before the fixed-size pixel block.
CIFAR_LABEL_BYTES = 1


@dataclass(frozen=True)
class BatchedFile:
    """One batched file: a contiguous run of framed samples."""

    name: str
    #: Indices (into the source dataset) of the contained samples, in
    #: on-disk order.
    sample_indices: np.ndarray
    #: Byte offset of each sample's payload *within the file*.
    payload_offsets: np.ndarray
    #: Payload length of each sample.
    payload_lengths: np.ndarray
    #: Total file size including framing.
    file_bytes: int

    def __post_init__(self) -> None:
        n = len(self.sample_indices)
        if not (len(self.payload_offsets) == len(self.payload_lengths) == n):
            raise ConfigError("batched-file arrays must have equal length")

    @property
    def num_samples(self) -> int:
        return len(self.sample_indices)

    def locate(self, position: int) -> tuple[int, int]:
        """(offset, length) of the payload at on-disk position ``position``."""
        if not 0 <= position < self.num_samples:
            raise ConfigError(f"record position {position} out of range")
        return int(self.payload_offsets[position]), int(self.payload_lengths[position])


class TFRecordFormat:
    """Pack samples into fixed-count TFRecord-like files."""

    def __init__(self, samples_per_file: int = 1024) -> None:
        if samples_per_file < 1:
            raise ConfigError("samples_per_file must be >= 1")
        self.samples_per_file = samples_per_file

    def pack(self, dataset: Dataset, order: np.ndarray | None = None) -> list[BatchedFile]:
        """Build batched files covering the dataset.

        ``order`` is the on-disk sample order (defaults to index order —
        the "predefined input pattern" the paper warns about).
        """
        if order is None:
            order = np.arange(dataset.num_samples, dtype=np.int64)
        else:
            order = np.asarray(order, dtype=np.int64)
            if sorted(order.tolist()) != list(range(dataset.num_samples)):
                raise ConfigError("order must be a permutation of all samples")
        files = []
        for start in range(0, dataset.num_samples, self.samples_per_file):
            members = order[start:start + self.samples_per_file]
            lengths = dataset.sizes[members]
            # Each record: header + payload; payload begins after header.
            record_starts = np.concatenate(
                ([0], np.cumsum(lengths[:-1] + TFRECORD_HEADER_BYTES))
            )
            payload_offsets = record_starts + TFRECORD_HEADER_BYTES
            total = int((lengths + TFRECORD_HEADER_BYTES).sum())
            files.append(
                BatchedFile(
                    name=f"{dataset.name}.tfrecord.{start // self.samples_per_file:05d}",
                    sample_indices=members,
                    payload_offsets=payload_offsets,
                    payload_lengths=lengths.copy(),
                    file_bytes=total,
                )
            )
        return files


class CIFARBatchFormat:
    """CIFAR10-binary-like: fixed record size, label byte + pixel block."""

    def __init__(self, record_bytes: int = 3072, samples_per_file: int = 10000) -> None:
        if record_bytes < 1 or samples_per_file < 1:
            raise ConfigError("record_bytes and samples_per_file must be >= 1")
        self.record_bytes = record_bytes
        self.samples_per_file = samples_per_file

    def pack(self, dataset: Dataset) -> list[BatchedFile]:
        files = []
        stride = CIFAR_LABEL_BYTES + self.record_bytes
        for start in range(0, dataset.num_samples, self.samples_per_file):
            members = np.arange(
                start, min(start + self.samples_per_file, dataset.num_samples),
                dtype=np.int64,
            )
            n = len(members)
            payload_offsets = np.arange(n, dtype=np.int64) * stride + CIFAR_LABEL_BYTES
            files.append(
                BatchedFile(
                    name=f"{dataset.name}.cifar.{start // self.samples_per_file:05d}",
                    sample_indices=members,
                    payload_offsets=payload_offsets,
                    payload_lengths=np.full(n, self.record_bytes, dtype=np.int64),
                    file_bytes=n * stride,
                )
            )
        return files


@dataclass(frozen=True)
class DecodeCostModel:
    """Per-record decode/transform cost with a byte selectivity.

    The transform tier (:mod:`repro.xform`) models every decode stage —
    TFRecord parse, decompression, augmentation — as an affine CPU cost
    ``fixed + per_byte * input_bytes`` plus a *selectivity*: the ratio
    of output bytes to input bytes.  Selectivity < 1 shrinks the record
    (parsing strips framing, crops drop pixels); selectivity > 1
    inflates it (decompression); selectivity 0 is a filter that emits
    metadata only.
    """

    #: CPU seconds per input byte.
    per_byte: float = 0.0
    #: CPU seconds per record, paid even for a zero-byte record (header
    #: validation, dispatch, allocator work).
    fixed: float = 0.0
    #: output_bytes / input_bytes (>= 0; > 1 means inflation).
    selectivity: float = 1.0

    def __post_init__(self) -> None:
        for name in ("per_byte", "fixed", "selectivity"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ConfigError(f"decode cost {name} must be finite")
            if value < 0:
                raise ConfigError(f"decode cost {name} must be >= 0")

    def cost(self, input_bytes: int) -> float:
        """CPU seconds to decode one record of ``input_bytes``.

        A zero-byte record still pays ``fixed`` — the framing walk and
        dispatch happen regardless of payload size.
        """
        if input_bytes < 0:
            raise ConfigError(f"negative record size: {input_bytes}")
        return self.fixed + self.per_byte * input_bytes

    def output_bytes(self, input_bytes: int) -> int:
        """Bytes emitted for one record of ``input_bytes`` (rounded)."""
        if input_bytes < 0:
            raise ConfigError(f"negative record size: {input_bytes}")
        return int(round(input_bytes * self.selectivity))


def decompression_selectivity(compression_ratio: float) -> float:
    """Selectivity of a decompress stage for a given compression ratio.

    ``compression_ratio`` is uncompressed/compressed bytes; a ratio of
    2.0 means the stored record inflates 2x when decoded, i.e. the
    stage's selectivity *is* the ratio (> 1: decompression inflation).
    Ratios must be finite and >= 1 — a "compressor" that grows its
    input is a configuration error, and 0/negative ratios divide byte
    budgets downstream.
    """
    if not math.isfinite(compression_ratio):
        raise ConfigError("compression ratio must be finite")
    if compression_ratio < 1.0:
        raise ConfigError(
            f"compression ratio must be >= 1, got {compression_ratio}"
        )
    return float(compression_ratio)


def tfrecord_parse_selectivity(payload_bytes: int) -> float:
    """Selectivity of stripping TFRecord framing from one record.

    Output is the payload; input is payload + the 16-byte frame, so a
    zero-byte record has selectivity 0 (all framing, no payload).
    """
    if payload_bytes < 0:
        raise ConfigError(f"negative payload size: {payload_bytes}")
    return payload_bytes / (payload_bytes + TFRECORD_HEADER_BYTES)


def shuffle_buffer_order(
    n: int, buffer_size: int, rng: np.random.Generator
) -> np.ndarray:
    """The tf.data bounded shuffle-buffer discipline (paper §II-B).

    Records stream in on-disk order through a buffer of ``buffer_size``;
    each emission picks a uniformly random buffered record and refills
    from the stream.  With ``buffer_size < n`` the result is only
    *partially* shuffled — the effect the paper quantifies against
    DLFS's global randomization.
    """
    if n < 0 or buffer_size < 1:
        raise ConfigError("need n >= 0 and buffer_size >= 1")
    if buffer_size >= n:
        return rng.permutation(n)
    buffer = list(range(buffer_size))
    next_in = buffer_size
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        j = int(rng.integers(len(buffer)))
        out[i] = buffer[j]
        if next_in < n:
            buffer[j] = next_in
            next_in += 1
        else:
            buffer[j] = buffer[-1]
            buffer.pop()
    return out


def shuffle_quality(order: np.ndarray) -> float:
    """How close an access order is to a uniform random permutation.

    Returns the normalized mean absolute displacement between each
    sample's position in ``order`` and its on-disk index: 0.0 for the
    identity (no shuffling), ~1.0 for a uniform random permutation
    (whose expected normalized displacement is 1/3, used as the unit).
    This is the metric behind the paper's claim that a bounded shuffle
    buffer yields only *partially* shuffled samples.
    """
    order = np.asarray(order, dtype=np.int64)
    n = len(order)
    if n < 2:
        return 0.0
    positions = np.empty(n, dtype=np.int64)
    positions[order] = np.arange(n)
    displacement = np.abs(positions - np.arange(n)).mean()
    expected_random = n / 3.0  # E|X - Y| for iid uniform on [0, n)
    return float(displacement / expected_random)
