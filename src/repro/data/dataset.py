"""Synthetic training datasets and their placement on NVMe devices.

A :class:`Dataset` is the logical view: N samples with sizes drawn from
a :class:`~repro.data.distributions.SizeDistribution` and integer class
labels.  Sample *content* never exists — the simulation moves byte
counts, not bytes — except in the training-accuracy experiment, where
features are derived deterministically from sample indices
(:mod:`repro.train`).

A :class:`DatasetLayout` is the physical view after ``dlfs_mount``:
samples are partitioned into per-device shards and packed contiguously,
which is what makes the paper's chunk-level batching possible (fixed
256 KB data chunks with *edge samples* crossing chunk boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..sim import rng as sim_rng
from .distributions import FixedSize, SizeDistribution

__all__ = ["Dataset", "DatasetLayout", "SampleLocation"]


class Dataset:
    """An immutable synthetic dataset (sizes + labels, no content)."""

    def __init__(
        self,
        name: str,
        sizes: np.ndarray,
        num_classes: int = 10,
        seed: int = 0,
    ) -> None:
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.ndim != 1 or len(sizes) == 0:
            raise ConfigError("dataset needs a non-empty 1-D size array")
        if (sizes < 1).any():
            raise ConfigError("all sample sizes must be >= 1 byte")
        if num_classes < 1:
            raise ConfigError("num_classes must be >= 1")
        self.name = name
        self.sizes = sizes
        self.sizes.setflags(write=False)
        self.num_classes = num_classes
        self.seed = seed
        rng = sim_rng("data.dataset.labels", seed ^ 0x5EED)
        self.labels = rng.integers(0, num_classes, size=len(sizes), dtype=np.int32)
        self.labels.setflags(write=False)

    @classmethod
    def synthetic(
        cls,
        name: str,
        num_samples: int,
        distribution: SizeDistribution,
        num_classes: int = 10,
        seed: int = 0,
    ) -> "Dataset":
        """Draw ``num_samples`` sizes from ``distribution`` (deterministic)."""
        if num_samples < 1:
            raise ConfigError("num_samples must be >= 1")
        rng = sim_rng("data.dataset.sizes", seed)
        return cls(name, distribution.sample(rng, num_samples), num_classes, seed)

    @classmethod
    def fixed(
        cls, name: str, num_samples: int, sample_bytes: int, **kwargs
    ) -> "Dataset":
        """The paper's micro-benchmark dataset: uniform sample size."""
        return cls.synthetic(name, num_samples, FixedSize(sample_bytes), **kwargs)

    @property
    def num_samples(self) -> int:
        return len(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    @property
    def mean_sample_bytes(self) -> float:
        return float(self.sizes.mean())

    def sample_name(self, index: int) -> str:
        """Canonical path-like name of one sample."""
        if not 0 <= index < len(self.sizes):
            raise ConfigError(f"sample index {index} out of range")
        return f"{self.name}/{index:08d}"

    def hash_all_names(self):
        """(keys, checks) for every sample name, vectorized.

        The sample directory builds its entries from this; subclasses
        with non-canonical naming override it consistently with
        :meth:`sample_name`.
        """
        from ..core.entry import hash_sample_names

        return hash_sample_names(self.name, np.arange(self.num_samples))

    def __repr__(self) -> str:
        return (
            f"<Dataset {self.name!r} n={self.num_samples} "
            f"total={self.total_bytes / 2**20:.1f} MiB>"
        )


class CompositeDataset(Dataset):
    """Several datasets mounted as one (``dlfs_mount`` takes "the
    dataset(s)", paper §III-A).

    Sample indices run through the sources in order; names keep each
    source's namespace (``imagenet/00000007``, ``imdb/00000000``, ...),
    so lookups by name resolve across all mounted datasets.
    """

    def __init__(self, datasets: list["Dataset"], name: str = "composite") -> None:
        if not datasets:
            raise ConfigError("CompositeDataset needs at least one source")
        names = [d.name for d in datasets]
        if len(set(names)) != len(names):
            raise ConfigError("source dataset names must be unique")
        sizes = np.concatenate([d.sizes for d in datasets])
        super().__init__(name, sizes,
                         num_classes=max(d.num_classes for d in datasets))
        # Labels come from the sources, not from the base-class RNG.
        labels = np.concatenate([d.labels for d in datasets])
        labels.setflags(write=False)
        self.labels = labels
        self.sources = list(datasets)
        self._bounds = np.concatenate(
            ([0], np.cumsum([d.num_samples for d in datasets]))
        )

    def source_of(self, index: int) -> tuple[int, int]:
        """-> (source dataset position, index local to that source)."""
        if not 0 <= index < self.num_samples:
            raise ConfigError(f"sample index {index} out of range")
        src = int(np.searchsorted(self._bounds, index, side="right") - 1)
        return src, index - int(self._bounds[src])

    def sample_name(self, index: int) -> str:
        src, local = self.source_of(index)
        return self.sources[src].sample_name(local)

    def hash_all_names(self):
        keys, checks = [], []
        for d in self.sources:
            k, c = d.hash_all_names()
            keys.append(k)
            checks.append(c)
        return np.concatenate(keys), np.concatenate(checks)

    def __repr__(self) -> str:
        inner = ", ".join(d.name for d in self.sources)
        return f"<CompositeDataset [{inner}] n={self.num_samples}>"


@dataclass(frozen=True)
class SampleLocation:
    """Physical position of one sample: which shard/device, where on it."""

    shard: int
    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


class DatasetLayout:
    """Physical placement: samples -> shards -> contiguous byte ranges.

    ``num_shards`` equals the number of NVMe devices the mount spans.
    Samples are assigned to shards either in contiguous index ranges
    (``interleaved=False``, the default — each node uploads "its portion
    of the files", §III-A) or round-robin (``interleaved=True``).
    Within a shard samples are packed back-to-back from ``base_offset``.
    """

    def __init__(
        self,
        dataset: Dataset,
        num_shards: int,
        base_offset: int = 0,
        interleaved: bool = False,
    ) -> None:
        if num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if num_shards > dataset.num_samples:
            raise ConfigError(
                f"cannot split {dataset.num_samples} samples over "
                f"{num_shards} shards"
            )
        if base_offset < 0 or base_offset % 512:
            raise ConfigError("base_offset must be non-negative, 512-aligned")
        self.dataset = dataset
        self.num_shards = num_shards
        self.base_offset = base_offset
        self.interleaved = interleaved

        n = dataset.num_samples
        if interleaved:
            shard_ids = np.arange(n, dtype=np.int32) % num_shards
        else:
            # Contiguous split, remainder spread over the first shards.
            bounds = np.linspace(0, n, num_shards + 1).astype(np.int64)
            shard_ids = np.zeros(n, dtype=np.int32)
            for s in range(num_shards):
                shard_ids[bounds[s]:bounds[s + 1]] = s
        self.shard_ids = shard_ids
        self.shard_ids.setflags(write=False)

        # Pack each shard contiguously: offset[i] = base + cumsum of the
        # sizes of earlier samples in the same shard.
        offsets = np.zeros(n, dtype=np.int64)
        self._shard_samples: list[np.ndarray] = []
        self._shard_bytes = np.zeros(num_shards, dtype=np.int64)
        for s in range(num_shards):
            members = np.flatnonzero(shard_ids == s)
            member_sizes = dataset.sizes[members]
            starts = np.concatenate(([0], np.cumsum(member_sizes[:-1])))
            offsets[members] = base_offset + starts
            self._shard_samples.append(members)
            self._shard_bytes[s] = member_sizes.sum()
        self.offsets = offsets
        self.offsets.setflags(write=False)
        self._shard_bytes.setflags(write=False)

    # -- queries ------------------------------------------------------------
    def location(self, index: int) -> SampleLocation:
        """Where sample ``index`` lives."""
        if not 0 <= index < self.dataset.num_samples:
            raise ConfigError(f"sample index {index} out of range")
        return SampleLocation(
            shard=int(self.shard_ids[index]),
            offset=int(self.offsets[index]),
            length=int(self.dataset.sizes[index]),
        )

    def shard_of(self, index: int) -> int:
        return int(self.shard_ids[index])

    def shard_samples(self, shard: int) -> np.ndarray:
        """Sample indices stored on ``shard`` (ascending)."""
        self._check_shard(shard)
        return self._shard_samples[shard]

    def shard_bytes(self, shard: int) -> int:
        """Payload bytes packed on ``shard``."""
        self._check_shard(shard)
        return int(self._shard_bytes[shard])

    def shard_extent(self, shard: int) -> tuple[int, int]:
        """(start, end) byte range occupied on the shard's device."""
        return (self.base_offset, self.base_offset + self.shard_bytes(shard))

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ConfigError(f"shard {shard} out of range")

    def __repr__(self) -> str:
        return (
            f"<DatasetLayout {self.dataset.name!r} shards={self.num_shards} "
            f"{'interleaved' if self.interleaved else 'contiguous'}>"
        )
