"""Backend parallel file system (staging source for ``dlfs_mount``).

DL jobs on the paper's target systems stage their dataset from the HPC
persistent file system (Lustre/GPFS-class) into the burst buffers at
mount time.  The model is intentionally coarse — a pool of server
streams, each with fixed bandwidth — because staging cost only appears
in mount-time measurements, never in the steady-state figures.
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import ConfigError
from ..hw.platform import GB, MSEC
from ..sim import Environment, Event, Resource, ThroughputMeter

__all__ = ["ParallelFS"]


class ParallelFS:
    """An aggregate-bandwidth staging source with limited parallelism."""

    def __init__(
        self,
        env: Environment,
        streams: int = 16,
        stream_bandwidth: float = 1.5 * GB,
        request_latency: float = 0.5 * MSEC,
        name: str = "pfs",
    ) -> None:
        if streams < 1:
            raise ConfigError("streams must be >= 1")
        if stream_bandwidth <= 0:
            raise ConfigError("stream_bandwidth must be positive")
        if request_latency < 0:
            raise ConfigError("request_latency must be >= 0")
        self.env = env
        self.name = name
        self.streams = streams
        self.stream_bandwidth = stream_bandwidth
        self.request_latency = request_latency
        self._pipes = Resource(env, capacity=streams, name=f"{name}.streams")
        self.meter = ThroughputMeter(env, name=f"{name}.read")

    @property
    def aggregate_bandwidth(self) -> float:
        return self.streams * self.stream_bandwidth

    def read(self, nbytes: int) -> Generator[Event, Any, None]:
        """Stream ``nbytes`` out of the PFS (process helper).

        One stream slot is held for the duration; concurrent readers
        beyond ``streams`` queue up, which is how staging contention
        across many mounting nodes shows up.
        """
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        if nbytes == 0:
            return
        yield from self._pipes.hold(
            self.request_latency + nbytes / self.stream_bandwidth
        )
        self.meter.record(nbytes=nbytes)

    def __repr__(self) -> str:
        return (
            f"<ParallelFS {self.name!r} {self.streams}x"
            f"{self.stream_bandwidth / GB:.1f} GB/s>"
        )
