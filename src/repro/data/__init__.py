"""Dataset substrate: size distributions, synthetic datasets, physical
layout, batched formats, and the backend parallel file system."""

from .batched_layout import BatchedFileLayout
from .dataset import CompositeDataset, Dataset, DatasetLayout, SampleLocation
from .distributions import (
    FixedSize,
    LogNormalSizes,
    SizeDistribution,
    imagenet_like,
    imdb_like,
)
from .formats import (
    BatchedFile,
    CIFARBatchFormat,
    TFRecordFormat,
    shuffle_buffer_order,
    shuffle_quality,
)
from .pfs import ParallelFS

__all__ = [
    "Dataset",
    "CompositeDataset",
    "DatasetLayout",
    "BatchedFileLayout",
    "SampleLocation",
    "SizeDistribution",
    "FixedSize",
    "LogNormalSizes",
    "imagenet_like",
    "imdb_like",
    "BatchedFile",
    "TFRecordFormat",
    "CIFARBatchFormat",
    "shuffle_quality",
    "shuffle_buffer_order",
    "ParallelFS",
]
