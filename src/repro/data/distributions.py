"""Sample-size distributions for synthetic training datasets.

The paper motivates DLFS with the size profile of real datasets (Fig 1):
ImageNet's raw JPEG samples are mostly small (75% under 147 KB) and
IMDB's text samples are tiny (75% under 1.6 KB).  Raw image/text sizes
are well described by a lognormal; the presets here pin the medians and
shape so the paper's quartile landmarks hold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import ConfigError
from ..hw.platform import KB

__all__ = [
    "SizeDistribution",
    "FixedSize",
    "LogNormalSizes",
    "imagenet_like",
    "imdb_like",
]

#: z-score of the 75th percentile of a standard normal.
_Z75 = float(stats.norm.ppf(0.75))


class SizeDistribution:
    """Interface: draw per-sample byte sizes."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` sizes (int64 bytes, all >= 1)."""
        raise NotImplementedError

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """P(size <= x)."""
        raise NotImplementedError

    def percentile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 100]."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSize(SizeDistribution):
    """Every sample is exactly ``nbytes`` — the paper's micro-benchmarks."""

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 1:
            raise ConfigError("sample size must be >= 1 byte")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.nbytes, dtype=np.int64)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) >= self.nbytes).astype(float)

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ValueError("percentile in [0, 100]")
        return float(self.nbytes)


@dataclass(frozen=True)
class LogNormalSizes(SizeDistribution):
    """Lognormal sizes clipped to ``[min_bytes, max_bytes]``.

    Parameterized by the median (in bytes) and the log-space sigma, which
    is the natural way to pin quartiles: P75 = median * exp(z75 * sigma).
    """

    median_bytes: float
    sigma: float
    min_bytes: int = 64
    max_bytes: int = 32 * 1024 * KB

    def __post_init__(self) -> None:
        if self.median_bytes <= 0 or self.sigma <= 0:
            raise ConfigError("median_bytes and sigma must be positive")
        if not 1 <= self.min_bytes < self.max_bytes:
            raise ConfigError("need 1 <= min_bytes < max_bytes")

    @classmethod
    def from_p75(
        cls, median_bytes: float, p75_bytes: float, **kwargs
    ) -> "LogNormalSizes":
        """Construct so that the 75th percentile lands on ``p75_bytes``."""
        if p75_bytes <= median_bytes:
            raise ConfigError("p75 must exceed the median")
        sigma = float(np.log(p75_bytes / median_bytes) / _Z75)
        return cls(median_bytes=median_bytes, sigma=sigma, **kwargs)

    @property
    def _mu(self) -> float:
        return float(np.log(self.median_bytes))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        raw = rng.lognormal(mean=self._mu, sigma=self.sigma, size=n)
        return np.clip(raw, self.min_bytes, self.max_bytes).astype(np.int64)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.lognorm.cdf(
            np.asarray(x, dtype=float), s=self.sigma, scale=self.median_bytes
        )

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ValueError("percentile in [0, 100]")
        value = stats.lognorm.ppf(q / 100.0, s=self.sigma, scale=self.median_bytes)
        return float(np.clip(value, self.min_bytes, self.max_bytes))


def imagenet_like() -> LogNormalSizes:
    """Raw-JPEG ImageNet profile: 75% of samples below 147 KB (Fig 1)."""
    return LogNormalSizes.from_p75(
        median_bytes=95 * KB, p75_bytes=147 * KB, min_bytes=2 * KB
    )


def imdb_like() -> LogNormalSizes:
    """IMDB review-text profile: 75% of samples below 1.6 KB (Fig 1)."""
    return LogNormalSizes.from_p75(
        median_bytes=0.9 * KB, p75_bytes=1.6 * KB, min_bytes=64,
        max_bytes=64 * KB,
    )
