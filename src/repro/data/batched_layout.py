"""Physical layout for datasets stored as batched files (paper §III-B1).

When a dataset arrives preprocessed into TFRecord/CIFAR-style batched
files, DLFS still indexes *individual samples*: the directory points at
each sample's payload inside its enclosing file ("we are able to have
direct access to any samples in a TFRecord file"), and the batched file
itself also gets an entry for file-oriented access.

:class:`BatchedFileLayout` exposes the same interface as
:class:`~repro.data.dataset.DatasetLayout` — every downstream consumer
(sample directory, chunk plan, readers) works unchanged — but sample
offsets are derived from the files' on-disk framing rather than from
back-to-back packing.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .dataset import Dataset, DatasetLayout
from .formats import BatchedFile

__all__ = ["BatchedFileLayout"]


class BatchedFileLayout(DatasetLayout):
    """Samples placed inside batched files, files packed across shards."""

    def __init__(
        self,
        dataset: Dataset,
        files: list[BatchedFile],
        num_shards: int,
        base_offset: int = 0,
    ) -> None:
        # Deliberately NOT calling DatasetLayout.__init__: this class
        # computes the same attribute set from the file framing.
        if num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if num_shards > len(files):
            raise ConfigError(
                f"cannot place {len(files)} batched files on {num_shards} shards"
            )
        if base_offset < 0 or base_offset % 512:
            raise ConfigError("base_offset must be non-negative, 512-aligned")
        covered = np.concatenate([f.sample_indices for f in files]) if files else []
        if sorted(np.asarray(covered).tolist()) != list(range(dataset.num_samples)):
            raise ConfigError(
                "batched files must cover every dataset sample exactly once"
            )
        self.dataset = dataset
        self.files = files
        self.num_shards = num_shards
        self.base_offset = base_offset
        self.interleaved = False

        n = dataset.num_samples
        shard_ids = np.empty(n, dtype=np.int32)
        offsets = np.empty(n, dtype=np.int64)
        # Files round-robin across shards; within a shard, packed
        # back-to-back from base_offset (framing included).
        self.file_shard = np.arange(len(files), dtype=np.int32) % num_shards
        self.file_base = np.zeros(len(files), dtype=np.int64)
        shard_cursor = np.full(num_shards, base_offset, dtype=np.int64)
        for i, f in enumerate(files):
            shard = int(self.file_shard[i])
            self.file_base[i] = shard_cursor[shard]
            shard_cursor[shard] += f.file_bytes
            shard_ids[f.sample_indices] = shard
            offsets[f.sample_indices] = self.file_base[i] + f.payload_offsets
        self.shard_ids = shard_ids
        self.offsets = offsets
        self.shard_ids.setflags(write=False)
        self.offsets.setflags(write=False)

        self._shard_samples = [
            np.flatnonzero(shard_ids == s) for s in range(num_shards)
        ]
        # Shard extent covers the framed files, not just payloads.
        self._shard_bytes = shard_cursor - base_offset
        self._shard_bytes.setflags(write=False)

    # -- file-oriented access ----------------------------------------------------
    def file_extent(self, file_index: int) -> tuple[int, int, int]:
        """-> (shard, device offset, nbytes) of one whole batched file."""
        if not 0 <= file_index < len(self.files):
            raise ConfigError(f"file index {file_index} out of range")
        return (
            int(self.file_shard[file_index]),
            int(self.file_base[file_index]),
            self.files[file_index].file_bytes,
        )

    def file_of_sample(self, sample_index: int) -> int:
        """Which batched file holds ``sample_index``."""
        if not 0 <= sample_index < self.dataset.num_samples:
            raise ConfigError(f"sample index {sample_index} out of range")
        for i, f in enumerate(self.files):
            if (f.sample_indices == sample_index).any():
                return i
        raise ConfigError(f"sample {sample_index} not in any file")  # pragma: no cover

    def __repr__(self) -> str:
        return (
            f"<BatchedFileLayout {self.dataset.name!r} files={len(self.files)} "
            f"shards={self.num_shards}>"
        )
