"""Determinism analysis pack: simlint (static) + SimSanitizer (runtime).

``python -m repro lint src/repro`` runs the AST rules; ``python -m repro
sanitize`` runs the tiebreak-perturbation sweep.  Both gate CI.
"""

from .perfcheck import PerfCheckReport, run_perfcheck
from .rules import RULES, RULES_BY_ID, Finding, Rule
from .sanitizer import (
    LifecycleAudit,
    SanitizerReport,
    default_workload,
    perturbed_tiebreaks,
    run_sanitizer,
)
from .simlint import lint_file, lint_paths, lint_source, render_findings

__all__ = [
    "PerfCheckReport",
    "run_perfcheck",
    "RULES",
    "RULES_BY_ID",
    "Finding",
    "Rule",
    "LifecycleAudit",
    "SanitizerReport",
    "default_workload",
    "perturbed_tiebreaks",
    "run_sanitizer",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_findings",
]
