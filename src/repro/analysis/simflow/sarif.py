"""SARIF 2.1.0 export so editors/code-scanning UIs can ingest findings."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..rules import ALL_RULES_BY_ID, Finding

__all__ = ["to_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(findings: Sequence[Finding], tool_version: str = "1.0") -> dict:
    seen_rules: List[str] = []
    for f in findings:
        if f.rule_id not in seen_rules:
            seen_rules.append(f.rule_id)
    rules = []
    for rid in sorted(seen_rules):
        rule = ALL_RULES_BY_ID.get(rid)
        entry: Dict[str, object] = {"id": rid}
        if rule is not None:
            entry["name"] = rule.name
            entry["shortDescription"] = {"text": rule.summary}
            entry["help"] = {"text": rule.hint}
        rules.append(entry)
    results = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                             f.rule_id)):
        results.append({
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path.replace("\\", "/")},
                    "region": {"startLine": f.line, "startColumn": f.col},
                },
            }],
        })
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simflow",
                    "informationUri": "https://example.invalid/simflow",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
