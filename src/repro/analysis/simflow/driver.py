"""The simflow driver: graph → taint → protocols → suppressions.

``run_simflow(paths)`` is the single entry point used by the CLI, the
CI job, and the tests.  ``changed=`` enables the pre-commit mode: the
analysis set shrinks to the import-closure of the changed files plus
their transitive importers, and only findings *in* the changed files
and their importers are reported.  That closure is exactly the set of
modules whose summaries can influence a finding in a touched file, so
pruned and full runs agree on touched files (proven by a test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..rules import Finding
from ..simlint import _scan_suppressions
from .graph import ProjectGraph
from .protocols import ProtocolAnalysis
from .taint import TaintAnalysis

__all__ = ["FlowReport", "run_simflow"]


@dataclass
class FlowReport:
    """Everything one simflow run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    analyzed_files: List[str] = field(default_factory=list)
    reported_files: List[str] = field(default_factory=list)
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)


def _resolve(path: Union[str, Path]) -> str:
    return str(Path(path).resolve())


def _closure(
    graph: ProjectGraph, changed_paths: Sequence[str],
) -> Tuple[Set[str], Set[str]]:
    """(analysis module set, report module set) for changed files."""
    by_resolved = {_resolve(m.path): m.name for m in graph.modules.values()}
    changed = {
        by_resolved[_resolve(p)]
        for p in changed_paths
        if _resolve(p) in by_resolved
    }
    # Transitive importers: modules whose findings the change can affect.
    report = set(changed)
    frontier = set(changed)
    while frontier:
        nxt: Set[str] = set()
        for name in frontier:
            for importer in graph.importers_of(name):
                if importer not in report:
                    report.add(importer)
                    nxt.add(importer)
        frontier = nxt
    # Forward import closure: modules whose summaries feed the report set.
    analysis = set(report)
    frontier = set(report)
    while frontier:
        nxt = set()
        for name in frontier:
            mod = graph.modules.get(name)
            if mod is None:
                continue
            for imp in mod.imports:
                if imp not in analysis:
                    analysis.add(imp)
                    nxt.add(imp)
        frontier = nxt
    return analysis, report


def run_simflow(
    paths: Sequence[Union[str, Path]],
    changed: Optional[Sequence[str]] = None,
) -> FlowReport:
    graph = ProjectGraph.build(paths)
    report_paths: Optional[Set[str]] = None

    if changed is not None:
        analysis_mods, report_mods = _closure(graph, list(changed))
        pruned = [graph.modules[m].path for m in sorted(analysis_mods)]
        report_paths = {graph.modules[m].path for m in report_mods}
        graph = ProjectGraph.build(pruned)

    findings: List[Finding] = []
    findings.extend(TaintAnalysis(graph).run())
    findings.extend(ProtocolAnalysis(graph).run())

    # Per-line suppressions — same comment syntax as simlint
    # (`# simlint: disable=SF300 -- reason`); malformed suppressions are
    # simlint's SL100 business, not re-reported here.
    suppressed_total = 0
    kept: List[Finding] = []
    suppression_maps: Dict[str, Dict[int, Set[str]]] = {}
    for mod in graph.modules.values():
        smap, _bad = _scan_suppressions(mod.source, mod.path)
        suppression_maps[mod.path] = smap
    for f in findings:
        smap = suppression_maps.get(f.path, {})
        if f.rule_id in smap.get(f.line, set()):
            suppressed_total += 1
            continue
        kept.append(f)

    if report_paths is not None:
        reported = [f for f in kept if f.path in report_paths]
    else:
        reported = kept
    reported.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))

    return FlowReport(
        findings=reported,
        suppressed=suppressed_total,
        analyzed_files=sorted(graph.by_path),
        reported_files=sorted(report_paths) if report_paths is not None
        else sorted(graph.by_path),
        parse_errors=list(graph.parse_errors),
    )
