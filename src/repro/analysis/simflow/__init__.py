"""simflow — whole-program dataflow & lifecycle-protocol analysis.

Three passes over ``src/repro``:

1. :mod:`.graph` — project-wide module/symbol/call graph;
2. :mod:`.taint` — interprocedural taint from nondeterminism sources to
   determinism sinks (SF200–SF203);
3. :mod:`.protocols` — per-object lifecycle state machines
   (SF300–SF304) from a declarative registry.

Entry point: :func:`run_simflow`.  Baseline/SARIF plumbing lives in
:mod:`.baseline` and :mod:`.sarif`.
"""

from .baseline import (
    diff_against_baseline,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from .driver import FlowReport, run_simflow
from .graph import ProjectGraph
from .protocols import LIFECYCLE_PROTOCOLS, PAIRED_MUTATIONS
from .sarif import to_sarif

__all__ = [
    "run_simflow",
    "FlowReport",
    "ProjectGraph",
    "LIFECYCLE_PROTOCOLS",
    "PAIRED_MUTATIONS",
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
    "to_sarif",
]
