"""Pass 2 — interprocedural taint: sources to determinism sinks.

The syntactic SL rules fire only when a forbidden API is called directly
at the offending line.  This pass instead follows *values*:

sources
    wall-clock reads, OS/process entropy, global-state RNG draws,
    unblessed RNG construction, ``id()`` and builtin ``hash()``.
propagation
    assignments (flow-sensitive in statement order, branches unioned),
    arithmetic/formatting expressions, container literals, function
    returns (via per-function summaries run to a fixpoint), default
    argument values, and ``self.attr`` stores read back anywhere in the
    class.
sinks
    event posts and sim delays (``env.timeout``/``hold``/``_post``),
    sim-state writes (attribute stores in sim-coupled modules),
    ordering keys (``sorted``/``min``/``max``/``.sort`` keys, heap
    pushes), and ``repro.sim.rng(...)`` arguments.

A helper that launders a source — ``def jitter(): return time.time()``
— gets a summary saying "returns wall-clock taint", so every call site
inherits the taint; a helper whose *parameter* reaches a sink gets a
"param i flows to <sink>" summary entry, so passing a tainted argument
fires at the call site with the path through the helper named in the
message.  Both directions compose transitively through the fixpoint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..rules import FLOW_RULES_BY_ID, Finding
from ..simlint import (
    _ENTROPY,
    _GLOBAL_RNG,
    _RNG_CONSTRUCTORS,
    _WALL_CLOCK,
    _is_sim_coupled,
)
from .graph import FunctionInfo, ModuleInfo, ProjectGraph

__all__ = ["TaintAnalysis", "Summary"]

# Taint kinds (stable strings — they appear in messages and baselines).
WALL_CLOCK = "wall-clock"
ENTROPY = "entropy"
GLOBAL_RNG = "global-rng"
UNBLESSED_RNG = "unblessed-rng"
ID_ORDER = "id-order"
HASH_ORDER = "hash-order"

_ORDERING_KINDS = frozenset({ID_ORDER, HASH_ORDER, WALL_CLOCK, ENTROPY,
                             GLOBAL_RNG, UNBLESSED_RNG})

#: taint kind -> (origin description, origin line).  Param markers use
#: the pseudo-kind "param:<i>" with origin None.
Taint = Dict[str, Tuple[str, int]]

#: The blessed substream constructor (its *arguments* are an SF203 sink;
#: its return value is clean).
_BLESSED_RNG = {"repro.sim.rng.rng", "repro.sim.rng"}

#: Builtin calls whose result is simply as tainted as their arguments.
_SORT_FUNCS = {"sorted", "min", "max"}


def _is_param(kind: str) -> bool:
    return kind.startswith("param:")


def _concrete(taint: Taint) -> Taint:
    return {k: v for k, v in taint.items() if not _is_param(k)}


def _merge(into: Taint, other: Taint) -> bool:
    """Union ``other`` into ``into``; True if anything new appeared."""
    changed = False
    for kind, origin in other.items():
        if kind not in into:
            into[kind] = origin
            changed = True
    return changed


@dataclass
class Summary:
    """Interprocedural facts about one function."""

    #: Taint kinds the return value may carry (param markers included).
    returns: Taint = field(default_factory=dict)
    #: param index -> {(rule_id, sink description)} reachable from it.
    param_sinks: Dict[int, FrozenSet[Tuple[str, str]]] = field(
        default_factory=dict
    )
    #: Class qname when the function returns a known-class instance.
    return_type: Optional[str] = None

    def snapshot(self) -> Tuple:
        return (
            frozenset(self.returns),
            frozenset((i, s) for i, ss in self.param_sinks.items() for s in ss),
            self.return_type,
        )


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _receiver_leaf(node: ast.AST) -> Optional[str]:
    """Final name of a call receiver: ``self.env.timeout`` -> "env"."""
    if isinstance(node, ast.Attribute):
        value = node.value
        if isinstance(value, ast.Attribute):
            return value.attr
        if isinstance(value, ast.Name):
            return value.id
    return None


class TaintAnalysis:
    """Runs the fixpoint over a :class:`ProjectGraph` and emits findings."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, Summary] = {
            q: Summary() for q in graph.functions
        }
        #: (class_qname, attr) -> concrete taint stored there.
        self.attr_taint: Dict[Tuple[str, str], Taint] = {}
        #: (module_name, var) -> concrete taint of a module-level global.
        self.global_taint: Dict[Tuple[str, str], Taint] = {}
        #: class attr type map: (class_qname, attr) -> class qname.
        self.attr_types: Dict[str, Dict[str, str]] = {}
        self.sim_coupled: Dict[str, bool] = {}
        self.findings: List[Finding] = []
        self._prepare()

    # -- setup ----------------------------------------------------------------
    def _prepare(self) -> None:
        for mod in self.graph.modules.values():
            self.sim_coupled[mod.name] = _is_sim_coupled(mod.tree, mod.path)
            for cls in mod.classes.values():
                types: Dict[str, str] = {}
                for node in ast.walk(cls.node):
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    else:
                        continue
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(value, ast.Call)
                    ):
                        continue
                    dotted = _dotted(value.func)
                    if dotted is None:
                        continue
                    cinfo = self.graph.resolve_class(mod, dotted)
                    if cinfo is not None:
                        types[target.attr] = cinfo.qname
                self.attr_types[cls.qname] = types

    # -- fixpoint -------------------------------------------------------------
    def run(self) -> List[Finding]:
        # Seed module-global taint first so function bodies can read it
        # during the fixpoint (e.g. `START = time.time()` at top level).
        for mod in sorted(self.graph.modules.values(), key=lambda m: m.name):
            self._analyze_module_body(mod, emit=False)
        for _ in range(8):
            changed = False
            for qname in sorted(self.graph.functions):
                if self._analyze(self.graph.functions[qname], emit=False):
                    changed = True
            if not changed:
                break
        self.findings = []
        for qname in sorted(self.graph.functions):
            self._analyze(self.graph.functions[qname], emit=True)
        for mod in sorted(self.graph.modules.values(), key=lambda m: m.name):
            self._analyze_module_body(mod, emit=True)
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return self.findings

    # -- module-level statements ----------------------------------------------
    def _analyze_module_body(self, mod: ModuleInfo, emit: bool) -> None:
        walker = _FunctionTaint(self, mod, None, None, emit)
        top = [
            s for s in mod.tree.body
            if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef))
        ]
        walker.run_block(top)
        for (name, taint) in walker.env.items():
            concrete = _concrete(taint)
            if concrete:
                slot = self.global_taint.setdefault((mod.name, name), {})
                _merge(slot, concrete)

    # -- per-function ---------------------------------------------------------
    def _analyze(self, info: FunctionInfo, emit: bool) -> bool:
        summary = self.summaries[info.qname]
        before = summary.snapshot()
        walker = _FunctionTaint(self, info.module, info, summary, emit)
        walker.seed_params()
        walker.run_block(info.node.body)
        return summary.snapshot() != before


class _FunctionTaint:
    """One statement-ordered taint walk over a function (or module) body."""

    def __init__(
        self,
        analysis: TaintAnalysis,
        mod: ModuleInfo,
        info: Optional[FunctionInfo],
        summary: Optional[Summary],
        emit: bool,
    ) -> None:
        self.analysis = analysis
        self.graph = analysis.graph
        self.mod = mod
        self.info = info
        self.summary = summary
        self.emit = emit
        self.env: Dict[str, Taint] = {}
        self.local_types: Dict[str, str] = {}
        self.class_qname = info.class_qname if info is not None else None

    # -- parameter seeding ----------------------------------------------------
    def seed_params(self) -> None:
        assert self.info is not None
        args = self.info.node.args
        names = self.info.params
        for i, name in enumerate(names):
            self.env[name] = {f"param:{i}": ("", 0)}
        # Default argument values are evaluated at def time; a tainted
        # default taints the parameter for every call that omits it.
        pos = args.posonlyargs + args.args
        for arg, default in zip(pos[len(pos) - len(args.defaults):],
                                args.defaults):
            taint = _concrete(self.taint_of(default))
            if taint:
                _merge(self.env.setdefault(arg.arg, {}), taint)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is None:
                continue
            taint = _concrete(self.taint_of(default))
            if taint:
                _merge(self.env.setdefault(arg.arg, {}), taint)

    # -- block / statement walk -----------------------------------------------
    def run_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def _branch(self, *blocks: Sequence[ast.stmt]) -> None:
        """Run each block on a copy of the env; union the results."""
        base = {k: dict(v) for k, v in self.env.items()}
        merged: Dict[str, Taint] = {k: dict(v) for k, v in base.items()}
        for block in blocks:
            self.env = {k: dict(v) for k, v in base.items()}
            self.run_block(block)
            for name, taint in self.env.items():
                _merge(merged.setdefault(name, {}), taint)
        self.env = merged

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # analyzed separately
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                taint = self.taint_of(node.value)
                if self.summary is not None:
                    _merge(self.summary.returns, taint)
                    rtype = self._type_of(node.value)
                    if rtype is not None:
                        self.summary.return_type = rtype
        elif isinstance(node, ast.If):
            self.taint_of(node.test)
            self._branch(node.body, node.orelse)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_taint = self.taint_of(node.iter)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = dict(iter_taint)
            # Two rounds so loop-carried taint reaches first-line uses.
            self._branch(list(node.body) + list(node.body), node.orelse, [])
        elif isinstance(node, ast.While):
            self.taint_of(node.test)
            self._branch(list(node.body) + list(node.body), node.orelse, [])
        elif isinstance(node, ast.Try):
            self._branch(node.body, [])
            for handler in node.handlers:
                self._branch(handler.body, [])
            self.run_block(node.orelse)
            self.run_block(node.finalbody)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taint = self.taint_of(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = dict(taint)
            self.run_block(node.body)
        elif isinstance(node, ast.Expr):
            self.taint_of(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.taint_of(child)
        elif isinstance(node, (ast.Delete, ast.Global, ast.Nonlocal,
                               ast.Pass, ast.Break, ast.Continue,
                               ast.Import, ast.ImportFrom)):
            pass
        else:  # pragma: no cover - future statement kinds
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.taint_of(child)

    def _assign(self, node) -> None:
        if isinstance(node, ast.AugAssign):
            value_taint = self.taint_of(node.value)
            targets = [node.target]
            augment = True
        else:
            if node.value is None:
                return
            value_taint = self.taint_of(node.value)
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            augment = False
        vtype = self._type_of(node.value) if not augment else None
        for target in targets:
            self._bind(target, value_taint, vtype, augment, node)

    def _bind(self, target: ast.AST, taint: Taint, vtype: Optional[str],
              augment: bool, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if augment:
                _merge(self.env.setdefault(target.id, {}), taint)
            else:
                self.env[target.id] = dict(taint)
                if vtype is not None:
                    self.local_types[target.id] = vtype
                else:
                    self.local_types.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, None, augment, stmt)
        elif isinstance(target, ast.Attribute):
            self._attr_store(target, taint, stmt)
        elif isinstance(target, ast.Subscript):
            self.taint_of(target.value)
            self.taint_of(target.slice)

    def _attr_store(self, target: ast.Attribute, taint: Taint,
                    stmt: ast.stmt) -> None:
        concrete = _concrete(taint)
        # Record self.<attr> taint for class-wide reads.
        if (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.class_qname is not None
            and concrete
        ):
            slot = self.analysis.attr_taint.setdefault(
                (self.class_qname, target.attr), {}
            )
            _merge(slot, concrete)
        # SF201: sim-state write of a nondeterministic value.
        if concrete and self.analysis.sim_coupled.get(self.mod.name):
            self._report(
                "SF201", stmt,
                f"attribute store `{ast.unparse(target)}`", concrete,
            )

    # -- expression taint ------------------------------------------------------
    def taint_of(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Name):
            taint = dict(self.env.get(node.id, {}))
            g = self.analysis.global_taint.get((self.mod.name, node.id))
            if g:
                _merge(taint, g)
            return taint
        if isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self" \
                    and self.class_qname is not None:
                stored = self.analysis.attr_taint.get(
                    (self.class_qname, node.attr)
                )
                return dict(stored) if stored else {}
            return self.taint_of(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Lambda):
            return {}
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            taint: Taint = {}
            for gen in node.generators:
                _merge(taint, self.taint_of(gen.iter))
            if isinstance(node, ast.DictComp):
                _merge(taint, self.taint_of(node.key))
                _merge(taint, self.taint_of(node.value))
            else:
                _merge(taint, self.taint_of(node.elt))
            return taint
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            return self.taint_of(node.value) if node.value is not None else {}
        if isinstance(node, ast.NamedExpr):
            taint = self.taint_of(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = dict(taint)
            return taint
        # Generic expression: union over child expressions.
        taint = {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                _merge(taint, self.taint_of(child))
        return taint

    def _type_of(self, node: ast.expr) -> Optional[str]:
        """Class qname of an expression, when statically knowable."""
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                cinfo = self.graph.resolve_class(self.mod, dotted)
                if cinfo is not None:
                    return cinfo.qname
            target = self.graph.resolve_call_target(
                self.mod, node.func, self.class_qname,
                self.local_types, self.analysis.attr_types.get(
                    self.class_qname or "", {}
                ),
            )
            if target is not None:
                return self.analysis.summaries[target.qname].return_type
        elif isinstance(node, ast.Name):
            return self.local_types.get(node.id)
        return None

    # -- calls: sources, summaries, sinks --------------------------------------
    def _resolved_dotted(self, func: ast.AST) -> Optional[str]:
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        full = self.mod.aliases.get(head, head)
        return f"{full}.{rest}" if rest else full

    def _call(self, node: ast.Call) -> Taint:
        arg_taints = [self.taint_of(a) for a in node.args]
        kw_taints = {kw.arg: self.taint_of(kw.value) for kw in node.keywords}
        resolved = self._resolved_dotted(node.func)
        line = node.lineno

        # Sources.
        if resolved in _WALL_CLOCK:
            return {WALL_CLOCK: (f"{resolved}()", line)}
        if resolved in _ENTROPY:
            return {ENTROPY: (f"{resolved}()", line)}
        if resolved in _GLOBAL_RNG:
            return {GLOBAL_RNG: (f"{resolved}()", line)}
        if resolved in _RNG_CONSTRUCTORS:
            return {UNBLESSED_RNG: (f"{resolved}()", line)}
        if isinstance(node.func, ast.Name) and not node.keywords:
            if node.func.id == "id" and "id" not in self.mod.aliases:
                return {ID_ORDER: ("id()", line)}
            if node.func.id == "hash" and "hash" not in self.mod.aliases:
                return {HASH_ORDER: ("hash()", line)}

        # Sinks checked before generic propagation.
        self._check_sinks(node, resolved, arg_taints, kw_taints)

        # Blessed constructor: returns a clean, named substream.
        canonical = self.graph._canonical(resolved) if resolved else None
        if canonical in _BLESSED_RNG:
            return {}

        # Project-internal call: apply the callee summary.
        target = self.graph.resolve_call_target(
            self.mod, node.func, self.class_qname,
            self.local_types,
            self.analysis.attr_types.get(self.class_qname or "", {}),
        )
        if target is not None:
            return self._apply_summary(node, target, arg_taints, kw_taints)

        # Unknown call: result is as tainted as its arguments (catches
        # laundering through str(), math helpers, formatting, ...).
        taint: Taint = {}
        for t in arg_taints:
            _merge(taint, t)
        for t in kw_taints.values():
            _merge(taint, t)
        _merge(taint, self.taint_of(node.func) if isinstance(
            node.func, ast.Attribute) else {})
        return taint

    def _arg_index_map(
        self, node: ast.Call, target: FunctionInfo,
        arg_taints: List[Taint], kw_taints: Dict[Optional[str], Taint],
    ) -> List[Tuple[int, Taint, ast.expr]]:
        """(callee param index, taint, arg node) for each call argument."""
        params = target.params
        offset = 0
        if target.class_qname is not None and params and params[0] == "self" \
                and isinstance(node.func, ast.Attribute):
            offset = 1
        out: List[Tuple[int, Taint, ast.expr]] = []
        for i, (taint, arg) in enumerate(zip(arg_taints, node.args)):
            out.append((i + offset, taint, arg))
        for kw, taint in kw_taints.items():
            if kw is not None and kw in params:
                out.append((params.index(kw), taint,
                            next(k.value for k in node.keywords
                                 if k.arg == kw)))
        return out

    def _apply_summary(
        self, node: ast.Call, target: FunctionInfo,
        arg_taints: List[Taint], kw_taints: Dict[Optional[str], Taint],
    ) -> Taint:
        callee = self.analysis.summaries[target.qname]
        mapped = self._arg_index_map(node, target, arg_taints, kw_taints)
        result: Taint = {}
        for kind, origin in callee.returns.items():
            if _is_param(kind):
                idx = int(kind.split(":", 1)[1])
                for (i, taint, _a) in mapped:
                    if i == idx:
                        _merge(result, taint)
            else:
                _merge(result, {kind: origin})
        # Param-to-sink laundering: a tainted argument reaches a sink
        # inside the callee (possibly transitively).
        for (i, taint, arg) in mapped:
            sinks = callee.param_sinks.get(i)
            if not sinks:
                continue
            concrete = _concrete(taint)
            for rule_id, descr in sorted(sinks):
                if concrete:
                    if self.emit:
                        self._report(
                            rule_id, arg,
                            f"{descr} via {target.qname}()", concrete,
                        )
                else:
                    # Propagate to our own params for transitivity.
                    self._record_param_sinks(taint, rule_id, descr)
        return result

    # -- sink checks -----------------------------------------------------------
    def _record_param_sinks(self, taint: Taint, rule_id: str,
                            descr: str) -> None:
        if self.summary is None:
            return
        for kind in taint:
            if _is_param(kind):
                idx = int(kind.split(":", 1)[1])
                have = set(self.summary.param_sinks.get(idx, frozenset()))
                have.add((rule_id, descr))
                self.summary.param_sinks[idx] = frozenset(have)

    def _sink(self, rule_id: str, descr: str, node: ast.AST,
              taint: Taint) -> None:
        concrete = _concrete(taint)
        if concrete and self.emit:
            self._report(rule_id, node, descr, concrete)
        self._record_param_sinks(taint, rule_id, descr)

    def _check_sinks(
        self, node: ast.Call, resolved: Optional[str],
        arg_taints: List[Taint], kw_taints: Dict[Optional[str], Taint],
    ) -> None:
        func = node.func
        meth = func.attr if isinstance(func, ast.Attribute) else None
        leaf = _receiver_leaf(func) if meth is not None else None
        recv_name = None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            recv_name = func.value.id

        # SF200 — event post / sim delay arguments.
        is_timeout = meth == "timeout" and (
            recv_name == "env" or leaf == "env"
            or (recv_name is not None
                and self.local_types.get(recv_name, "").endswith("Environment"))
        )
        is_hold = meth == "hold"
        is_post = meth in {"_post", "_post_at"} and (
            recv_name == "env" or leaf == "env"
        )
        if is_timeout or is_hold or is_post:
            where = f"{ast.unparse(func)}()"
            for taint, arg in zip(arg_taints, node.args):
                self._sink("SF200", f"event post {where}", arg, taint)
            for kw in node.keywords:
                if kw.arg in {"delay", "duration", "time"}:
                    self._sink("SF200", f"event post {where}", kw.value,
                               kw_taints[kw.arg])

        # SF202 — ordering keys.
        sort_like = (
            (isinstance(func, ast.Name) and func.id in _SORT_FUNCS)
            or meth == "sort"
        )
        if sort_like:
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                key = kw.value
                key_taint: Taint = {}
                if isinstance(key, ast.Lambda):
                    key_taint = self.taint_of(key.body)
                else:
                    ktarget = self.graph.resolve_call_target(
                        self.mod, key, self.class_qname, self.local_types,
                        self.analysis.attr_types.get(self.class_qname or "", {}),
                    )
                    if ktarget is not None:
                        key_taint = dict(_concrete(
                            self.analysis.summaries[ktarget.qname].returns
                        ))
                key_taint = {k: v for k, v in key_taint.items()
                             if _is_param(k) or k in _ORDERING_KINDS}
                self._sink(
                    "SF202",
                    f"ordering key of {ast.unparse(func)}()", key, key_taint,
                )
        if resolved in {"heapq.heappush", "heapq.heappushpop"} \
                and len(arg_taints) >= 2:
            key_taint = {k: v for k, v in arg_taints[1].items()
                         if _is_param(k) or k in _ORDERING_KINDS}
            self._sink("SF202", "heap ordering (heapq.heappush)",
                       node.args[1], key_taint)

        # SF203 — rng(...) argument material.
        canonical = self.graph._canonical(resolved) if resolved else None
        if canonical in _BLESSED_RNG:
            for taint, arg in zip(arg_taints, node.args):
                self._sink("SF203", "repro.sim.rng() seed material",
                           arg, taint)
            for kw in node.keywords:
                self._sink("SF203", "repro.sim.rng() seed material",
                           kw.value, kw_taints[kw.arg])

    # -- reporting -------------------------------------------------------------
    def _report(self, rule_id: str, node: ast.AST, descr: str,
                concrete: Taint) -> None:
        kinds = sorted(concrete)
        origins = "; ".join(
            f"{concrete[k][0]} @ line {concrete[k][1]}" if concrete[k][1]
            else concrete[k][0]
            for k in kinds
        )
        where = self.info.qname if self.info is not None \
            else f"{self.mod.name} (module scope)"
        rule = FLOW_RULES_BY_ID[rule_id]
        self.analysis.findings.append(Finding(
            path=self.mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=(
                f"{'/'.join(kinds)} value reaches {descr} "
                f"in {where} [source: {origins}]"
            ),
            hint=rule.hint,
        ))
