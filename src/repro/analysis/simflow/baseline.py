"""Baseline bookkeeping: fail CI only on *new* findings.

A finding's fingerprint must survive unrelated edits to the same file,
so it hashes the path, rule, and a line-number-normalized message —
never the line itself — plus an occurrence index to keep N identical
findings in one file distinct.  The committed ``simflow-baseline.json``
carries a human ``reason`` per entry: a baseline entry is a reviewed
false positive (or an accepted debt item), not a mute button.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..rules import Finding

__all__ = [
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
]

BASELINE_VERSION = 1

_LINE_REF = re.compile(r"line \d+")


def _normalize(message: str) -> str:
    return _LINE_REF.sub("line N", message)


def fingerprint_findings(
    findings: Sequence[Finding],
) -> List[Tuple[str, Finding]]:
    """(fingerprint, finding) pairs; stable under line drift."""
    counters: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[str, Finding]] = []
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                              f.rule_id, f.message))
    for f in ordered:
        norm = _normalize(f.message)
        sig = (f.path, f.rule_id, norm)
        idx = counters.get(sig, 0)
        counters[sig] = idx + 1
        digest = hashlib.sha256(
            f"{f.path}|{f.rule_id}|{norm}|{idx}".encode("utf-8")
        ).hexdigest()[:16]
        out.append((digest, f))
    return out


def load_baseline(path: Union[str, Path]) -> Dict[str, dict]:
    """fingerprint -> entry; empty when the file doesn't exist."""
    p = Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text(encoding="utf-8"))
    return {e["fingerprint"]: e for e in data.get("findings", [])}


def write_baseline(
    path: Union[str, Path],
    findings: Sequence[Finding],
    keep_reasons: Dict[str, dict],
) -> int:
    """Write all current findings as the new baseline.

    Reasons from ``keep_reasons`` (the previous baseline) are preserved
    for fingerprints that persist; new entries get a placeholder the
    reviewer must replace.
    """
    entries = []
    for fp, f in fingerprint_findings(findings):
        prev = keep_reasons.get(fp)
        entries.append({
            "fingerprint": fp,
            "rule": f.rule_id,
            "path": f.path,
            "line": f.line,
            "message": f.message,
            "reason": prev["reason"] if prev else "(unreviewed — add a reason)",
        })
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def diff_against_baseline(
    findings: Sequence[Finding],
    baseline: Dict[str, dict],
) -> Tuple[List[Tuple[str, Finding]], List[str]]:
    """(new findings with fingerprints, stale baseline fingerprints)."""
    current = fingerprint_findings(findings)
    seen = {fp for fp, _ in current}
    new = [(fp, f) for fp, f in current if fp not in baseline]
    stale = sorted(fp for fp in baseline if fp not in seen)
    return new, stale
