"""Pass 1 — the project graph: modules, symbols, imports, call edges.

simflow's interprocedural passes need three whole-program maps that the
per-file ``simlint`` pass cannot build:

* a **module graph** (who imports whom), for the ``--changed``
  reachability pruning and for resolving ``from ..sim import Resource``
  style relative imports;
* a **symbol table** of every function, method, and class, keyed by
  qualified name (``repro.sim.resources.Resource.hold``), with one-level
  re-export resolution so ``from ..sim import rng`` lands on
  ``repro.sim.rng.rng``;
* a best-effort **call resolver** mapping a call expression inside one
  function to the qualified name of its target, via the module's alias
  table, ``self.<method>`` lookup with base-class walking, and a
  lightweight type map for locals/attributes bound to known-class
  constructor calls.

Everything is plain ``ast`` — no imports are executed, so the analyzer
is safe to run on broken or hostile input.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["ModuleInfo", "FunctionInfo", "ClassInfo", "ProjectGraph"]


def _module_name(path: Path) -> str:
    """Dotted module name for ``path`` (anchored at a ``src`` dir or
    the first ``repro`` segment; falls back to the stem)."""
    parts = list(path.parts)
    name_parts: List[str] = []
    anchor = None
    if "src" in parts:
        anchor = parts.index("src") + 1
    elif "repro" in parts:
        anchor = parts.index("repro")
    if anchor is not None and anchor < len(parts):
        name_parts = list(parts[anchor:])
    else:
        name_parts = [parts[-1]]
    if name_parts[-1].endswith(".py"):
        name_parts[-1] = name_parts[-1][: -len(".py")]
    if name_parts[-1] == "__init__":
        name_parts.pop()
    return ".".join(name_parts) if name_parts else path.stem


@dataclass
class FunctionInfo:
    """One function or method, with its defining context."""

    qname: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    module: "ModuleInfo"
    class_qname: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class: methods plus resolved base-class names."""

    qname: str
    node: ast.ClassDef
    module: "ModuleInfo"
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    name: str
    tree: ast.Module
    source: str
    #: local alias -> fully qualified dotted target ("np" -> "numpy",
    #: "Resource" -> "repro.sim.resources.Resource" after resolution).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: project-internal module names this module imports.
    imports: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def _resolve_relative(module_name: str, is_package: bool, level: int,
                      target: str) -> str:
    """Absolute module name for a ``from ...target import x`` statement."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]  # the containing package
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


class ProjectGraph:
    """Whole-program symbol/call/import graph over a set of files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.parse_errors: List[Tuple[str, str]] = []

    # -- construction ---------------------------------------------------------
    @classmethod
    def build(cls, paths: Sequence[Union[str, Path]]) -> "ProjectGraph":
        graph = cls()
        for f in _expand(paths):
            graph._add_file(f)
        graph._link()
        return graph

    def _add_file(self, path: Path) -> None:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            self.parse_errors.append((str(path), str(exc)))
            return
        name = _module_name(path)
        mod = ModuleInfo(path=str(path), name=name, tree=tree, source=source)
        is_package = path.name == "__init__.py"
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.partition(".")[0]
                    mod.aliases[local] = target
                    mod.imports.append(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    base = _resolve_relative(
                        name, is_package, node.level, node.module or ""
                    )
                mod.imports.append(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mod.aliases[alias.asname or alias.name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        self._collect_defs(mod, tree.body, prefix=name, class_qname=None)
        self.modules[name] = mod
        self.by_path[str(path)] = mod

    def _collect_defs(self, mod: ModuleInfo, body: Iterable[ast.stmt],
                      prefix: str, class_qname: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{node.name}"
                info = FunctionInfo(
                    qname=qname, node=node, module=mod,
                    class_qname=class_qname,
                )
                mod.functions[qname] = info
                self.functions[qname] = info
                if class_qname is not None:
                    self.classes[class_qname].methods[node.name] = info
                # Nested defs: collected for completeness (rare here).
                self._collect_defs(mod, node.body, qname, class_qname)
            elif isinstance(node, ast.ClassDef):
                qname = f"{prefix}.{node.name}"
                cinfo = ClassInfo(qname=qname, node=node, module=mod)
                for base in node.bases:
                    dotted = _dotted(base)
                    if dotted:
                        cinfo.bases.append(dotted)
                mod.classes[qname] = cinfo
                self.classes[qname] = cinfo
                self._collect_defs(mod, node.body, qname, qname)

    def _link(self) -> None:
        """Resolve alias targets through one level of re-exports and
        keep only project-internal import edges."""
        for mod in self.modules.values():
            resolved: Dict[str, str] = {}
            for local, target in mod.aliases.items():
                resolved[local] = self._canonical(target)
            mod.aliases = resolved
            mod.imports = sorted({
                imp for imp in (self._canonical_module(i) for i in mod.imports)
                if imp is not None
            })

    def _canonical(self, dotted: str, depth: int = 0) -> str:
        """Follow ``repro.sim.Resource`` through package re-exports to
        ``repro.sim.resources.Resource`` (bounded depth)."""
        if depth > 4:
            return dotted
        if dotted in self.functions or dotted in self.classes \
                or dotted in self.modules:
            return dotted
        prefix, _, attr = dotted.rpartition(".")
        if not prefix:
            return dotted
        pkg = self.modules.get(prefix)
        if pkg is not None and attr in pkg.aliases:
            return self._canonical(pkg.aliases[attr], depth + 1)
        return dotted

    def _canonical_module(self, name: str) -> Optional[str]:
        """Project-internal module for an import target, else None."""
        while name:
            if name in self.modules:
                return name
            name = name.rpartition(".")[0]
        return None

    # -- queries --------------------------------------------------------------
    def importers_of(self, module_name: str) -> List[str]:
        return sorted(
            m.name for m in self.modules.values()
            if module_name in m.imports
        )

    def resolve_class(self, mod: ModuleInfo, dotted: str) -> Optional[ClassInfo]:
        """Class named ``dotted`` as seen from ``mod`` (alias-expanded)."""
        head, _, rest = dotted.partition(".")
        full = mod.aliases.get(head, head)
        full = f"{full}.{rest}" if rest else full
        full = self._canonical(full)
        if full in self.classes:
            return self.classes[full]
        # A name defined in the same module.
        local = f"{mod.name}.{dotted}"
        return self.classes.get(local)

    def method_on(self, class_qname: str, method: str,
                  depth: int = 0) -> Optional[FunctionInfo]:
        """Find ``method`` on the class or (recursively) its bases."""
        cinfo = self.classes.get(class_qname)
        if cinfo is None or depth > 8:
            return None
        if method in cinfo.methods:
            return cinfo.methods[method]
        for base in cinfo.bases:
            base_info = self.resolve_class(cinfo.module, base)
            if base_info is not None:
                found = self.method_on(base_info.qname, method, depth + 1)
                if found is not None:
                    return found
        return None

    def resolve_call_target(
        self, mod: ModuleInfo, func: ast.AST,
        self_class: Optional[str] = None,
        local_types: Optional[Dict[str, str]] = None,
        attr_types: Optional[Dict[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """Best-effort resolution of a call's target FunctionInfo.

        ``self_class`` is the enclosing class qname (for ``self.m()``),
        ``local_types``/``attr_types`` map local variable / ``self.attr``
        names to class qnames inferred from constructor assignments.
        """
        # self.method(...) — look on the class and its bases.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            recv, meth = func.value.id, func.attr
            if recv == "self" and self_class is not None:
                found = self.method_on(self_class, meth)
                if found is not None:
                    return found
            if local_types and recv in local_types:
                found = self.method_on(local_types[recv], meth)
                if found is not None:
                    return found
        # self.attr.method(...) — typed attribute receiver.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and attr_types and func.value.attr in attr_types
        ):
            found = self.method_on(attr_types[func.value.attr], func.attr)
            if found is not None:
                return found
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        full = mod.aliases.get(head, head)
        full = f"{full}.{rest}" if rest else full
        full = self._canonical(full)
        if full in self.functions:
            return self.functions[full]
        # Module-local call: f() defined at module scope.
        local = self._canonical(f"{mod.name}.{dotted}")
        if local in self.functions:
            return self.functions[local]
        # ClassName(...) constructor -> __init__ is handled by callers
        # via resolve_class; a plain function is all we resolve here.
        return None

    def __repr__(self) -> str:
        return (
            f"<ProjectGraph modules={len(self.modules)} "
            f"functions={len(self.functions)} classes={len(self.classes)}>"
        )


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _expand(paths: Sequence[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            # Directory walks skip `fixtures/` — those files are linter
            # *input* (deliberately broken), not project code.  Naming a
            # fixture file explicitly still analyzes it.
            files.extend(
                f for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
                and "fixtures" not in f.parts
            )
        else:
            files.append(p)
    # De-dup while preserving order.
    seen: Dict[str, None] = {}
    out: List[Path] = []
    for f in files:
        key = str(f)
        if key not in seen:
            seen[key] = None
            out.append(f)
    return out
