"""Pass 3 — lifecycle protocols as per-object state machines.

Each protocol in :data:`LIFECYCLE_PROTOCOLS` declares how a *handle* is
born (``req = resource.request()``), how it dies (``resource.release(req)``
or ``span.finish()``), and which exit kinds count as leaks.  The checker
runs a small intraprocedural abstract interpretation per function:

* handles move through HELD → RELEASED / ESCAPED;
* a handle that is returned, stored into an attribute/subscript, or
  passed into a non-release call **escapes** — ownership moved, we stop
  tracking (this is what makes ``request.span = span`` in the qpair
  clean);
* ``yield handle`` is *not* an escape — in this DES it means "wait for
  the grant", the canonical acquire idiom;
* ``try/finally`` bodies are pre-scanned: a release anywhere in the
  ``finally`` (even conditional, as in ``Resource.hold``) covers every
  exit inside the ``try``;
* at each exit (``return``, ``raise``, falling off the end) any handle
  still HELD is a leak, reported at the acquire line.

Branches are analyzed on copies and merged; only branches that fall
through contribute.  A branch that releases under an ``if handle:`` /
``if handle is not None:`` guard counts as a release, matching the
conditional-acquire idiom for optional tracers.

Known limitation (kept deliberately to control false positives): we do
not model the implicit exception edge at every ``yield`` — a process
killed mid-wait is the sanitizer's job, not the linter's.

The registry also carries *paired mutations* (SF304): clearing
in-flight qpair state must bump ``self._generation`` in the same
method, else stale device completions resurrect as fresh.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..rules import FLOW_RULES_BY_ID, Finding
from .graph import FunctionInfo, ProjectGraph

__all__ = [
    "HandleProtocol",
    "PairedMutation",
    "LIFECYCLE_PROTOCOLS",
    "PAIRED_MUTATIONS",
    "ProtocolAnalysis",
]

HELD = "held"
RELEASED = "released"
ESCAPED = "escaped"


@dataclass(frozen=True)
class HandleProtocol:
    """One acquire/release state machine.

    ``receiver_hints``: substrings, one of which must appear in the
    acquire receiver expression (empty = any receiver).  More specific
    protocols must precede laxer ones in the registry — first match
    wins (the transfer-credit rule shadows the generic resource rule).
    """

    rule_id: str
    label: str
    acquire_methods: FrozenSet[str]
    receiver_hints: Tuple[str, ...] = ()
    #: handle released when passed as an argument: resource.release(req)
    release_as_arg: FrozenSet[str] = frozenset()
    #: handle released as the receiver: span.finish()
    release_as_recv: FrozenSet[str] = frozenset()
    #: obligation keyed on the *receiver* (no handle value), released by
    #: calling one of these methods on the same receiver: ledger charges.
    receiver_keyed: bool = False
    release_on_receiver: FrozenSet[str] = frozenset()
    #: only exception exits leak (charges legitimately persist past a
    #: normal return and are undone elsewhere, e.g. ledger.on_free).
    leak_on_raise_only: bool = False


@dataclass(frozen=True)
class PairedMutation:
    """Mutating one attribute obliges mutating another in the same method."""

    rule_id: str
    label: str
    #: self.<attr>.clear() triggers the obligation
    clear_attrs: FrozenSet[str]
    #: self.<attr> = False triggers the obligation
    flag_attrs: FrozenSet[str]
    #: the method must also write self.<bump_attr>
    bump_attr: str


LIFECYCLE_PROTOCOLS: Tuple[HandleProtocol, ...] = (
    HandleProtocol(
        rule_id="SF302",
        label="transfer credit",
        acquire_methods=frozenset({"request"}),
        receiver_hints=("credit",),
        release_as_arg=frozenset({"release", "cancel"}),
    ),
    HandleProtocol(
        rule_id="SF300",
        label="resource slot",
        acquire_methods=frozenset({"request"}),
        release_as_arg=frozenset({"release", "cancel"}),
    ),
    HandleProtocol(
        rule_id="SF301",
        label="tracer span",
        acquire_methods=frozenset({"start"}),
        receiver_hints=("tracer",),
        release_as_recv=frozenset({"finish"}),
    ),
    HandleProtocol(
        rule_id="SF303",
        label="ledger charge",
        acquire_methods=frozenset({"charge", "reserve"}),
        receiver_hints=("ledger",),
        receiver_keyed=True,
        release_on_receiver=frozenset({"uncharge", "cancel", "rollback"}),
        leak_on_raise_only=True,
    ),
)

PAIRED_MUTATIONS: Tuple[PairedMutation, ...] = (
    PairedMutation(
        rule_id="SF304",
        label="qpair reset",
        clear_attrs=frozenset({"_live"}),
        flag_attrs=frozenset({"connected"}),
        bump_attr="_generation",
    ),
)


def _recv_src(func: ast.Attribute) -> str:
    try:
        return ast.unparse(func.value)
    except Exception:  # pragma: no cover - unparse is total on ast nodes
        return ""


def _match_acquire(call: ast.Call) -> Optional[HandleProtocol]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    recv = _recv_src(func).lower()
    for proto in LIFECYCLE_PROTOCOLS:
        if func.attr not in proto.acquire_methods:
            continue
        if proto.receiver_hints and not any(
            h in recv for h in proto.receiver_hints
        ):
            continue
        return proto
    return None


@dataclass
class _Obligation:
    protocol: HandleProtocol
    key: str
    acquire_line: int
    acquire_col: int
    recv: str
    state: str = HELD


@dataclass
class _Leak:
    obligation: _Obligation
    exit_kind: str
    exit_line: int


class ProtocolAnalysis:
    """Runs all lifecycle protocols over every function in the graph."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        self.findings = []
        for qname in sorted(self.graph.functions):
            info = self.graph.functions[qname]
            walker = _ProtocolWalker(info)
            for leak in walker.run():
                self._report(info, leak)
        self._check_paired_mutations()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return self.findings

    def _report(self, info: FunctionInfo, leak: _Leak) -> None:
        ob = leak.obligation
        rule = FLOW_RULES_BY_ID[ob.protocol.rule_id]
        handle = ob.key if not ob.protocol.receiver_keyed else ob.recv
        self.findings.append(Finding(
            path=info.module.path,
            line=ob.acquire_line,
            col=ob.acquire_col + 1,
            rule_id=ob.protocol.rule_id,
            message=(
                f"{ob.protocol.label} `{handle}` acquired here is not "
                f"released on a {leak.exit_kind} exit "
                f"(line {leak.exit_line}) in {info.qname}"
            ),
            hint=rule.hint,
        ))

    # -- SF304: paired attribute mutations ------------------------------------
    def _check_paired_mutations(self) -> None:
        for cls_qname in sorted(self.graph.classes):
            cinfo = self.graph.classes[cls_qname]
            attrs = _self_attrs(cinfo.node)
            for pm in PAIRED_MUTATIONS:
                if pm.bump_attr not in attrs:
                    continue  # protocol doesn't apply to this class
                for mname in sorted(cinfo.methods):
                    method = cinfo.methods[mname]
                    trigger = _find_trigger(method.node, pm)
                    if trigger is None:
                        continue
                    if _writes_attr(method.node, pm.bump_attr):
                        continue
                    rule = FLOW_RULES_BY_ID[pm.rule_id]
                    self.findings.append(Finding(
                        path=cinfo.module.path,
                        line=trigger.lineno,
                        col=trigger.col_offset + 1,
                        rule_id=pm.rule_id,
                        message=(
                            f"{pm.label}: in-flight state cleared in "
                            f"{method.qname} without bumping "
                            f"self.{pm.bump_attr}"
                        ),
                        hint=rule.hint,
                    ))


def _self_attrs(cls: ast.ClassDef) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and node.value.id == "self":
            out.add(node.attr)
    return out


def _find_trigger(fn: ast.AST, pm: PairedMutation) -> Optional[ast.AST]:
    hits = [n for n in ast.walk(fn) if _is_trigger(n, pm)]
    if not hits:
        return None
    return min(hits, key=lambda n: (n.lineno, n.col_offset))


def _is_trigger(node: ast.AST, pm: PairedMutation) -> bool:
    # self.<clear_attr>.clear()
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "clear"
        and isinstance(node.func.value, ast.Attribute)
        and isinstance(node.func.value.value, ast.Name)
        and node.func.value.value.id == "self"
        and node.func.value.attr in pm.clear_attrs
    ):
        return True
    # self.<flag_attr> = False
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in pm.flag_attrs
                and isinstance(node.value, ast.Constant)
                and node.value.value is False
            ):
                return True
    return False


def _writes_attr(fn: ast.AST, attr: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.AugAssign):
            t = node.target
            if isinstance(t, ast.Attribute) and \
                    isinstance(t.value, ast.Name) and t.value.id == "self" \
                    and t.attr == attr:
                return True
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Attribute) and \
                        isinstance(t.value, ast.Name) and \
                        t.value.id == "self" and t.attr == attr:
                    return True
    return False


class _ProtocolWalker:
    """Abstract interpretation of one function body."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.obligations: Dict[str, _Obligation] = {}
        #: stack of key-sets released by an enclosing finally/handler.
        self.covered: List[Set[str]] = []
        self.leaks: List[_Leak] = []
        self._reported: Set[Tuple[str, int]] = set()

    def run(self) -> List[_Leak]:
        terminated = self._walk_block(self.info.node.body)
        if not terminated:
            self._check_exit("fall-through", self._end_line())
        return self.leaks

    def _end_line(self) -> int:
        return getattr(self.info.node.body[-1], "end_lineno", None) or \
            self.info.node.body[-1].lineno

    # -- block walking --------------------------------------------------------
    def _walk_block(self, stmts: Sequence[ast.stmt]) -> bool:
        for stmt in stmts:
            if self._stmt(stmt):
                return True
        return False

    def _stmt(self, node: ast.stmt) -> bool:
        """Process one statement; True if control cannot fall through."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A handle captured by a nested def/closure escapes: the
            # callback owns the release now (deferred-completion idiom).
            for name in sorted(_names_in(node) & set(self.obligations)):
                if self.obligations[name].state == HELD:
                    self.obligations[name].state = ESCAPED
            return False
        if isinstance(node, ast.Return):
            self._escape_in(node.value)
            self._check_exit("return", node.lineno)
            return True
        if isinstance(node, ast.Raise):
            self._check_exit("raise", node.lineno)
            return True
        if isinstance(node, (ast.Break, ast.Continue)):
            return True
        if isinstance(node, ast.If):
            return self._branch([node.body, node.orelse],
                                test_names=_names_in(node.test))
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._scan_stmt_effects(node, header_only=True)
            self._branch([list(node.body), []])
            self._walk_block(node.orelse)
            return False
        if isinstance(node, ast.While):
            self._branch([list(node.body), []])
            self._walk_block(node.orelse)
            return False
        if isinstance(node, ast.Try):
            fin_cover = self._releases_in(node.finalbody)
            body_cover = set(fin_cover)
            for handler in node.handlers:
                body_cover |= self._releases_in(handler.body, raise_only=True)
            self.covered.append(body_cover)
            body_term = self._walk_block(node.body)
            self.covered.pop()
            # Handler exits still run the finally.
            self.covered.append(fin_cover)
            for handler in node.handlers:
                self._branch([handler.body, []])
            self.covered.pop()
            if not body_term:
                self._walk_block(node.orelse)
            final_term = self._walk_block(node.finalbody)
            return final_term or (body_term and not node.handlers)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._scan_expr(item.context_expr, assign_target=None)
            return self._walk_block(node.body)
        # Plain statements: acquires, releases, escapes.
        self._scan_stmt_effects(node)
        return False

    def _branch(self, blocks: List[Sequence[ast.stmt]],
                test_names: Optional[Set[str]] = None) -> bool:
        base = {k: _Obligation(**vars(ob)) for k, ob in
                self.obligations.items()}
        results: List[Tuple[Dict[str, _Obligation], bool]] = []
        for block in blocks:
            self.obligations = {k: _Obligation(**vars(ob))
                                for k, ob in base.items()}
            terminated = self._walk_block(block)
            results.append((self.obligations, terminated))
        merged: Dict[str, _Obligation] = {}
        fallthrough = [obs for obs, term in results if not term]
        all_terminated = not fallthrough
        if all_terminated:
            self.obligations = base
            return True
        keys = sorted({k for obs in fallthrough for k in obs})
        for key in keys:
            states = [obs[key] for obs in fallthrough if key in obs]
            merged[key] = self._merge_states(key, states, test_names)
        self.obligations = merged
        return False

    def _merge_states(self, key: str, states: List[_Obligation],
                      test_names: Optional[Set[str]]) -> _Obligation:
        if any(ob.state == ESCAPED for ob in states):
            out = states[0]
            out.state = ESCAPED
            return out
        released = [ob for ob in states if ob.state == RELEASED]
        if released and len(released) == len(states):
            return released[0]
        if released and test_names and key in test_names:
            # `if span is not None: span.finish()` — the guarded-release
            # idiom for conditionally acquired handles.
            return released[0]
        held = [ob for ob in states if ob.state == HELD]
        return held[0] if held else states[0]

    # -- effects within one statement -----------------------------------------
    def _scan_stmt_effects(self, node: ast.stmt,
                           header_only: bool = False) -> None:
        is_simple_assign = (
            (isinstance(node, ast.Assign) and len(node.targets) == 1)
            or (isinstance(node, ast.AnnAssign) and node.value is not None)
        )
        if is_simple_assign and not header_only:
            target = node.targets[0] if isinstance(node, ast.Assign) \
                else node.target
            value = node.value
            # Unwrap `req = yield resource.request()`-style wrappers.
            inner = value
            while isinstance(inner, (ast.Await, ast.Yield, ast.YieldFrom)) \
                    and inner.value is not None:
                inner = inner.value
            if isinstance(inner, ast.Call):
                proto = _match_acquire(inner)
                if proto is not None and not proto.receiver_keyed and \
                        isinstance(target, ast.Name):
                    self._scan_call_args(inner)
                    self.obligations[target.id] = _Obligation(
                        protocol=proto, key=target.id,
                        acquire_line=inner.lineno,
                        acquire_col=inner.col_offset,
                        recv=_recv_src(inner.func),
                    )
                    return
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._escape_in(value)
                return
            self._scan_expr(value, assign_target=target)
            if isinstance(target, ast.Name) and \
                    target.id in self.obligations and \
                    not _refs_name(value, target.id):
                # Rebinding the handle variable loses the old handle.
                del self.obligations[target.id]
            return
        if header_only:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._escape_in(node.iter)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, assign_target=None)

    def _scan_expr(self, node: Optional[ast.expr],
                   assign_target: Optional[ast.expr]) -> None:
        if node is None:
            return
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            inner = node.value
            # `yield handle` = wait for the grant; NOT an escape.
            if isinstance(inner, ast.Name):
                return
            self._scan_expr(inner, assign_target=None)
            return
        if isinstance(node, ast.Call):
            if not self._apply_release(node):
                proto = _match_acquire(node)
                if proto is not None and proto.receiver_keyed:
                    recv = _recv_src(node.func)  # type: ignore[arg-type]
                    key = f"recv:{recv}"
                    self.obligations[key] = _Obligation(
                        protocol=proto, key=key,
                        acquire_line=node.lineno,
                        acquire_col=node.col_offset,
                        recv=recv,
                    )
                    self._scan_call_args(node)
                    return
                self._scan_call_args(node)
            return
        if isinstance(node, ast.Name):
            return  # bare reads don't move state
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, assign_target=None)

    def _scan_call_args(self, call: ast.Call) -> None:
        """Handle passed into a non-release call escapes (ownership moves)."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            self._escape_in(arg)

    def _apply_release(self, call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        meth = func.attr
        done = False
        # resource.release(req) / credit.cancel(req)
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id in self.obligations:
                ob = self.obligations[arg.id]
                if meth in ob.protocol.release_as_arg:
                    ob.state = RELEASED
                    done = True
        # span.finish()
        if isinstance(func.value, ast.Name) and \
                func.value.id in self.obligations:
            ob = self.obligations[func.value.id]
            if meth in ob.protocol.release_as_recv:
                ob.state = RELEASED
                done = True
        # ledger.uncharge(...) — receiver-keyed obligations
        recv_key = f"recv:{_recv_src(func)}"
        if recv_key in self.obligations:
            ob = self.obligations[recv_key]
            if meth in ob.protocol.release_on_receiver:
                ob.state = RELEASED
                done = True
        if done:
            return True
        return False

    def _escape_in(self, node: Optional[ast.expr]) -> None:
        if node is None:
            return
        for name in sorted(_names_in(node)):
            ob = self.obligations.get(name)
            if ob is not None and ob.state == HELD:
                ob.state = ESCAPED

    # -- pre-scans -------------------------------------------------------------
    def _releases_in(self, stmts: Sequence[ast.stmt],
                     raise_only: bool = False) -> Set[str]:
        """Keys released anywhere (even conditionally) in ``stmts``."""
        out: Set[str] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call) or \
                        not isinstance(node.func, ast.Attribute):
                    continue
                meth = node.func.attr
                for key, ob in self.obligations.items():
                    if raise_only and not ob.protocol.leak_on_raise_only:
                        continue
                    if meth in ob.protocol.release_as_arg and any(
                        isinstance(a, ast.Name) and a.id == key
                        for a in node.args
                    ):
                        out.add(key)
                    if meth in ob.protocol.release_as_recv and \
                            isinstance(node.func.value, ast.Name) and \
                            node.func.value.id == key:
                        out.add(key)
                    if ob.protocol.receiver_keyed and \
                            meth in ob.protocol.release_on_receiver and \
                            f"recv:{_recv_src(node.func)}" == key:
                        out.add(key)
                # Pre-register future obligations? No: the finally scan
                # only covers handles already live when the try starts,
                # plus those acquired in the body (rescanned below).
        return out

    # -- exits ----------------------------------------------------------------
    def _check_exit(self, kind: str, line: int) -> None:
        covered: Set[str] = set()
        for layer in self.covered:
            covered |= layer
        for key in sorted(self.obligations):
            ob = self.obligations[key]
            if ob.state != HELD or key in covered:
                continue
            if ob.protocol.leak_on_raise_only and kind != "raise":
                continue
            mark = (key, ob.acquire_line)
            if mark in self._reported:
                continue
            self._reported.add(mark)
            self.leaks.append(_Leak(ob, kind, line))


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _refs_name(node: ast.AST, name: str) -> bool:
    return name in _names_in(node)
