"""perfcheck — prove the fast-path kernel changes nothing observable.

PR "fast-path DES kernel" carries two implementations of the hot paths:
the *reference* one (heap-only scheduling, one process per NVMe command
and per qpair flight, per-chunk pool seeding) and the *optimized* one
(immediate-event FIFO lane, closed-form device timing, callback
flights, bulk pool preload).  The optimizations are only admissible if
they are invisible to the simulation: ``python -m repro perfcheck``
runs the fig06 (single-node) and fig08 (multi-node emulated) workloads
under both implementations in one process — flipping
:func:`repro.sim.set_fastpath` between builds — and asserts the
*witnesses* are bit-identical:

* final ``sim_time`` (exact float equality);
* the delivered sample-order digest (sha1 over ``samples_read``);
* delivered/failed counts;
* the full metrics-registry snapshot (sha1 over the canonical JSON of
  ``MetricsRegistry.dump()``), minus the one counter that *measures the
  kernel itself* — ``sim.events_processed`` counts processed events, and
  processing fewer events is the entire point of the PR.

This is the same witness the SimSanitizer uses for its tiebreak sweeps
(:func:`repro.analysis.sanitizer._witness`), extended with the metrics
digest.  Timing (wall-clock) is deliberately *not* compared here — that
is ``benchmarks/bench_engine.py``'s job; perfcheck must never fail on
timing noise.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..sim import engine as _engine
from .sanitizer import _witness

__all__ = ["PerfCheckReport", "run_perfcheck", "default_workloads"]

#: Metrics-dump keys that describe the kernel, not the simulation.
#: ``counters.sim.events_processed`` is the engine's own step counter;
#: the optimized kernel processes fewer events by design.
KERNEL_META_COUNTERS = ("sim.events_processed",)


def _metrics_digest(result: Any) -> Optional[str]:
    """Canonical sha1 of the run's metrics snapshot, if metrics were on."""
    obs = getattr(result, "obs", None)
    metrics = getattr(obs, "metrics", None)
    if metrics is None or not getattr(metrics, "enabled", False):
        return None
    dump = metrics.dump()
    counters = dump.get("counters")
    if isinstance(counters, dict):
        counters = dict(counters)
        for key in KERNEL_META_COUNTERS:
            counters.pop(key, None)
        dump = dict(dump)
        dump["counters"] = counters
    blob = json.dumps(dump, sort_keys=True, default=repr).encode()
    return hashlib.sha1(blob).hexdigest()


def _full_witness(result: Any) -> Dict[str, Any]:
    w = _witness(result)
    digest = _metrics_digest(result)
    if digest is not None:
        w["metrics_sha1"] = digest
    return w


def _xform_pay_for_use(num_samples: int, horizon: float) -> Dict[str, Any]:
    """The transform tier's pay-for-use gate, self-checking.

    Runs the xform workload with *no* stages and the flat cluster
    datapath it claims to be, and diffs their full witnesses inside the
    workload; any mismatch lands in ``self_divergences``, which
    :func:`run_perfcheck` surfaces as a failure.  On top of that, the
    pair runs under both kernels like every other gate.
    """
    from ..bench.workloads import dlfs_cluster, dlfs_xform

    x = _full_witness(dlfs_xform(
        num_storage=2, num_clients=2, num_samples=num_samples,
        horizon=horizon, spec=None, metrics=True,
    ))
    flat = _full_witness(dlfs_cluster(
        num_storage=2, num_clients=2, num_samples=num_samples,
        horizon=horizon, replicas=1, balancer=False, metrics=True,
    ))
    x["self_divergences"] = tuple(
        f"pay-for-use: {key} xform={x.get(key)!r} != flat={flat.get(key)!r}"
        for key in sorted(set(x) | set(flat))
        if x.get(key) != flat.get(key)
    )
    return x


def default_workloads(quick: bool = False) -> Dict[str, Callable[[], Any]]:
    """The fig06/fig08/tenancy correctness gates.

    All return a :class:`~repro.bench.workloads.TraceReport`-shaped
    result with metrics enabled so the snapshot digest is part of the
    witness.  ``quick`` shrinks the sample counts for CI smoke use; the
    datapath coverage (client → reactor → qpair → device → fabric) is
    the same.  The tenancy workload routes through the multi-tenant
    splice — admission, SFQ lanes, cache partition — so the fast-path
    kernel is also proven invisible to the fair-queued datapath.  The
    cluster workload drives the replicated serving tier through a full
    crash/failover/rejoin cycle, proving the fast-path kernel invisible
    to lane teardown, re-routing, and the handoff copy loop too.  The
    xform workloads gate the fetch/transform tier: the pushdown
    datapath under both kernels, and the pay-for-use identity (no
    stages ⇒ bit-identical to the flat cluster datapath, checked
    inside the workload via ``self_divergences``).
    """
    from ..bench.workloads import dlfs_cluster, dlfs_observed, dlfs_tenancy, \
        dlfs_xform
    from ..xform import XformSpec, parse_stages

    samples = 256 if quick else 1024
    nodes = 2 if quick else 4
    horizon = 0.02 if quick else 0.05
    cluster_nodes = 4 if quick else 8
    cluster_samples = 2048 if quick else 8192
    xform_samples = 512 if quick else 2048
    xform_horizon = 0.004 if quick else 0.01
    return {
        "fig06_single_node": lambda: dlfs_observed(
            samples=samples, batch=32, mode="chunk", num_nodes=1,
            trace=False, metrics=True,
        ),
        "fig08_multi_node": lambda: dlfs_observed(
            samples=samples, batch=32, mode="chunk", num_nodes=nodes,
            trace=False, metrics=True,
        ),
        "tenancy_multi_tenant": lambda: dlfs_tenancy(
            horizon=horizon, warmup=horizon / 5, metrics=True,
        ),
        "cluster_crash_rejoin": lambda: dlfs_cluster(
            num_storage=cluster_nodes, num_clients=1, replicas=2,
            num_samples=cluster_samples, horizon=0.01,
            node_crashes=((1, 0.004, 0.008),), metrics=True,
        ),
        "xform_pushdown": lambda: dlfs_xform(
            num_storage=2, num_clients=2, num_samples=xform_samples,
            horizon=xform_horizon,
            spec=XformSpec(stages=parse_stages("parse,augment:0.5"),
                           workers=2),
            metrics=True,
        ),
        "xform_pay_for_use": lambda: _xform_pay_for_use(
            xform_samples, xform_horizon
        ),
    }


@dataclass
class PerfCheckReport:
    """Outcome of one reference-vs-optimized equivalence check."""

    workloads: List[str]
    witnesses: Dict[str, Dict[str, Dict[str, Any]]] = field(default_factory=dict)
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "workloads": self.workloads,
            "witnesses": self.witnesses,
            "divergences": self.divergences,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str)

    def render(self) -> str:
        lines = [f"perfcheck: {len(self.workloads)} workload(s)"]
        for name in self.workloads:
            pair = self.witnesses.get(name, {})
            ref = pair.get("reference", {})
            status = (
                "bit-identical"
                if not [d for d in self.divergences if d.startswith(name)]
                else "DIVERGED"
            )
            lines.append(f"  {name}: {status}")
            for key, value in sorted(ref.items()):
                lines.append(f"    {key}={value}")
        for d in self.divergences:
            lines.append(f"  divergence: {d}")
        lines.append(f"verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def run_perfcheck(
    workloads: Optional[Dict[str, Callable[[], Any]]] = None,
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> PerfCheckReport:
    """Run each workload under both kernels and compare witnesses.

    The fast-path flag is flipped *between* workload builds (components
    snapshot it at construction), and always restored afterwards.
    """
    workloads = workloads or default_workloads(quick=quick)
    report = PerfCheckReport(workloads=list(workloads))
    previous = _engine.fastpath_enabled()
    try:
        for name, workload in workloads.items():
            pair: Dict[str, Dict[str, Any]] = {}
            for label, enabled in (("reference", False), ("optimized", True)):
                if progress:
                    progress(f"{name}: {label} kernel")
                _engine.set_fastpath(enabled)
                pair[label] = _full_witness(workload())
            # A workload can self-check an internal identity (e.g. the
            # xform pay-for-use gate) and report the diffs out-of-band;
            # they fail the run but are excluded from the ref/opt diff.
            for label, witness in pair.items():
                for d in witness.pop("self_divergences", ()):
                    report.divergences.append(f"{name}[{label}]: {d}")
            report.witnesses[name] = pair
            ref, opt = pair["reference"], pair["optimized"]
            for key in sorted(set(ref) | set(opt)):
                if ref.get(key) != opt.get(key):
                    report.divergences.append(
                        f"{name}: {key} {ref.get(key)!r} != {opt.get(key)!r}"
                    )
    finally:
        _engine.set_fastpath(previous)
    return report
