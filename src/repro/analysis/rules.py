"""The simlint rule table.

Every rule has a stable ID (``SL1xx``), a one-line summary, and a fix
hint that tells the author what the deterministic replacement is.  The
IDs are part of the repo's contract: suppression comments
(``# simlint: disable=SL105 -- reason``) and CI logs refer to them, so
they are append-only — never renumber.

Rules exist because the simulation's headline claim is bit-exact
reproducibility (same seed → same ``samples_read`` order and
``sim_time``).  Each rule forbids one way a run can silently couple to
process state instead of seed state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "Rule",
    "RULES",
    "RULES_BY_ID",
    "FLOW_RULES",
    "FLOW_RULES_BY_ID",
    "ALL_RULES_BY_ID",
    "Finding",
]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, rationale, and remedy."""

    id: str
    name: str
    summary: str
    hint: str


RULES: Tuple[Rule, ...] = (
    Rule(
        id="SL100",
        name="bad-suppression",
        summary="malformed simlint suppression (missing reason or unknown rule)",
        hint=(
            "write `# simlint: disable=SLxxx -- why this site is exempt`; "
            "the reason is mandatory and the rule ID must exist"
        ),
    ),
    Rule(
        id="SL101",
        name="wall-clock",
        summary="wall-clock time API inside the simulation tree",
        hint=(
            "simulated components must read `env.now`; wall-clock timing "
            "belongs only in CLI progress output (suppress with a reason)"
        ),
    ),
    Rule(
        id="SL102",
        name="process-entropy",
        summary="OS/process entropy source (urandom, uuid, secrets)",
        hint="derive randomness from a named substream: `repro.sim.rng(name, seed)`",
    ),
    Rule(
        id="SL103",
        name="global-rng-state",
        summary="module-level RNG with shared global state (random.*, np.random.*)",
        hint=(
            "global-state RNGs make results depend on call order across the "
            "whole process; use `repro.sim.rng(name, seed)` instead"
        ),
    ),
    Rule(
        id="SL104",
        name="unseeded-rng",
        summary="RNG constructed with no seed (falls back to OS entropy)",
        hint="pass explicit seed material: `repro.sim.rng(name, seed)`",
    ),
    Rule(
        id="SL105",
        name="unblessed-rng",
        summary="direct RNG construction outside repro.sim.rng",
        hint=(
            "construct every generator via `repro.sim.rng(name, seed)` so the "
            "substream is named and auditable (substream_log())"
        ),
    ),
    Rule(
        id="SL106",
        name="id-ordering",
        summary="ordering keyed on id() (object addresses vary per process)",
        hint="key on a stable field (name, index, offset) instead of id()",
    ),
    Rule(
        id="SL107",
        name="builtin-hash-ordering",
        summary="builtin hash() (str/bytes hashing is randomized per process)",
        hint="use zlib.crc32 / hashlib for stable digests, or a stable sort key",
    ),
    Rule(
        id="SL108",
        name="set-iteration",
        summary="iteration over a set in a sim-coupled module (unstable order)",
        hint="wrap in sorted(...) with a stable key, or keep a list/deque",
    ),
    Rule(
        id="SL109",
        name="unguarded-obs",
        summary="hot-path tracer call not behind an `.enabled` guard",
        hint=(
            "gate with `if self.tracer.enabled:` so the null-object path "
            "stays a single attribute check"
        ),
    ),
    Rule(
        id="SL110",
        name="blocking-wait",
        summary="blocking wall-clock wait (time.sleep & friends) in sim code",
        hint=(
            "blocking the process stalls the whole event loop and couples "
            "results to host timing; wait in sim time with "
            "`yield env.timeout(delay)` instead"
        ),
    ),
    Rule(
        id="SL111",
        name="fluid-epoch-env-now",
        summary="env.now read inside a fluid epoch body (t0/t1 function)",
        hint=(
            "fluid epoch bodies advance closed-form state over an interval "
            "the caller fixed; reading env.now couples the charge to when "
            "the epoch happens to run, breaking hybrid/event equivalence — "
            "take the epoch bounds (t0, t1) as arguments instead"
        ),
    ),
)

RULES_BY_ID = {r.id: r for r in RULES}


# ---------------------------------------------------------------------------
# simflow rule families (whole-program dataflow + lifecycle protocols).
#
# SF2xx — interprocedural taint: nondeterministic values (wall clock,
# entropy, id()/hash(), unblessed RNGs) laundered through helpers,
# returns, default arguments, or attribute stores until they reach a
# determinism-critical sink.  The syntactic SL rules only see the direct
# call site; these follow the value.
#
# SF3xx — lifecycle protocols: per-object state machines (acquire must
# pair with release on every exit path) declared in
# :data:`repro.analysis.simflow.protocols.LIFECYCLE_PROTOCOLS`.
# ---------------------------------------------------------------------------

FLOW_RULES: Tuple[Rule, ...] = (
    Rule(
        id="SF200",
        name="taint-to-event",
        summary="nondeterministic value flows into an event post / sim delay",
        hint=(
            "the delay fed to env.timeout()/hold()/post derives from a "
            "wall-clock, entropy, or hash source; derive it from sim "
            "state or a blessed repro.sim.rng substream instead"
        ),
    ),
    Rule(
        id="SF201",
        name="taint-to-state",
        summary="nondeterministic value stored into simulation object state",
        hint=(
            "an attribute of a sim-coupled object is assigned a value "
            "derived from wall clock/entropy/id()/hash(); sim state must "
            "derive from seed state only"
        ),
    ),
    Rule(
        id="SF202",
        name="taint-to-ordering",
        summary="nondeterministic value used as an ordering key",
        hint=(
            "a sort/min/max key derives from id()/hash()/entropy, so the "
            "order varies per process; key on a stable field instead"
        ),
    ),
    Rule(
        id="SF203",
        name="taint-to-rng",
        summary="nondeterministic value passed to repro.sim.rng(...)",
        hint=(
            "rng() name/seed material derives from a nondeterministic "
            "source, so the substream differs per process; pass explicit "
            "constants or config-derived seeds"
        ),
    ),
    Rule(
        id="SF300",
        name="leaked-resource-slot",
        summary="Resource slot acquired but not released on every exit path",
        hint=(
            "a request() slot escapes on an early return/raise without "
            "release()/cancel(); wrap in try/finally or use "
            "`yield from resource.hold(t)`"
        ),
    ),
    Rule(
        id="SF301",
        name="unfinished-span",
        summary="tracer span opened but not finished on every exit path",
        hint=(
            "a tracer.start() span is dropped on an early return/raise "
            "without finish(); close it in a finally or hand ownership "
            "off explicitly (store it on the request/object)"
        ),
    ),
    Rule(
        id="SF302",
        name="leaked-transfer-credit",
        summary="transfer-engine credit acquired but not returned on every path",
        hint=(
            "a destination credit (bounded receive buffer) is held past "
            "an early exit; release it in the try/finally around the "
            "fabric transfer"
        ),
    ),
    Rule(
        id="SF303",
        name="unbalanced-ledger-charge",
        summary="chunk-ledger charge not undone on an exceptional exit",
        hint=(
            "a ChunkLedger charge()/reserve() is followed by a raise "
            "without uncharge()/cancel(); quota accounting must stay "
            "balanced when the insert fails"
        ),
    ),
    Rule(
        id="SF304",
        name="reset-without-generation-bump",
        summary="in-flight state cleared without bumping the qpair generation",
        hint=(
            "aborting in-flight requests (_live.clear()/connected=False) "
            "without `self._generation += 1` lets stale device "
            "completions be delivered as fresh; bump the generation in "
            "the same method"
        ),
    ),
)

FLOW_RULES_BY_ID = {r.id: r for r in FLOW_RULES}

#: Combined registry — what suppression comments may legally name.
ALL_RULES_BY_ID = {**RULES_BY_ID, **FLOW_RULES_BY_ID}


@dataclass(frozen=True)
class Finding:
    """One lint hit, ready to print as ``path:line:col: SLxxx ...``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: Optional[str] = field(default=None)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
