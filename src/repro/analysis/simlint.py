"""simlint — AST static analysis for simulation determinism.

The simulation's contract is bit-exact replay: same seed, same
``samples_read`` order, same final ``sim_time``.  That contract is easy
to break silently — one ``time.time()``, one unseeded generator, one
``for x in some_set`` on a scheduling path — and the breakage only shows
up as unexplainable CI flakes months later.  simlint rejects those
constructs at review time instead.

Scope rules (see :mod:`repro.analysis.rules` for the table):

* SL101/SL102/SL103 — wall-clock and process-entropy APIs, and
  global-state RNG calls, are forbidden everywhere under ``src/repro``.
* SL104/SL105 — every generator must come from the blessed
  :func:`repro.sim.rng` constructor, with explicit seed material.
* SL106/SL107 — ordering keyed on ``id()`` or ``hash()`` varies across
  processes (ASLR, ``PYTHONHASHSEED``).
* SL108 — iterating a ``set`` is order-unstable; only flagged in
  *sim-coupled* modules (anything importing ``repro.sim`` or living in
  the kernel itself), where iteration order can reach the event queue.
* SL109 — ``tracer.start``/``tracer.instant`` on hot paths must sit
  behind ``if <tracer>.enabled:`` so unobserved runs pay one attribute
  check, not a call into the null object.
* SL110 — blocking waits (``time.sleep``, ``os.wait``, ``select.select``
  with a timeout, ...) stall the host thread, not simulated time; any
  retry/backoff loop must wait via ``yield env.timeout(delay)``.
* SL111 — ``env.now`` read inside a fluid epoch body (any function
  taking both ``t0`` and ``t1`` parameters, the hybrid-fidelity epoch
  signature); only flagged in sim-coupled modules.  Epoch bodies charge
  a closed interval the caller fixed — reading the live clock couples
  the charge to when the epoch happens to run, which breaks the
  hybrid/event equivalence obligation.

Suppressions are per-line and must carry a reason::

    t0 = time.time()  # simlint: disable=SL101 -- CLI progress, not sim state

A suppression without a reason (or naming an unknown rule) is itself a
finding (SL100) and does *not* suppress anything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .rules import ALL_RULES_BY_ID, RULES_BY_ID, Finding

__all__ = ["lint_source", "lint_file", "lint_paths", "render_findings"]

# ---------------------------------------------------------------------------
# Forbidden-API tables (fully-qualified dotted names after alias expansion).
# ---------------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_ENTROPY = {
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
    "secrets.SystemRandom", "random.SystemRandom",
}

# stdlib `random` module-level functions and legacy numpy global state:
# both draw from one process-wide stream, so results depend on every
# other draw anywhere in the process.
_GLOBAL_RNG = {
    f"random.{fn}" for fn in (
        "seed", "random", "randint", "randrange", "uniform", "triangular",
        "choice", "choices", "shuffle", "sample", "gauss", "normalvariate",
        "lognormvariate", "expovariate", "betavariate", "gammavariate",
        "paretovariate", "vonmisesvariate", "weibullvariate",
        "getrandbits", "randbytes",
    )
} | {
    f"numpy.random.{fn}" for fn in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "exponential", "poisson", "binomial",
        "beta", "gamma", "bytes", "get_state", "set_state",
    )
}

# Direct generator construction — must go through repro.sim.rng instead.
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.RandomState", "numpy.random.SeedSequence",
    "numpy.random.PCG64", "numpy.random.PCG64DXSM", "numpy.random.MT19937",
    "numpy.random.Philox", "numpy.random.SFC64",
    "random.Random",
}

# Blocking wall-clock waits: these park the *host* thread, freezing the
# event loop (simulated time never advances while they block).  The
# deterministic replacement for any retry/backoff pause is
# `yield env.timeout(delay)`.
_BLOCKING_WAIT = {
    "time.sleep",
    "os.wait", "os.waitpid", "os.wait3", "os.wait4",
    "signal.pause", "signal.sigwait", "signal.sigwaitinfo",
    "signal.sigtimedwait",
    "select.select", "select.poll", "select.epoll",
    "threading.Event.wait", "threading.Condition.wait",
}

# Tracer methods that sit on per-event hot paths.
_HOT_TRACER_METHODS = {"start", "instant"}

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable=([A-Za-z0-9,\s]+?)(?:\s*--\s*(\S.*?))?\s*$"
)


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

def _scan_suppressions(
    source: str, path: str
) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Per-line suppressed rule IDs, plus SL100 findings for bad ones.

    Tokenizes rather than regex-scanning raw lines so that suppression
    syntax quoted inside string literals (docs, rule hints) is ignored.
    """
    suppressed: Dict[int, Set[str]] = {}
    findings: List[Finding] = []
    comments: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # ast.parse reports the syntax error with position info
    for lineno, colno, comment in comments:
        m = _SUPPRESS_RE.search(comment)
        if not m:
            continue
        ids = {part.strip() for part in m.group(1).split(",") if part.strip()}
        reason = (m.group(2) or "").strip()
        # The combined registry includes the simflow SF2xx/SF3xx rules:
        # one suppression syntax serves both analyzers, and naming a
        # flow rule is not an "unknown rule" to the syntactic pass.
        unknown = sorted(i for i in ids if i not in ALL_RULES_BY_ID)
        if not reason:
            findings.append(Finding(
                path=path, line=lineno, col=colno + m.start() + 1, rule_id="SL100",
                message="suppression has no reason",
                hint=RULES_BY_ID["SL100"].hint,
            ))
            continue  # a reasonless suppression suppresses nothing
        if unknown:
            findings.append(Finding(
                path=path, line=lineno, col=colno + m.start() + 1, rule_id="SL100",
                message=f"suppression names unknown rule(s): {', '.join(unknown)}",
                hint=RULES_BY_ID["SL100"].hint,
            ))
            ids -= set(unknown)
        if ids:
            suppressed[lineno] = ids
    return suppressed, findings


# ---------------------------------------------------------------------------
# The AST pass
# ---------------------------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_enabled(node: ast.AST) -> bool:
    """Does the expression read an ``.enabled`` attribute anywhere?

    Walrus forms count too: ``(t := self.tracer).enabled`` walks to the
    same Attribute node.
    """
    return any(
        isinstance(n, ast.Attribute) and n.attr == "enabled"
        for n in ast.walk(node)
    )


def _is_negated_enabled(node: ast.AST) -> bool:
    """``not <...>.enabled`` (the guard-by-early-return polarity)."""
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.Not)
        and _mentions_enabled(node.operand)
    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _annotation_is_set(node: ast.AST) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and n.id in {"set", "frozenset", "Set", "FrozenSet"}:
            return True
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, sim_coupled: bool) -> None:
        self.path = path
        self.sim_coupled = sim_coupled
        self.findings: List[Finding] = []
        #: alias -> fully qualified module/name ("np" -> "numpy").
        self.aliases: Dict[str, str] = {}
        #: local names known to hold sets (per enclosing function, flat —
        #: good enough: shadowing across scopes is rare in this codebase).
        self._set_names: Set[str] = set()
        #: ``self.<attr>`` names assigned a set anywhere in the class.
        self._set_attrs: Set[str] = set()
        self._obs_guard_depth = 0
        #: nesting depth of fluid epoch bodies (functions taking t0+t1).
        self._epoch_depth = 0

    # -- helpers ---------------------------------------------------------------
    def _emit(self, node: ast.AST, rule_id: str, message: str) -> None:
        rule = RULES_BY_ID[rule_id]
        self.findings.append(Finding(
            path=self.path, line=node.lineno, col=node.col_offset + 1,
            rule_id=rule_id, message=message, hint=rule.hint,
        ))

    def _resolve(self, node: ast.AST) -> Optional[str]:
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    # -- imports ---------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.partition(".")[0]] = (
                alias.name if alias.asname else alias.name.partition(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            self.aliases[alias.asname or alias.name] = (
                f"{module}.{alias.name}" if module else alias.name
            )
        self.generic_visit(node)

    # -- set tracking ----------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        outer = self._set_attrs
        attrs: Set[str] = set()
        for n in ast.walk(node):
            target = value = None
            if isinstance(n, ast.Assign) and len(n.targets) == 1:
                target, value = n.targets[0], n.value
            elif isinstance(n, ast.AnnAssign):
                target, value = n.target, n.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if (value is not None and _is_set_expr(value)) or (
                    isinstance(n, ast.AnnAssign)
                    and _annotation_is_set(n.annotation)
                ):
                    attrs.add(target.attr)
        self._set_attrs = attrs
        self.generic_visit(node)
        self._set_attrs = outer

    def _track_assign(self, target: ast.AST, value: Optional[ast.AST],
                      annotation: Optional[ast.AST] = None) -> None:
        if not isinstance(target, ast.Name):
            return
        is_set = (value is not None and _is_set_expr(value)) or (
            annotation is not None and _annotation_is_set(annotation)
        )
        if is_set:
            self._set_names.add(target.id)
        else:
            self._set_names.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._track_assign(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._track_assign(node.target, node.value, node.annotation)
        self.generic_visit(node)

    def _iter_is_set(self, iter_node: ast.AST) -> bool:
        if _is_set_expr(iter_node):
            return True
        if isinstance(iter_node, ast.Name) and iter_node.id in self._set_names:
            return True
        if (
            isinstance(iter_node, ast.Attribute)
            and isinstance(iter_node.value, ast.Name)
            and iter_node.value.id == "self"
            and iter_node.attr in self._set_attrs
        ):
            return True
        return False

    def _check_set_iteration(self, iter_node: ast.AST) -> None:
        if self.sim_coupled and self._iter_is_set(iter_node):
            self._emit(
                iter_node, "SL108",
                "iteration order over a set is not stable",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_body(node.body)
        self._visit_body(node.orelse)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_set_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- observability guard ---------------------------------------------------
    # The guard contract (SL109) accepts every idiomatic gating form:
    #   if self.tracer.enabled: ...                      # plain
    #   if tracer is not None and tracer.enabled: ...    # conjunction
    #   if (t := self.tracer).enabled: ...               # walrus
    #   span = t.start(...) if t.enabled else NULL_SPAN  # ternary
    #   t.enabled and t.instant(...)                     # short-circuit
    #   if not self.tracer.enabled: return               # early return
    # The last three were misses before simflow landed; fixtures in
    # tests/fixtures/sl109_guard_forms.py pin each one.

    def _visit_body(self, stmts: Sequence[ast.stmt]) -> None:
        """Visit a statement block, honoring guard-by-early-return.

        ``if not <tracer>.enabled: return`` at the top of a block means
        every following statement in the same block runs only when
        tracing is on, so they count as guarded.
        """
        bumped = 0
        for stmt in stmts:
            if (
                isinstance(stmt, ast.If)
                and not stmt.orelse
                and _is_negated_enabled(stmt.test)
                and stmt.body
                and isinstance(
                    stmt.body[-1],
                    (ast.Return, ast.Raise, ast.Continue, ast.Break),
                )
            ):
                self.visit(stmt.test)
                for child in stmt.body:
                    self.visit(child)
                self._obs_guard_depth += 1
                bumped += 1
                continue
            self.visit(stmt)
        self._obs_guard_depth -= bumped

    def visit_Module(self, node: ast.Module) -> None:
        self._visit_body(node.body)

    def _visit_function(self, node) -> None:
        for dec in node.decorator_list:
            self.visit(dec)
        self.visit(node.args)
        if node.returns is not None:
            self.visit(node.returns)
        # A function taking both t0 and t1 is a fluid epoch body: it
        # charges the closed interval [t0, t1) the caller fixed, so the
        # live clock is off limits inside (SL111).
        params = {
            a.arg for a in (
                node.args.args + node.args.posonlyargs + node.args.kwonlyargs
            )
        }
        epoch = self.sim_coupled and {"t0", "t1"} <= params
        if epoch:
            self._epoch_depth += 1
        self._visit_body(node.body)
        if epoch:
            self._epoch_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "now" and self._epoch_depth > 0:
            owner = node.value
            owner_name = (
                owner.attr if isinstance(owner, ast.Attribute)
                else owner.id if isinstance(owner, ast.Name) else None
            )
            if owner_name == "env":
                self._emit(
                    node, "SL111",
                    "env.now read inside a fluid epoch body (t0/t1 function)",
                )
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._visit_body(node.body)
        self._visit_body(node.orelse)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item)
        self._visit_body(node.body)

    visit_AsyncWith = visit_With

    def visit_Try(self, node: ast.Try) -> None:
        self._visit_body(node.body)
        for handler in node.handlers:
            if handler.type is not None:
                self.visit(handler.type)
            self._visit_body(handler.body)
        self._visit_body(node.orelse)
        self._visit_body(node.finalbody)

    def visit_If(self, node: ast.If) -> None:
        negated = _is_negated_enabled(node.test)
        guarded = not negated and _mentions_enabled(node.test)
        self.visit(node.test)
        if guarded:
            self._obs_guard_depth += 1
        self._visit_body(node.body)
        if guarded:
            self._obs_guard_depth -= 1
        if negated:
            self._obs_guard_depth += 1
        self._visit_body(node.orelse)
        if negated:
            self._obs_guard_depth -= 1

    def visit_IfExp(self, node: ast.IfExp) -> None:
        negated = _is_negated_enabled(node.test)
        guarded = not negated and _mentions_enabled(node.test)
        self.visit(node.test)
        if guarded:
            self._obs_guard_depth += 1
        self.visit(node.body)
        if guarded:
            self._obs_guard_depth -= 1
        if negated:
            self._obs_guard_depth += 1
        self.visit(node.orelse)
        if negated:
            self._obs_guard_depth -= 1

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if not isinstance(node.op, ast.And):
            self.generic_visit(node)
            return
        bumped = 0
        for value in node.values:
            self.visit(value)
            if _mentions_enabled(value):
                self._obs_guard_depth += 1
                bumped += 1
        self._obs_guard_depth -= bumped

    # -- calls -----------------------------------------------------------------
    def _key_uses_id(self, key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        if isinstance(key, ast.Lambda):
            return any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name) and n.func.id == "id"
                for n in ast.walk(key.body)
            )
        return False

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)

        if resolved in _BLOCKING_WAIT:
            self._emit(
                node, "SL110",
                f"blocking wait {resolved}() stalls the event loop",
            )
        elif resolved in _WALL_CLOCK:
            self._emit(node, "SL101", f"call to wall-clock API {resolved}()")
        elif resolved in _ENTROPY:
            self._emit(node, "SL102", f"call to entropy source {resolved}()")
        elif resolved in _GLOBAL_RNG:
            self._emit(node, "SL103", f"call to global-state RNG {resolved}()")
        elif resolved in _RNG_CONSTRUCTORS:
            seedless = not node.args and not node.keywords
            if not seedless and node.args and (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                seedless = True
            if seedless:
                self._emit(node, "SL104", f"{resolved}() constructed without a seed")
            else:
                self._emit(
                    node, "SL105",
                    f"direct {resolved}(...) outside repro.sim.rng",
                )

        # SL106: ordering keyed on id().
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "sort":
            func_name = "sort"
        if func_name in {"sorted", "min", "max", "sort"}:
            for kw in node.keywords:
                if kw.arg == "key" and self._key_uses_id(kw.value):
                    self._emit(
                        node, "SL106",
                        f"{func_name}() keyed on id() orders by object address",
                    )

        # SL107: builtin hash() — randomized for str/bytes per process.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and "hash" not in self.aliases
        ):
            self._emit(node, "SL107", "builtin hash() is process-dependent")

        # SL109: hot-path tracer call outside an `.enabled` guard.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _HOT_TRACER_METHODS
        ):
            owner = node.func.value
            owner_name = (
                owner.attr if isinstance(owner, ast.Attribute)
                else owner.id if isinstance(owner, ast.Name) else None
            )
            if owner_name == "tracer" and self._obs_guard_depth == 0:
                self._emit(
                    node, "SL109",
                    f"tracer.{node.func.attr}() without an `.enabled` guard",
                )

        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Sim-coupled module detection
# ---------------------------------------------------------------------------

_SIM_SEGMENTS = {"sim", "engine", "resources"}


def _is_sim_coupled(tree: ast.Module, path: str) -> bool:
    norm = path.replace("\\", "/")
    if "/sim/" in norm:
        return True
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level and set(module.split(".")) & _SIM_SEGMENTS:
                return True
            if module == "repro.sim" or module.startswith("repro.sim."):
                return True
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.sim" or alias.name.startswith("repro.sim."):
                    return True
    return False


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    suppressed, findings = _scan_suppressions(source, path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(Finding(
            path=path, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            rule_id="SL100", message=f"syntax error prevents linting: {exc.msg}",
        ))
        return findings
    linter = _Linter(path, sim_coupled=_is_sim_coupled(tree, path))
    linter.visit(tree)
    for f in linter.findings:
        if f.rule_id in suppressed.get(f.line, ()):
            continue
        findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_file(path: Union[str, Path]) -> List[Finding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: Sequence[Union[str, Path]]) -> List[Finding]:
    """Lint files and/or directory trees (``*.py``, skipping caches)."""
    findings: List[Finding] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files: Iterable[Path] = sorted(
                f for f in p.rglob("*.py") if "__pycache__" not in f.parts
            )
        else:
            files = [p]
        for f in files:
            findings.extend(lint_file(f))
    return findings


def render_findings(findings: Sequence[Finding]) -> str:
    if not findings:
        return "simlint: clean"
    lines = [f.render() for f in findings]
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
    summary = ", ".join(f"{rid} x{n}" for rid, n in sorted(by_rule.items()))
    lines.append(f"simlint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)
