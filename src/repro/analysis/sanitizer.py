"""SimSanitizer — runtime determinism and resource-lifecycle checking.

The event queue breaks same-timestamp ties by insertion order.  Code
that *depends* on that tiebreak — two processes racing at the same
simulated instant, with the outcome hanging on which was scheduled
first — is a latent race: any refactor that reorders scheduling calls
silently changes results.  The sanitizer falsifies such dependence the
way a thread sanitizer perturbs scheduling: it installs a seeded random
tiebreak rank into the engine (via :func:`repro.sim.engine.
set_tiebreak_factory`), reruns the workload under several perturbation
seeds, and asserts the *results* — final ``sim_time``, delivered sample
order, delivered/failed counts — are identical to the unperturbed
baseline.  Anything that diverges was riding on the tiebreak.

On top of the sweep, a :class:`LifecycleAudit` registers with the
engine (:func:`repro.sim.engine.set_lifecycle_audit`) and checks
resource hygiene at the end of every run:

* ``Resource`` slots still held after the run → leak-on-stop;
* ``Store`` putters still blocked → a producer wedged at teardown;
* qpairs with in-flight requests after shutdown → leaked I/O;
* completions delivered after a qpair reset bumped the generation →
  stale delivery (the reset path's core invariant).

Double-acquire of a resource slot is raised eagerly by
``Resource._grant`` itself (a corrupted-accounting bug should fail
loudly, sanitized run or not).
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..sim import engine as _engine
from ..sim.rng import rng as sim_rng

__all__ = [
    "LifecycleAudit",
    "SanitizerReport",
    "perturbed_tiebreaks",
    "run_sanitizer",
    "default_workload",
    "cluster_crash_workload",
    "xform_crash_workload",
    "scale_hybrid_workload",
    "scenario_pack_workload",
]


class _TiebreakStream:
    """Seeded random rank source handed to each :class:`Environment`."""

    def __init__(self, seed: Any) -> None:
        self._rng = sim_rng("sanitizer.tiebreak", seed)

    def random(self) -> float:
        return float(self._rng.random())


class LifecycleAudit:
    """Collects resource-lifecycle violations across one run."""

    def __init__(self) -> None:
        self.tracked: List[Any] = []
        self.violations: List[str] = []

    # Called by the engine for every Resource/Store/Container/IOQPair
    # constructed while this audit is installed.
    def register(self, obj: Any) -> None:
        self.tracked.append(obj)
        if hasattr(obj, "_live") and hasattr(obj, "completion_sink"):
            obj.audit = self  # qpair: verify generation at delivery time

    # Called by IOQPair._fly just before delivering a completion.
    def check_delivery(self, qpair: Any, generation: int) -> None:
        if generation != qpair._generation:
            self.violations.append(
                f"{qpair.name}: completion of generation {generation} "
                f"delivered after reset to generation {qpair._generation}"
            )

    def finish(self) -> List[str]:
        """Run end-of-simulation checks; returns all violations."""
        for obj in self.tracked:
            name = getattr(obj, "name", "") or type(obj).__name__
            if hasattr(obj, "_users") and hasattr(obj, "capacity"):
                held = len(obj._users)
                if held:
                    self.violations.append(
                        f"{name}: {held} resource slot(s) still held at end of run"
                    )
            elif hasattr(obj, "_putters"):
                blocked = len(obj._putters)
                if blocked:
                    self.violations.append(
                        f"{name}: {blocked} put(s) still blocked at end of run"
                    )
            elif hasattr(obj, "_live"):
                if obj._inflight or obj._live:
                    self.violations.append(
                        f"{name}: {obj._inflight} request(s) still in flight "
                        "at end of run"
                    )
        return self.violations


@contextmanager
def perturbed_tiebreaks(
    seed: Optional[Any],
    audit: Optional[LifecycleAudit] = None,
) -> Iterator[Optional[LifecycleAudit]]:
    """Install perturbation/audit hooks into the engine for one run.

    ``seed=None`` leaves tiebreaks in production (insertion) order —
    used for the baseline run, optionally still under the audit.
    """
    if seed is not None:
        _engine.set_tiebreak_factory(lambda: _TiebreakStream(seed))
    if audit is not None:
        _engine.set_lifecycle_audit(audit)
    try:
        yield audit
    finally:
        _engine.set_tiebreak_factory(None)
        _engine.set_lifecycle_audit(None)


# ---------------------------------------------------------------------------
# Witness extraction — what "the same result" means
# ---------------------------------------------------------------------------

def _witness(result: Any) -> Dict[str, Any]:
    """Reduce a workload result to the fields that must be invariant."""
    if isinstance(result, dict):
        return dict(result)
    if hasattr(result, "sim_time"):
        w: Dict[str, Any] = {"sim_time": float(result.sim_time)}
        samples = getattr(result, "samples_read", None)
        if samples is not None:
            w["samples_sha1"] = hashlib.sha1(
                bytes(samples.tobytes())
            ).hexdigest()
            w["samples_n"] = int(len(samples))
        for attr in ("delivered", "failed"):
            if hasattr(result, attr):
                w[attr] = int(getattr(result, attr))
        return w
    return {"result": result}


@dataclass
class SanitizerReport:
    """Outcome of one sanitizer sweep."""

    base_seed: int
    baseline: Dict[str, Any]
    runs: List[Dict[str, Any]] = field(default_factory=list)
    determinism_violations: List[str] = field(default_factory=list)
    lifecycle_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.determinism_violations and not self.lifecycle_violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_seed": self.base_seed,
            "ok": self.ok,
            "baseline": self.baseline,
            "runs": self.runs,
            "determinism_violations": self.determinism_violations,
            "lifecycle_violations": self.lifecycle_violations,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str)

    def render(self) -> str:
        lines = [
            f"SimSanitizer: {len(self.runs)} perturbed run(s), "
            f"base seed {self.base_seed}"
        ]
        base = ", ".join(f"{k}={v}" for k, v in sorted(self.baseline.items()))
        lines.append(f"  baseline: {base}")
        for run in self.runs:
            status = "ok" if run["ok"] else "DIVERGED"
            lines.append(f"  tiebreak seed {run['seed']}: {status}")
        for v in self.determinism_violations:
            lines.append(f"  determinism: {v}")
        for v in self.lifecycle_violations:
            lines.append(f"  lifecycle: {v}")
        lines.append(f"verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def default_workload() -> Any:
    """The standard sweep target: one observed DLFS run, obs disabled.

    Small enough for a CI smoke job, large enough to exercise the full
    datapath (clients, reactors, qpairs, fabric, drain-on-stop).
    """
    from ..bench.workloads import dlfs_observed

    return dlfs_observed(
        samples=512, batch=32, mode="chunk", num_nodes=1,
        trace=False, metrics=False,
    )


def cluster_crash_workload() -> Dict[str, Any]:
    """The replicated-serving sweep target: crash during handoff.

    A node crashes under live traffic and rejoins while the shard
    handoff copy is still in flight, so the abort-the-graft race, the
    per-fetch failover path, and the qpair teardown/rejoin lifecycle
    all run under perturbed tiebreaks.  Returns a plain dict witness
    including the lifecycle counters — a tiebreak-dependent failover or
    handoff would diverge there even if the delivered samples happen to
    match.
    """
    from ..bench.workloads import dlfs_cluster

    report = dlfs_cluster(
        num_storage=4, num_clients=1, replicas=2, num_samples=2048,
        horizon=0.01, node_crashes=((1, 0.004, 0.008),),
    )
    witness: Dict[str, Any] = {
        "sim_time": float(report.sim_time),
        "samples_sha1": hashlib.sha1(
            bytes(report.samples_read.tobytes())
        ).hexdigest(),
        "samples_n": int(len(report.samples_read)),
        "delivered": int(report.delivered),
        "failed": int(report.failed),
    }
    for key, value in report.lifecycle.items():
        witness[f"lifecycle.{key}"] = value
    for key in ("failovers", "node_down", "node_up"):
        witness[f"recovery.{key}"] = report.recovery.get(key, 0)
    return witness


def xform_crash_workload() -> Dict[str, Any]:
    """The transform-tier sweep target: worker crash with re-dispatch.

    A transform worker crashes under live traffic and rejoins while
    tasks are queued, in service, and mid-ship, so the re-dispatch
    path, the slot-waiter bounce, the transfer-engine credit release,
    and the affinity-failover re-routing all run under perturbed
    tiebreaks.  Single client, like the other sweep targets — the
    sanitizer falsifies tiebreak dependence inside the datapath, not
    arrival races between symmetric closed-loop clients.  Returns a
    plain dict witness including the tier counters — a
    tiebreak-dependent routing or re-dispatch decision would diverge
    there even if the delivered samples happen to match.
    """
    from ..bench.workloads import dlfs_xform
    from ..xform import XformSpec, parse_stages

    report = dlfs_xform(
        num_storage=2, num_clients=1, num_samples=512, horizon=0.004,
        spec=XformSpec(stages=parse_stages("parse,augment:0.5"), workers=2),
        xform_crashes=((0, 0.002, 0.005),),
    )
    witness: Dict[str, Any] = {
        "sim_time": float(report.sim_time),
        "samples_sha1": hashlib.sha1(
            bytes(report.samples_read.tobytes())
        ).hexdigest(),
        "samples_n": int(len(report.samples_read)),
        "delivered": int(report.delivered),
        "failed": int(report.failed),
    }
    for key, value in report.tier.items():
        witness[f"tier.{key}"] = value
    for lane, count in report.routed.items():
        witness[f"routed.{lane}"] = count
    return witness


def scale_hybrid_workload() -> Dict[str, Any]:
    """The hybrid-fidelity sweep target: fluid lanes + tagged flows.

    A downscaled diurnal day with a lane outage and cohort churn, so
    epoch-boundary anchor moves, forced event-fidelity windows, and the
    tagged event processes all run under perturbed tiebreaks.  The
    witness is the tagged order/latency digest pair plus the exact bulk
    counters — a tiebreak-dependent charge or impulse would diverge in
    either the digests or the integer byte totals.
    """
    from ..sim.fluid import ScaleSpec, run_scale

    spec = ScaleSpec(users=2000, day=600.0)
    report = run_scale(spec, mode="hybrid")
    witness: Dict[str, Any] = {
        "sim_time": float(report.sim_time),
        "order_digest": report.order_digest,
        "latency_digest": report.latency_digest,
        "bulk_requests": int(report.bulk_requests),
        "bulk_bytes": int(report.bulk_bytes),
        "fluid_requests": int(report.fluid_requests),
        "tagged_n": len(report.tagged),
    }
    for lane in report.lanes:
        witness[f"lane.{lane['name']}.requests"] = lane["requests"]
        witness[f"lane.{lane['name']}.bytes"] = lane["bytes"]
    return witness


def scenario_pack_workload() -> Dict[str, Any]:
    """Golden-master scenarios as a sweep target.

    Runs one windowed-tenancy scenario (phase-stepped surge compiled to
    per-interval workloads) and one cluster scenario (staggered
    crash/rejoin wave, which exercises the handoff abort/re-graft race)
    in quick mode and witnesses their full fingerprint digests.  Any
    tiebreak-dependent ordering anywhere in a compiled scenario —
    arrivals, phase windows, handoffs, per-phase histogram merges —
    moves a digest.
    """
    from ..scenarios import SCENARIOS, fingerprint_digest, run_scenario

    witness: Dict[str, Any] = {}
    for name in ("flash-crowd", "rolling-upgrade"):
        fp = run_scenario(SCENARIOS[name], quick=True)
        witness[f"{name}.digest"] = fingerprint_digest(fp)
        witness[f"{name}.sim_time"] = float(fp["sim_time"])
    return witness


def run_sanitizer(
    workload: Optional[Callable[[], Any]] = None,
    runs: int = 5,
    base_seed: int = 2019,
    progress: Optional[Callable[[str], None]] = None,
) -> SanitizerReport:
    """Sweep ``workload`` under ``runs`` perturbed tiebreak seeds.

    The workload is any zero-argument callable that builds its own
    :class:`~repro.sim.Environment` and returns either a
    :class:`~repro.bench.workloads.TraceReport`-like object or a plain
    dict of comparable values.  Returns a :class:`SanitizerReport`;
    check ``.ok``.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    workload = workload or default_workload

    def one(seed: Optional[Any]) -> tuple:
        audit = LifecycleAudit()
        with perturbed_tiebreaks(seed, audit):
            result = workload()
        return _witness(result), audit.finish()

    if progress:
        progress("baseline (insertion-order tiebreaks)")
    baseline, base_lifecycle = one(None)
    report = SanitizerReport(base_seed=base_seed, baseline=baseline)
    for v in base_lifecycle:
        report.lifecycle_violations.append(f"baseline: {v}")

    for i in range(runs):
        seed = (base_seed, i)
        if progress:
            progress(f"perturbed run {i + 1}/{runs} (seed {seed})")
        witness, lifecycle = one(seed)
        diffs = [
            f"seed {seed}: {key} {baseline.get(key)!r} != {witness.get(key)!r}"
            for key in sorted(set(baseline) | set(witness))
            if baseline.get(key) != witness.get(key)
        ]
        report.determinism_violations.extend(diffs)
        for v in lifecycle:
            report.lifecycle_violations.append(f"seed {seed}: {v}")
        report.runs.append({
            "seed": list(seed), "ok": not diffs and not lifecycle,
            "witness": witness,
        })
    return report
