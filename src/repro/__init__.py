"""Reproduction of DLFS — Efficient User-Level Storage Disaggregation
for Deep Learning (IEEE CLUSTER 2019).

Subpackages:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.hw` — hardware models and the cost-model constants;
* :mod:`repro.cluster` — nodes, fabric topology, collectives;
* :mod:`repro.data` — datasets, size distributions, layouts, formats;
* :mod:`repro.spdk` — user-level NVMe driver, qpairs, NVMe-oF targets;
* :mod:`repro.kernelfs` — the Ext4/kernel-stack baseline;
* :mod:`repro.octopus` — the Octopus distributed-FS baseline;
* :mod:`repro.core` — DLFS itself (directory, cache, reactor, API);
* :mod:`repro.train` — SGD/MLP training stack + TF ingest adapters;
* :mod:`repro.bench` — figure experiments and reporting.

``python -m repro claims`` checks every headline claim of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
