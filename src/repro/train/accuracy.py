"""The Fig 13 experiment: does DLFS-determined ordering hurt accuracy?

Trains the same model on the same data twice:

* ``Full_Rand`` — the application shuffles all sample names fully each
  epoch (the paper's baseline);
* ``DLFS`` — the sample order comes from the *actual* chunk-batching
  machinery (``ChunkEpoch`` + ``delivery_order``), i.e. random chunks
  from the access list interleaved sample by sample, edge samples
  interleaved as a stream.

The paper's result: "no observable differences in the training
accuracy" — quantified here as a final-accuracy gap within noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batching import ChunkEpoch, ChunkPlan, delivery_order
from ..data import Dataset, DatasetLayout
from ..sim import rng as sim_rng
from .features import FeatureSpace
from .sgd import TrainingCurve, full_random_ordering, train_with_ordering

__all__ = ["AccuracyComparison", "dlfs_ordering", "run_accuracy_experiment"]


def dlfs_ordering(plan: ChunkPlan, seed: int, window: int = 8):
    """An epoch-ordering source backed by the real DLFS batching code."""

    def source(epoch: int) -> np.ndarray:
        epoch_seed = int(
            sim_rng("train.accuracy.epoch", (seed, epoch)).integers(2**31)
        )
        e = ChunkEpoch(plan, seed=epoch_seed, num_ranks=1)
        d = delivery_order(
            plan, e.rank_chunks(0), e.rank_edges(0),
            seed=epoch_seed + 1, window=window,
        )
        return d.order

    return source


@dataclass(frozen=True)
class AccuracyComparison:
    """Both curves plus the headline gap."""

    full_rand: TrainingCurve
    dlfs: TrainingCurve

    @property
    def final_gap(self) -> float:
        """Final validation-accuracy difference (Full_Rand - DLFS)."""
        return self.full_rand.final_accuracy() - self.dlfs.final_accuracy()

    @property
    def max_epoch_gap(self) -> float:
        """Largest per-epoch accuracy difference over the tail half of
        training (the transient head is noise-dominated)."""
        half = len(self.full_rand.epochs) // 2
        diff = np.abs(
            self.full_rand.val_accuracy[half:] - self.dlfs.val_accuracy[half:]
        )
        return float(diff.max())


def run_accuracy_experiment(
    num_samples: int = 5000,
    mean_sample_bytes: int = 3072,   # CIFAR10-sized records
    num_classes: int = 10,
    epochs: int = 100,
    batch_size: int = 32,
    chunk_bytes: int = 64 * 1024,
    window: int = 8,
    seed: int = 0,
    class_separation: float = 0.9,
    feature_dim: int = 32,
) -> AccuracyComparison:
    """Run the full Fig 13 comparison (pure computation, no simulator)."""
    dataset = Dataset.fixed(
        "cifar-like", num_samples, mean_sample_bytes,
        num_classes=num_classes, seed=seed,
    )
    layout = DatasetLayout(dataset, num_shards=1)
    plan = ChunkPlan(layout, chunk_bytes)
    space = FeatureSpace(
        dataset, dim=feature_dim, class_separation=class_separation,
        seed=seed + 500,
    )
    common = dict(
        epochs=epochs, batch_size=batch_size, model_seed=seed,
    )
    full_rand = train_with_ordering(
        space, full_random_ordering(num_samples, seed + 1), **common
    )
    dlfs = train_with_ordering(
        space, dlfs_ordering(plan, seed + 2, window=window), **common
    )
    return AccuracyComparison(full_rand=full_rand, dlfs=dlfs)
