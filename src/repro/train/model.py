"""A small numpy MLP classifier (the AlexNet stand-in for Fig 13).

The training-accuracy experiment compares *sample orderings*, not model
architectures, so any SGD learner whose convergence is sensitive to
input ordering answers the question.  A two-layer MLP with ReLU and
softmax cross-entropy is the smallest such learner; it is implemented
from scratch (forward, backward, SGD with momentum) with deterministic
initialization.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..sim import rng as sim_rng

__all__ = ["MLPClassifier"]


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLPClassifier:
    """input -> ReLU(hidden) -> softmax, trained with momentum SGD."""

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_dim: int = 64,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        seed: int = 0,
    ) -> None:
        if input_dim < 1 or num_classes < 2 or hidden_dim < 1:
            raise ConfigError("bad MLP dimensions")
        if not 0 < learning_rate:
            raise ConfigError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise ConfigError("momentum in [0, 1)")
        rng = sim_rng("train.model.init", seed)
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.lr = learning_rate
        self.momentum = momentum
        # He initialization for the ReLU layer.
        self.w1 = rng.normal(0, np.sqrt(2.0 / input_dim), (input_dim, hidden_dim))
        self.b1 = np.zeros(hidden_dim)
        self.w2 = rng.normal(0, np.sqrt(2.0 / hidden_dim), (hidden_dim, num_classes))
        self.b2 = np.zeros(num_classes)
        self._vel = [np.zeros_like(p) for p in (self.w1, self.b1, self.w2, self.b2)]

    # -- inference --------------------------------------------------------------
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """-> (hidden activations, class probabilities)."""
        h = np.maximum(x @ self.w1 + self.b1, 0.0)
        return h, _softmax(h @ self.w2 + self.b2)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)[1].argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == y).mean())

    def loss(self, x: np.ndarray, y: np.ndarray) -> float:
        _, probs = self.forward(x)
        eps = 1e-12
        return float(-np.log(probs[np.arange(len(y)), y] + eps).mean())

    # -- training ----------------------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One SGD minibatch step; returns the batch loss."""
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ConfigError(f"expected (*, {self.input_dim}) inputs")
        n = len(x)
        h, probs = self.forward(x)
        eps = 1e-12
        batch_loss = float(-np.log(probs[np.arange(n), y] + eps).mean())

        # Backward pass.
        dz2 = probs.copy()
        dz2[np.arange(n), y] -= 1.0
        dz2 /= n
        dw2 = h.T @ dz2
        db2 = dz2.sum(axis=0)
        dh = dz2 @ self.w2.T
        dh[h <= 0.0] = 0.0
        dw1 = x.T @ dh
        db1 = dh.sum(axis=0)

        params = (self.w1, self.b1, self.w2, self.b2)
        grads = (dw1, db1, dw2, db2)
        for p, g, v in zip(params, grads, self._vel):
            v *= self.momentum
            v -= self.lr * g
            p += v
        return batch_loss

    def __repr__(self) -> str:
        return (
            f"<MLPClassifier {self.input_dim}->{self.w1.shape[1]}->"
            f"{self.num_classes}>"
        )
