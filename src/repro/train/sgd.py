"""Ordering-driven minibatch SGD training (Fig 13 harness).

The trainer consumes an *ordering source*: a callable producing one
epoch's sample-index order.  Plugging in a full random permutation
yields the paper's ``Full_Rand`` baseline; plugging in the real DLFS
chunk-batching generator (:func:`repro.core.batching.delivery_order`)
yields the ``DLFS`` curve.  Everything else — model, data, validation —
is held identical, so any accuracy gap is attributable to ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..sim import rng as sim_rng
from .features import FeatureSpace
from .model import MLPClassifier

__all__ = ["TrainingCurve", "train_with_ordering", "full_random_ordering"]

OrderingSource = Callable[[int], np.ndarray]  # epoch -> sample order


@dataclass(frozen=True)
class TrainingCurve:
    """Per-epoch metrics of one training run."""

    epochs: np.ndarray
    train_loss: np.ndarray
    val_accuracy: np.ndarray

    def final_accuracy(self) -> float:
        return float(self.val_accuracy[-1])

    def best_accuracy(self) -> float:
        return float(self.val_accuracy.max())


def full_random_ordering(num_samples: int, seed: int) -> OrderingSource:
    """Application-driven full randomization (paper's ``Full_Rand``)."""

    def source(epoch: int) -> np.ndarray:
        rng = sim_rng("train.full_rand.epoch", (seed, epoch))
        return rng.permutation(num_samples)

    return source


def train_with_ordering(
    space: FeatureSpace,
    ordering: OrderingSource,
    epochs: int = 100,
    batch_size: int = 32,
    val_size: int = 1000,
    model_seed: int = 0,
    hidden_dim: int = 64,
    learning_rate: float = 0.05,
) -> TrainingCurve:
    """Train the MLP for ``epochs`` epochs under the given ordering."""
    if epochs < 1 or batch_size < 1:
        raise ConfigError("epochs and batch_size must be >= 1")
    model = MLPClassifier(
        input_dim=space.dim,
        num_classes=space.dataset.num_classes,
        hidden_dim=hidden_dim,
        learning_rate=learning_rate,
        seed=model_seed,
    )
    x_val, y_val = space.holdout(val_size)
    losses, accuracies = [], []
    for epoch in range(epochs):
        order = np.asarray(ordering(epoch), dtype=np.int64)
        if len(order) == 0:
            raise ConfigError(f"ordering produced an empty epoch {epoch}")
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(order) - batch_size + 1, batch_size):
            batch = order[start:start + batch_size]
            x, y = space.features(batch)
            epoch_loss += model.train_step(x, y)
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
        accuracies.append(model.accuracy(x_val, y_val))
    return TrainingCurve(
        epochs=np.arange(1, epochs + 1),
        train_loss=np.asarray(losses),
        val_accuracy=np.asarray(accuracies),
    )
