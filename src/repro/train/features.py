"""Deterministic synthetic features for training experiments.

The simulation never materializes sample bytes; when the accuracy
experiment (Fig 13) needs actual trainable content, features are derived
deterministically from the sample *index* — so any access ordering over
the simulated dataset maps to the same underlying classification
problem.  The task is CIFAR-ish: ``num_classes`` Gaussian clusters in
``dim`` dimensions with controllable separation (harder = slower
convergence = more sensitive to ordering pathologies).
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from ..errors import ConfigError
from ..sim import rng as sim_rng

__all__ = ["FeatureSpace"]


class FeatureSpace:
    """Class-conditional Gaussian features keyed by sample index."""

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        class_separation: float = 1.2,
        noise: float = 1.0,
        seed: int = 100,
    ) -> None:
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        if class_separation <= 0 or noise <= 0:
            raise ConfigError("class_separation and noise must be positive")
        self.dataset = dataset
        self.dim = dim
        rng = sim_rng("train.features.means", seed)
        self.means = rng.normal(
            0.0, class_separation, (dataset.num_classes, dim)
        )
        self.noise = noise
        self.seed = seed
        # All features are fixed up front by (seed, index): row i is the
        # feature vector of sample i no matter in which order it is read.
        noise_rng = sim_rng("train.features.noise", seed + 1)
        self._x = self.means[self.dataset.labels] + noise_rng.normal(
            0.0, noise, (dataset.num_samples, dim)
        )
        self._x.setflags(write=False)

    def features(self, sample_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """-> (X, y) for the given sample indices; bit-stable per index."""
        idx = np.asarray(sample_indices, dtype=np.int64)
        return self._x[idx], self.dataset.labels[idx].astype(np.int64)

    def holdout(self, count: int, seed: int = 999) -> tuple[np.ndarray, np.ndarray]:
        """A validation set drawn from the same class distribution but
        disjoint from every training sample."""
        rng = sim_rng("train.features.holdout", seed)
        y = rng.integers(0, self.dataset.num_classes, count)
        x = self.means[y] + rng.normal(0.0, self.noise, (count, self.dim))
        return x, y.astype(np.int64)

    def __repr__(self) -> str:
        return f"<FeatureSpace dim={self.dim} classes={self.dataset.num_classes}>"
