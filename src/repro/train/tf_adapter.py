"""TensorFlow-style dataset ingest adapters (Fig 12 harness).

The paper integrates each file system under TensorFlow through a
customized input op (§IV-E).  These adapters model that integration: a
framework thread drives per-batch ingest, paying a per-batch dispatch
cost and a per-sample tensor-conversion cost on top of whatever the
underlying file system charges.  One adapter per system:

* :class:`DLFSTFAdapter` — wraps a :class:`~repro.core.DLFSClient`
  (``dlfs_sequence`` / ``dlfs_bread`` underneath);
* :class:`Ext4TFAdapter` — open/read/close per sample against the
  kernel FS;
* :class:`OctopusTFAdapter` — per-sample distributed reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from ..core import DLFSClient, GlobalSequence
from ..errors import ConfigError
from ..hw.cpu import BoundThread
from ..hw.platform import USEC
from ..kernelfs import Ext4FileSystem
from ..octopus import OctopusFS
from ..sim import Event, ThroughputMeter

__all__ = [
    "TFIngestSpec",
    "DLFSTFAdapter",
    "Ext4TFAdapter",
    "OctopusTFAdapter",
]


@dataclass(frozen=True)
class TFIngestSpec:
    """Framework-side ingest costs (identical across file systems)."""

    #: Tensor conversion + Python/C++ boundary per sample.
    per_sample_overhead: float = 0.8 * USEC
    #: Iterator dispatch per get_next() batch.
    per_batch_overhead: float = 15.0 * USEC

    def validate(self) -> None:
        if self.per_sample_overhead < 0 or self.per_batch_overhead < 0:
            raise ConfigError("TF ingest overheads must be >= 0")


class _AdapterBase:
    """Shared epoch bookkeeping + framework cost charging."""

    def __init__(self, thread: BoundThread, spec: Optional[TFIngestSpec]) -> None:
        self.thread = thread
        self.spec = spec or TFIngestSpec()
        self.spec.validate()
        self.meter = ThroughputMeter(thread.env, name="tf.ingest")

    def _charge(self, batch_size: int) -> Generator[Event, Any, None]:
        yield from self.thread.run(
            self.spec.per_batch_overhead
            + batch_size * self.spec.per_sample_overhead
        )

    def ingest_rate(self) -> float:
        """Samples ingested per simulated second."""
        return self.meter.rate()


class DLFSTFAdapter(_AdapterBase):
    """tf.data over DLFS: get_next() maps to ``dlfs_bread``."""

    def __init__(
        self,
        client: DLFSClient,
        thread: BoundThread,
        spec: Optional[TFIngestSpec] = None,
    ) -> None:
        super().__init__(thread, spec)
        self.client = client
        self._seed = 0
        self._epoch = 0

    def start_epoch(self, seed: int) -> None:
        self._seed = seed
        self._epoch = 0
        self.client.sequence(seed)

    def next_batch(self, batch_size: int) -> Generator[Event, Any, np.ndarray]:
        parts = []
        need = batch_size
        while need > 0:
            if self.client.epoch_remaining == 0:
                # Roll into the next epoch, as a training loop would.
                self._epoch += 1
                self.client.sequence(self._seed + self._epoch)
            take = min(need, self.client.epoch_remaining)
            parts.append((yield from self.client.bread(take)))
            need -= take
        samples = parts[0] if len(parts) == 1 else np.concatenate(parts)
        yield from self._charge(len(samples))
        sizes = self.client.fs.dataset.sizes[samples]
        self.meter.record(nbytes=int(sizes.sum()), count=len(samples))
        return samples


class Ext4TFAdapter(_AdapterBase):
    """tf.data over the kernel FS: one open/read/close per sample."""

    def __init__(
        self,
        fs: Ext4FileSystem,
        dataset,
        thread: BoundThread,
        rank: int = 0,
        num_ranks: int = 1,
        spec: Optional[TFIngestSpec] = None,
        file_layer_overhead: float = 60.0 * USEC,
    ) -> None:
        super().__init__(thread, spec)
        self.fs = fs
        self.dataset = dataset
        self.rank = rank
        self.num_ranks = num_ranks
        #: TF reaches kernel files through its generic Env/GFile layer
        #: (per-file object construction, stat, locking) — absent in the
        #: custom zero-copy ops used for DLFS/Octopus.  Calibrated so
        #: Fig 12's Ext4-TF degradation versus raw Ext4 (Fig 9) holds.
        self.file_layer_overhead = file_layer_overhead
        self._order: Optional[np.ndarray] = None
        self._pos = 0

    def start_epoch(self, seed: int, batch_per_rank: int = 32) -> None:
        self._seed = seed
        self._epoch = 0
        self._batch_per_rank = batch_per_rank
        self._arm()

    def _arm(self) -> None:
        seq = GlobalSequence(
            self.dataset.num_samples, self._seed + self._epoch,
            num_ranks=self.num_ranks, batch_per_rank=self._batch_per_rank,
        )
        self._order = seq.epoch_order_for_rank(self.rank)
        self._pos = 0

    def next_batch(self, batch_size: int) -> Generator[Event, Any, np.ndarray]:
        if self._order is None:
            raise ConfigError("call start_epoch() first")
        if self._pos >= len(self._order):
            self._epoch += 1
            self._arm()
        end = min(self._pos + batch_size, len(self._order))
        batch = self._order[self._pos:end]
        self._pos = end
        total = 0
        for idx in batch:
            yield from self.thread.run(self.file_layer_overhead)
            total += yield from self.fs.read_sample(
                self.thread, self.dataset.sample_name(int(idx))
            )
        yield from self._charge(len(batch))
        self.meter.record(nbytes=total, count=len(batch))
        return batch


class OctopusTFAdapter(_AdapterBase):
    """tf.data over Octopus: one distributed read per sample."""

    def __init__(
        self,
        fs: OctopusFS,
        thread: BoundThread,
        rank: int = 0,
        num_ranks: int = 1,
        spec: Optional[TFIngestSpec] = None,
    ) -> None:
        super().__init__(thread, spec)
        self.fs = fs
        self.rank = rank
        self.num_ranks = num_ranks
        self._order: Optional[np.ndarray] = None
        self._pos = 0

    def start_epoch(self, seed: int, batch_per_rank: int = 32) -> None:
        if self.fs.dataset is None:
            raise ConfigError("OctopusFS must be mounted first")
        self._seed = seed
        self._epoch = 0
        self._batch_per_rank = batch_per_rank
        self._arm()

    def _arm(self) -> None:
        seq = GlobalSequence(
            self.fs.dataset.num_samples, self._seed + self._epoch,
            num_ranks=self.num_ranks, batch_per_rank=self._batch_per_rank,
        )
        self._order = seq.epoch_order_for_rank(self.rank)
        self._pos = 0

    def next_batch(self, batch_size: int) -> Generator[Event, Any, np.ndarray]:
        if self._order is None:
            raise ConfigError("call start_epoch() first")
        if self._pos >= len(self._order):
            self._epoch += 1
            self._arm()
        end = min(self._pos + batch_size, len(self._order))
        batch = self._order[self._pos:end]
        self._pos = end
        total = 0
        for idx in batch:
            # The Octopus client path charges its own costs; the TF
            # thread is occupied for the duration of the synchronous op.
            total += yield from self.fs.read_sample(self.rank, int(idx))
        yield from self._charge(len(batch))
        self.meter.record(nbytes=total, count=len(batch))
        return batch
