"""Training stack: SGD, numpy MLP, feature space, TF-style ingest
adapters, and the Fig 13 training-accuracy experiment."""

from .accuracy import AccuracyComparison, dlfs_ordering, run_accuracy_experiment
from .features import FeatureSpace
from .model import MLPClassifier
from .sgd import TrainingCurve, full_random_ordering, train_with_ordering
from .tf_adapter import (
    DLFSTFAdapter,
    Ext4TFAdapter,
    OctopusTFAdapter,
    TFIngestSpec,
)

__all__ = [
    "MLPClassifier",
    "FeatureSpace",
    "TrainingCurve",
    "train_with_ordering",
    "full_random_ordering",
    "AccuracyComparison",
    "dlfs_ordering",
    "run_accuracy_experiment",
    "TFIngestSpec",
    "DLFSTFAdapter",
    "Ext4TFAdapter",
    "OctopusTFAdapter",
]
