"""Chunked fabric transfer engine with per-link accounting.

The transform tier never calls :meth:`repro.hw.Fabric.transfer` raw:
every storage→worker and worker→trainer movement goes through a
:class:`TransferEngine`, which

* splits payloads into RDMA-friendly chunks so a multi-megabyte
  span cannot monopolize a NIC pipe for its whole wire time;
* caps the chunks in flight *toward each destination* with a credit
  resource — the model of bounded receive buffers.  When a worker's
  inbox is full the sender blocks holding its tier job slot, which in
  turn stalls new submissions into the fair-queue scheduler: genuine
  end-to-end backpressure, not a dropped byte count;
* attributes bytes, chunk counts, queue (credit) wait, and wire+credit
  latency to every ``(src, dst)`` link, for the obs per-tier panels.

The engine is pay-for-use: it is only constructed when the transform
tier is configured, and it creates metrics instruments only on an
enabled registry.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import ConfigError
from ..obs import NULL_METRICS
from ..sim import Resource

__all__ = ["TransferEngine", "fabric_fluid_rate"]


def fabric_fluid_rate(
    bandwidth: float, chunk_bytes: int, propagation_latency: float = 0.0
) -> float:
    """Effective bytes/s of a chunked fabric link, for fluid lane models.

    A saturated chunked link moves one ``chunk_bytes`` payload per
    ``wire + propagation`` period (credits keep the pipe full but each
    chunk still pays the one-way latency), so the steady-state rate is
    slightly below raw ``bandwidth``.  This is the fabric stage the
    hybrid-fidelity engine (:mod:`repro.sim.fluid`) rate-balances
    against NVMe and transform stages.
    """
    if bandwidth <= 0 or chunk_bytes < 1 or propagation_latency < 0:
        raise ConfigError(
            "fabric_fluid_rate needs bandwidth > 0, chunk_bytes >= 1, "
            "propagation_latency >= 0"
        )
    return chunk_bytes / (chunk_bytes / bandwidth + propagation_latency)


class _LinkStats:
    """Byte/latency attribution for one directed fabric link."""

    __slots__ = ("nbytes", "chunks", "transfers", "credit_wait", "busy")

    def __init__(self) -> None:
        self.nbytes = 0
        self.chunks = 0
        self.transfers = 0
        self.credit_wait = 0.0
        self.busy = 0.0


class TransferEngine:
    """Moves spans between tiers in chunked, credit-limited transfers."""

    def __init__(
        self,
        env,
        fabric,
        chunk_bytes: int = 256 * 1024,
        inflight_per_dst: int = 4,
        registry=None,
    ) -> None:
        if chunk_bytes < 1:
            raise ConfigError("chunk_bytes must be >= 1")
        if inflight_per_dst < 1:
            raise ConfigError("inflight_per_dst must be >= 1")
        self.env = env
        self.fabric = fabric
        self.chunk_bytes = chunk_bytes
        self.inflight_per_dst = inflight_per_dst
        self._credits: dict[str, Resource] = {}
        self._links: dict[tuple[str, str], _LinkStats] = {}
        metrics = registry if registry is not None and registry.enabled \
            else NULL_METRICS
        self._c_bytes = metrics.counter("xform.net.bytes")
        self._c_chunks = metrics.counter("xform.net.chunks")
        self._h_latency = metrics.histogram("xform.net.transfer_latency")

    def fluid_rate(self) -> float:
        """This engine's steady-state bytes/s for fluid lane models."""
        spec = self.fabric.spec
        return fabric_fluid_rate(
            spec.bandwidth, self.chunk_bytes, spec.propagation_latency
        )

    def _credit(self, dst: str) -> Resource:
        credit = self._credits.get(dst)
        if credit is None:
            credit = Resource(
                self.env, capacity=self.inflight_per_dst,
                name=f"xform.rxcredit.{dst}",
            )
            self._credits[dst] = credit
        return credit

    def _stats(self, src: str, dst: str) -> _LinkStats:
        stats = self._links.get((src, dst))
        if stats is None:
            stats = self._links[(src, dst)] = _LinkStats()
        return stats

    # -- data movement --------------------------------------------------------
    def move(
        self, src: str, dst: str, nbytes: int, parent: Optional[object] = None
    ) -> Generator[Any, Any, None]:
        """Process helper: ship ``nbytes`` from ``src`` to ``dst``.

        Chunks go out sequentially, each under one destination credit,
        so a single ``move`` holds at most one credit at a time while
        concurrent senders to the same destination share the cap.
        Zero-byte and loopback moves are free (selectivity-0 stages,
        trainer-local workers) but still counted as a transfer.
        """
        stats = self._stats(src, dst)
        stats.transfers += 1
        if nbytes <= 0 or src == dst:
            return
        t0 = self.env.now
        credit = self._credit(dst)
        remaining = int(nbytes)
        while remaining > 0:
            chunk = min(remaining, self.chunk_bytes)
            req = credit.request()
            wait0 = self.env.now
            yield req
            stats.credit_wait += self.env.now - wait0
            try:
                yield from self.fabric.transfer(src, dst, chunk, parent=parent)
            finally:
                credit.release(req)
            stats.chunks += 1
            self._c_chunks.incr()
            remaining -= chunk
        elapsed = self.env.now - t0
        stats.nbytes += int(nbytes)
        stats.busy += elapsed
        self._c_bytes.incr(int(nbytes))
        self._h_latency.observe(elapsed)

    # -- reporting ------------------------------------------------------------
    def link_rows(self) -> list[dict]:
        """Per-link attribution rows, sorted by (src, dst)."""
        rows = []
        for (src, dst) in sorted(self._links):
            s = self._links[(src, dst)]
            rows.append({
                "src": src,
                "dst": dst,
                "bytes": s.nbytes,
                "chunks": s.chunks,
                "transfers": s.transfers,
                "credit_wait": s.credit_wait,
                "busy": s.busy,
            })
        return rows

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self._links.values())

    def __repr__(self) -> str:
        return (
            f"<TransferEngine links={len(self._links)} "
            f"bytes={self.total_bytes}>"
        )
