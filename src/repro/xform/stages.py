"""Transform stages and the pushdown placement policy.

A :class:`TransformStage` is one decode/transform step in the ingest
pipeline — TFRecord parse, decompression, augmentation — modeled as a
:class:`~repro.data.formats.DecodeCostModel` (affine CPU cost plus a
byte *selectivity*) with a placement constraint.  Stages run in order;
the pipeline is split at a single *boundary*: stages before it run on
the storage node that holds the sample (OffloadFS-style pushdown,
burning storage-side CPU to ship fewer bytes), stages at or after it
run on the transform tier (shipping the boundary bytes over the
fabric).

:class:`PushdownPolicy` picks that boundary.  ``"worker"`` and
``"storage"`` are the static extremes; ``"cost"`` evaluates every legal
boundary against an analytic per-sample latency built from four terms:
storage CPU seconds over the storage-core budget, wire seconds for the
boundary bytes, worker CPU seconds over the worker-core budget, and
wire seconds for the *output* bytes (zero at full pushdown — the
boundary ship already delivers to the trainer).  The budgets are the
cores one job's work actually traverses, not tier totals: a job's
per-node group runs on a single keyed storage core that every client
shares, while its transform suffix spreads across its affinity lane's
dedicated cores — which is exactly why pushdown loses once storage
CPU, not the wire, is the scarce resource.  The decision is made once
per run from spec'd costs, never from live queue state, so placement
can never ride on a same-timestamp event-ordering tiebreak (the
SimSanitizer contract).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..data.formats import (
    DecodeCostModel,
    decompression_selectivity,
    tfrecord_parse_selectivity,
)
from ..errors import ConfigError

__all__ = [
    "TransformStage",
    "PushdownPolicy",
    "tfrecord_parse",
    "decompress",
    "augment",
    "parse_stages",
    "pipeline_bytes",
    "pipeline_cost",
    "stages_with_packing",
]

#: Valid per-stage placement constraints.
PLACEMENTS = ("auto", "storage", "worker")


@dataclass(frozen=True)
class TransformStage:
    """One decode/transform step: a cost model plus a placement pin."""

    name: str
    cost: DecodeCostModel
    #: ``"storage"``/``"worker"`` pin the stage to that tier; ``"auto"``
    #: lets :class:`PushdownPolicy` place it.
    placement: str = "auto"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("transform stage needs a non-empty name")
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"stage {self.name!r}: placement must be one of {PLACEMENTS}, "
                f"got {self.placement!r}"
            )

    @property
    def selectivity(self) -> float:
        return self.cost.selectivity


# -- stage constructors -------------------------------------------------------

def tfrecord_parse(
    payload_bytes: int = 64 * 1024,
    per_byte: float = 0.05e-9,
    fixed: float = 0.3e-6,
    placement: str = "auto",
) -> TransformStage:
    """Strip TFRecord framing: CRC walk over the record, emit the payload."""
    return TransformStage(
        name="parse",
        cost=DecodeCostModel(
            per_byte=per_byte,
            fixed=fixed,
            selectivity=tfrecord_parse_selectivity(payload_bytes),
        ),
        placement=placement,
    )


def decompress(
    ratio: float,
    per_byte: float = 0.5e-9,
    fixed: float = 0.5e-6,
    placement: str = "auto",
) -> TransformStage:
    """Decompress a packed record: selectivity = compression ratio (> 1)."""
    return TransformStage(
        name=f"decompress:{ratio:g}",
        cost=DecodeCostModel(
            per_byte=per_byte,
            fixed=fixed,
            selectivity=decompression_selectivity(ratio),
        ),
        placement=placement,
    )


def augment(
    selectivity: float = 0.5,
    per_byte: float = 2.0e-9,
    fixed: float = 1.0e-6,
    placement: str = "auto",
) -> TransformStage:
    """Augmentation (crop/resize/normalize): selectivity < 1 shrinks."""
    return TransformStage(
        name=f"augment:{selectivity:g}",
        cost=DecodeCostModel(
            per_byte=per_byte, fixed=fixed, selectivity=selectivity
        ),
        placement=placement,
    )


_STAGE_KINDS = ("parse", "decompress", "augment")


def parse_stages(text: str) -> tuple:
    """Parse a CLI stage list like ``"parse,decompress:2,augment:0.5"``.

    Each entry is ``kind[:arg][@placement]``: ``parse`` (optional arg =
    payload bytes), ``decompress`` (arg = compression ratio, default 2),
    ``augment`` (arg = selectivity, default 0.5).  ``@storage`` /
    ``@worker`` pin a stage; the default is ``auto``.
    """
    stages = []
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        entry, at, placement = entry.partition("@")
        placement = placement.strip() if at else "auto"
        kind, colon, arg = entry.partition(":")
        kind = kind.strip()
        if kind not in _STAGE_KINDS:
            raise ConfigError(
                f"unknown stage kind {kind!r} (expected one of {_STAGE_KINDS})"
            )
        try:
            value = float(arg) if colon else None
        except ValueError:
            raise ConfigError(f"bad stage argument in {raw!r}") from None
        if kind == "parse":
            stages.append(tfrecord_parse(
                payload_bytes=int(value) if value is not None else 64 * 1024,
                placement=placement,
            ))
        elif kind == "decompress":
            stages.append(decompress(
                ratio=value if value is not None else 2.0, placement=placement
            ))
        else:
            stages.append(augment(
                selectivity=value if value is not None else 0.5,
                placement=placement,
            ))
    if not stages:
        raise ConfigError(f"no stages in {text!r}")
    return tuple(stages)


# -- pipeline arithmetic ------------------------------------------------------

def pipeline_bytes(stages: tuple, input_bytes: int) -> list[int]:
    """Byte sizes at every pipeline cut: ``[input, after s0, ...]``.

    ``result[k]`` is the record size shipped when the boundary sits
    before stage ``k`` (k = len(stages) means the fully-transformed
    output).
    """
    sizes = [int(input_bytes)]
    for stage in stages:
        sizes.append(stage.cost.output_bytes(sizes[-1]))
    return sizes


def pipeline_cost(stages: tuple, input_bytes: int) -> list[float]:
    """Per-stage CPU seconds for one record entering at ``input_bytes``."""
    sizes = pipeline_bytes(stages, input_bytes)
    return [s.cost.cost(sizes[i]) for i, s in enumerate(stages)]


@dataclass(frozen=True)
class PushdownPolicy:
    """Chooses the storage/worker boundary for a stage pipeline.

    ``mode``:

    * ``"worker"`` — ship raw bytes, run every ``auto`` stage on the
      transform tier (boundary as early as pins allow);
    * ``"storage"`` — push every ``auto`` stage onto the storage node
      (boundary as late as pins allow);
    * ``"cost"`` — minimize the analytic per-sample cost described in
      the module docstring.

    ``storage_core_budget`` / ``worker_core_budget`` are the core
    counts one job's work traverses on each tier (a keyed storage core
    vs an affinity lane's cores) — the knobs that make pushdown *lose*
    once storage CPU, not the wire, is the scarce resource.
    """

    mode: str = "cost"
    #: Fabric bandwidth used for the wire term, bytes/second.
    fabric_bandwidth: float = 6e9
    storage_core_budget: float = 1.0
    worker_core_budget: float = 2.0

    def __post_init__(self) -> None:
        if self.mode not in ("worker", "storage", "cost"):
            raise ConfigError(f"unknown pushdown mode {self.mode!r}")
        for name in ("fabric_bandwidth", "storage_core_budget",
                     "worker_core_budget"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ConfigError(f"pushdown {name} must be > 0")

    def _legal_range(self, stages: tuple) -> tuple[int, int]:
        """Boundary positions allowed by the per-stage placement pins.

        A ``storage`` pin forces the boundary after that stage; a
        ``worker`` pin forces it at or before.  A storage pin *after* a
        worker pin would need the record shipped back — rejected.
        """
        lo, hi = 0, len(stages)
        for k, stage in enumerate(stages):
            if stage.placement == "storage":
                lo = max(lo, k + 1)
            elif stage.placement == "worker":
                hi = min(hi, k)
        if lo > hi:
            raise ConfigError(
                "stage placements are contradictory: a storage-pinned stage "
                "follows a worker-pinned one (records never ship backwards)"
            )
        return lo, hi

    def boundary(self, stages: tuple, input_bytes: int) -> int:
        """The chosen boundary: stages[:k] run on storage, stages[k:] on
        the transform tier."""
        lo, hi = self._legal_range(stages)
        if self.mode == "worker":
            return lo
        if self.mode == "storage":
            return hi
        sizes = pipeline_bytes(stages, input_bytes)
        costs = pipeline_cost(stages, input_bytes)
        best_k, best = lo, None
        for k in range(lo, hi + 1):
            estimate = (
                sum(costs[:k]) / self.storage_core_budget
                + sizes[k] / self.fabric_bandwidth
                + sum(costs[k:]) / self.worker_core_budget
                # The transform tier ships its output separately; at
                # full pushdown the boundary ship IS the delivery.
                + (sizes[-1] / self.fabric_bandwidth
                   if k < len(stages) else 0.0)
            )
            if best is None or estimate < best:
                best_k, best = k, estimate
        return best_k


def stages_with_packing(stages: tuple, packed_ratio: float) -> tuple:
    """Prefix a FanStore-style packed format onto a stage pipeline.

    Packed/compressed on-node formats act as a selectivity multiplier:
    the record leaves the device ``packed_ratio`` times smaller and an
    unpack stage (selectivity = ratio) must run somewhere before the
    rest of the pipeline.  Pushing the *rest* of the pipeline down now
    pays double — the unpack inflation happens on the storage node too.
    """
    if packed_ratio == 1.0:
        return tuple(stages)
    ratio = decompression_selectivity(packed_ratio)
    unpack = decompress(ratio)
    return (replace(unpack, name=f"unpack:{ratio:g}"),) + tuple(stages)
