"""Disaggregated fetch/transform tier (PD disaggregation, storage edition).

DL ingest splits into two phases with opposite resource shapes: fetch is
I/O-bound and lives on the storage nodes; decode/transform (TFRecord
parse, decompression, augmentation) is CPU-bound.  This package
disaggregates the second phase onto its own pool of CPU worker nodes —
:class:`XformTier` — connected by an explicit chunked
:class:`TransferEngine` over the fabric, with an OffloadFS-style
:class:`~repro.xform.stages.PushdownPolicy` deciding per stage whether
to burn storage-side CPU to ship fewer bytes or ship raw bytes and
transform on the tier.

Pay-for-use: a spec with no stages builds nothing and the datapath is
bit-identical to the flat one (enforced by the ``xform_pay_for_use``
perfcheck workload).
"""

from .stages import (
    PushdownPolicy,
    TransformStage,
    augment,
    decompress,
    parse_stages,
    pipeline_bytes,
    pipeline_cost,
    stages_with_packing,
    tfrecord_parse,
)
from .tier import TransformWorker, XformRuntime, XformSpec, XformTier
from .transfer import TransferEngine

__all__ = [
    "TransformStage",
    "PushdownPolicy",
    "tfrecord_parse",
    "decompress",
    "augment",
    "parse_stages",
    "pipeline_bytes",
    "pipeline_cost",
    "stages_with_packing",
    "TransferEngine",
    "XformSpec",
    "XformTier",
    "XformRuntime",
    "TransformWorker",
]
