"""The disaggregated fetch/transform tier.

A :class:`XformTier` is a pool of simulated CPU worker nodes sitting
between the storage tier and the trainer, mirroring the prefill/decode
split of PD disaggregation: fetch is I/O-bound and lives on the storage
nodes; decode/transform is CPU-bound and lives here.  Per fetched job:

1. the :class:`~repro.xform.stages.PushdownPolicy` boundary splits the
   stage pipeline — the pushdown prefix runs on the *storage* node's
   cores (OffloadFS-style, shipping fewer bytes at the price of
   storage-side CPU);
2. the job's boundary bytes ship storage→worker through the
   :class:`~repro.xform.transfer.TransferEngine` (chunked, credit
   backpressured), one group per storage node holding its records;
3. the suffix runs on the client's affinity lane — a static hash of the
   client rank over the worker pool, with a dead lane failed over to
   the next live index;
4. the output bytes ship worker→trainer, and only then does the job's
   ``done`` fire.

Backpressure chain: trainer jobs hold a tier-wide inflight slot from
submission to transform completion (:class:`XformRuntime`), worker
inboxes are depth-bounded, and transfer credits bound the bytes in
flight — a saturated transform tier therefore stalls *submission* into
the fair-queue scheduler rather than queueing unboundedly behind it.

Worker crashes are fail-stop at task granularity: queued and in-service
tasks on the dead lane are lost and re-dispatched (re-shipping their
boundary bytes from the storage nodes) to a surviving worker; CPU
already burned on a lost task is sunk cost.  Crash schedules come from
:attr:`repro.faults.FaultPlan.xform_crashes`.

Determinism is structural, per the SimSanitizer contract.  Each
client's transforms run strictly serialized in submission order — at
most one of its jobs is inside the tier at a time, with the *next*
job's fetch overlapping the current job's transform, the same
fetch/decode pipelining DLFS runs between its reader and the training
loop.  Lane choice is static client affinity (a hash of the client
rank plus the failover attempt), never a read of live queue depths
shared across clients, and the pushdown boundary is an analytic
decision made once per run.  Fetch completion times are already
tiebreak-invariant, so every tier decision is a pure function of run
configuration and absolute crash times — nothing rides on
same-timestamp event ordering.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..obs import NULL_METRICS
from ..sim import Store
from .stages import pipeline_bytes, pipeline_cost, stages_with_packing
from .transfer import TransferEngine

__all__ = [
    "XformSpec", "XformTier", "XformRuntime", "TransformWorker",
    "transform_fluid_rate",
]


def transform_fluid_rate(
    stages: tuple, worker_cores: int, input_bytes: int
) -> float:
    """Steady-state transform throughput in *input* bytes/s per worker.

    One record entering at ``input_bytes`` burns ``sum(pipeline_cost)``
    CPU seconds spread over ``worker_cores`` concurrent tasks, so a
    saturated worker's fluid service rate is
    ``worker_cores * input_bytes / cost``.  This is the transform-queue
    stage the hybrid-fidelity engine (:mod:`repro.sim.fluid`)
    rate-balances against the NVMe and fabric stages; an empty pipeline
    is infinitely fast (no transform stage on the lane).
    """
    if worker_cores < 1 or input_bytes < 1:
        raise ConfigError(
            "transform_fluid_rate needs worker_cores >= 1, input_bytes >= 1"
        )
    if not stages:
        return math.inf
    cost = sum(pipeline_cost(stages, input_bytes))
    if cost <= 0.0:
        return math.inf
    return worker_cores * input_bytes / cost

_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """SplitMix64 finalizer: a stable integer hash for lane affinity."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


@dataclass(frozen=True)
class XformSpec:
    """Configuration of the transform tier (pay-for-use: empty
    ``stages`` builds nothing and keeps the flat datapath)."""

    #: The decode/transform pipeline, in execution order.
    stages: tuple = ()
    #: Transform worker nodes.
    workers: int = 2
    #: Service cores (and concurrent tasks) per worker.
    worker_cores: int = 2
    #: Pending-task bound per worker inbox (backpressure).
    queue_depth: int = 16
    #: Tier-wide jobs in flight between submission and transform
    #: completion; further submissions park FIFO (backpressure into the
    #: fair-queue scheduler).
    max_inflight_jobs: int = 16
    #: TransferEngine chunk size.
    chunk_bytes: int = 256 * 1024
    #: TransferEngine per-destination chunk credits.
    inflight_chunks: int = 4
    #: Pushdown mode: "worker" | "storage" | "cost".
    placement: str = "cost"
    #: Storage-node cores usable for pushdown stages (per node).
    storage_cores: int = 1
    #: FanStore-style packed on-node format: records leave the device
    #: ``packed_ratio`` times smaller and an unpack stage (selectivity =
    #: ratio) is prefixed to the pipeline.
    packed_ratio: float = 1.0

    def validate(self, num_storage_cores: int = 0) -> None:
        if self.workers < 1:
            raise ConfigError("xform needs at least one worker")
        if self.worker_cores < 1 or self.queue_depth < 1:
            raise ConfigError("worker_cores and queue_depth must be >= 1")
        if self.max_inflight_jobs < 1:
            raise ConfigError("max_inflight_jobs must be >= 1")
        if self.storage_cores < 1:
            raise ConfigError("storage_cores must be >= 1")
        if not math.isfinite(self.packed_ratio) or self.packed_ratio < 1.0:
            raise ConfigError("packed_ratio must be finite and >= 1")
        if self.placement not in ("worker", "storage", "cost"):
            raise ConfigError(f"unknown placement {self.placement!r}")
        if num_storage_cores and self.storage_cores > num_storage_cores:
            raise ConfigError(
                f"storage_cores={self.storage_cores} exceeds the "
                f"{num_storage_cores} cores a storage node has"
            )

    @property
    def enabled(self) -> bool:
        return bool(self.stages)


class _Task:
    """One job's transform-suffix work, bound for a transform lane."""

    __slots__ = (
        "tenant", "accounting", "dst", "worker_cost", "out_bytes",
        "ready_t", "wait_recorded",
    )

    def __init__(self, tenant, accounting, dst, worker_cost, out_bytes):
        self.tenant = tenant
        self.accounting = accounting
        self.dst = dst
        self.worker_cost = worker_cost
        self.out_bytes = out_bytes
        self.ready_t = 0.0
        self.wait_recorded = False


class _Attempt:
    """One dispatch of a task onto one worker.

    A crashed worker's in-service generator may only resume *after* the
    task has been re-dispatched elsewhere, so the loss flag must live on
    the attempt, never on the (reused) task — otherwise the stale lane
    would double-complete it.
    """

    __slots__ = ("task", "done", "lost", "remaining")

    def __init__(self, task: _Task, done, slices: int) -> None:
        self.task = task
        self.done = done
        self.lost = False
        #: Service slices not yet finished; the last one delivers.
        self.remaining = slices


class TransformWorker:
    """One transform lane: an inbox, service cores, fail-stop crashes."""

    def __init__(self, tier: "XformTier", index: int, node) -> None:
        self.tier = tier
        self.env = tier.env
        self.index = index
        self.node = node
        self.alive = True
        self.routed = 0
        self._inbox = Store(tier.env, name=f"xform.w{index}.inbox")
        self._slots_used = 0
        self._slot_waiters: list = []
        #: Attempts accepted and not yet finished (queued or in
        #: service); insertion-ordered, so crash loss order is
        #: deterministic.
        self._open: dict[int, _Attempt] = {}
        self._task_seq = 0
        for c in range(tier.spec.worker_cores):
            tier.env.process(
                self._serve(c), name=f"xform.w{index}.serve{c}"
            )

    @property
    def load(self) -> int:
        return self._slots_used

    # -- admission ------------------------------------------------------------
    def acquire_slot(self):
        """Process helper: wait for an inbox slot.  Returns False if the
        worker crashed while we waited (caller re-routes)."""
        while self.alive and self._slots_used >= self.tier.spec.queue_depth:
            ev = self.env.event()
            self._slot_waiters.append(ev)
            ok = yield ev
            if not ok:
                return False
        if not self.alive:
            return False
        self._slots_used += 1
        return True

    def _release_slot(self) -> None:
        self._slots_used -= 1
        if self._slot_waiters:
            self._slot_waiters.pop(0).succeed(True)

    def dispatch(self, task: _Task) -> _Attempt:
        """Hand a task (whose bytes have already shipped here) to the
        service cores.  Caller holds an inbox slot.

        The task is enqueued as ``worker_cores`` *equal* service slices
        so one job's transform spreads across the lane's cores — the
        data-parallel decode the real tier would run.  Equal slices
        matter for the SimSanitizer contract: which core pulls which
        slice is tiebreak-order dependent, but identical durations plus
        the all-slices barrier make the outcome invariant.
        """
        slices = self.tier.spec.worker_cores
        attempt = _Attempt(task, self.env.event(), slices)
        self._task_seq += 1
        self._open[self._task_seq] = attempt
        for _ in range(slices):
            self._inbox.put_nowait((self._task_seq, attempt))
        return attempt

    # -- service --------------------------------------------------------------
    def _serve(self, core_index: int):
        core = self.node.cpu.core(core_index)
        while True:
            seq, attempt = yield self._inbox.get()
            if attempt.lost:
                continue
            task = attempt.task
            if not task.wait_recorded:
                task.wait_recorded = True
                self.tier.record_wait(
                    task.tenant, self.env.now - task.ready_t, task.accounting
                )
            slice_cost = task.worker_cost / self.tier.spec.worker_cores
            if slice_cost > 0:
                yield from core.execute(slice_cost)
                self.tier.layers.add("xform.worker", slice_cost)
            if attempt.lost:
                continue  # crashed mid-service: work is sunk cost
            attempt.remaining -= 1
            if attempt.remaining:
                continue  # a sibling slice delivers
            yield from self.tier.engine.move(
                self.node.name, task.dst, task.out_bytes
            )
            if attempt.lost:
                continue
            self._open.pop(seq, None)
            self._release_slot()
            self.tier.tasks_done += 1
            attempt.done.succeed("ok")

    # -- lifecycle ------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: every open task is lost; waiters are bounced."""
        if not self.alive:
            return
        self.alive = False
        self.tier.crashes += 1
        lost = list(self._open.values())
        self._open.clear()
        self._slots_used = 0
        for attempt in lost:
            attempt.lost = True
            attempt.done.succeed("down")
        waiters, self._slot_waiters = self._slot_waiters, []
        for ev in waiters:
            ev.succeed(False)

    def rejoin(self) -> None:
        if self.alive:
            return
        self.alive = True
        self.tier.rejoins += 1
        self.tier._wake_alive_waiters()

    def __repr__(self) -> str:
        return (
            f"<TransformWorker {self.index} {'up' if self.alive else 'DOWN'} "
            f"load={self._slots_used}>"
        )


class XformTier:
    """The transform-worker pool plus the per-run pushdown plan."""

    def __init__(
        self,
        env,
        spec: XformSpec,
        fs,
        worker_nodes: list,
        crashes: tuple = (),
        registry=None,
    ) -> None:
        if len(worker_nodes) != spec.workers:
            raise ConfigError(
                f"spec names {spec.workers} workers but {len(worker_nodes)} "
                "nodes were provided"
            )
        spec.validate(num_storage_cores=len(worker_nodes[0].cpu))
        self.env = env
        self.spec = spec
        self.fs = fs
        self.registry = registry if registry is not None and registry.enabled \
            else NULL_METRICS
        self.layers = self.registry.layers("xform")
        self._h_wait = self.registry.histogram("xform.queue_wait")
        self.engine = TransferEngine(
            env, fs.cluster.fabric,
            chunk_bytes=spec.chunk_bytes,
            inflight_per_dst=spec.inflight_chunks,
            registry=registry,
        )
        #: The effective pipeline (packed-format unpack prefixed).
        self.stages = stages_with_packing(spec.stages, spec.packed_ratio)
        #: Mean-record boundary: stages[:k] on storage, stages[k:] here.
        from .stages import PushdownPolicy

        sizes = fs.dataset.sizes
        mean_bytes = int(sizes.mean()) if len(sizes) else 0
        # Budgets are the cores ONE job's work traverses, not tier
        # totals: its per-node pushdown group runs on a single keyed
        # storage core (shared by every client), its transform suffix
        # on one affinity lane's dedicated cores.
        self.policy = PushdownPolicy(
            mode=spec.placement,
            fabric_bandwidth=fs.cluster.fabric.spec.bandwidth,
            storage_core_budget=float(spec.storage_cores),
            worker_core_budget=float(spec.worker_cores),
        )
        self.boundary = self.policy.boundary(
            self.stages, self._scaled(mean_bytes)
        )
        self.workers = [
            TransformWorker(self, i, node)
            for i, node in enumerate(worker_nodes)
        ]
        self._alive_waiters: list = []
        # Counters (also mirrored on the registry when metrics are on).
        self.tasks_done = 0
        self.direct_ships = 0
        self.redispatches = 0
        self.crashes = 0
        self.rejoins = 0
        for entry in crashes:
            if len(entry) != 3:
                raise ConfigError(
                    "xform crash entries must be (worker, crash, rejoin|None)"
                )
            widx, t1, t2 = entry
            if not 0 <= widx < len(self.workers):
                raise ConfigError(f"xform crash worker {widx} out of range")
            env.process(
                self._crash_proc(self.workers[widx], t1, t2),
                name=f"xform.crash.w{widx}",
            )

    def _scaled(self, nbytes: int) -> int:
        """Device bytes -> packed bytes entering the pipeline."""
        if self.spec.packed_ratio == 1.0:
            return int(nbytes)
        return int(round(nbytes / self.spec.packed_ratio))

    # -- accounting -----------------------------------------------------------
    def record_wait(self, tenant: Optional[str], wait: float,
                    accounting=None) -> None:
        """Charge one task's transform-queue wait to its tenant (on the
        accounting of the client that submitted it — the tier is shared,
        the charge is not)."""
        self._h_wait.observe(wait)
        if tenant is not None and accounting is not None:
            accounting.on_xform_wait(tenant, wait)

    # -- routing --------------------------------------------------------------
    def route(self, key: int, attempt: int = 0) -> Optional[TransformWorker]:
        """Affinity-hash the client key onto a live lane.

        Lane choice is a pure function of ``(key, attempt)`` and the
        alive set — never of live queue depths, which are shared across
        clients and therefore tiebreak-order dependent.  A dead home
        lane fails over to the next live index; a re-dispatch bumps
        ``attempt`` so the retry re-hashes instead of hammering the
        same lane.  Returns ``None`` when every lane is down.
        """
        n = len(self.workers)
        start = _mix(key ^ (attempt * 0x9E3779B97F4A7C15)) % n
        for off in range(n):
            w = self.workers[(start + off) % n]
            if w.alive:
                return w
        return None

    def _wake_alive_waiters(self) -> None:
        waiters, self._alive_waiters = self._alive_waiters, []
        for ev in waiters:
            ev.succeed(True)

    # -- job planning ---------------------------------------------------------
    def plan_job(self, job) -> list[tuple]:
        """Aggregate a fetched job into per-storage-node groups.

        Returns ``(src_node, pushdown_cost, ship_bytes, worker_cost,
        out_bytes, n_samples)`` tuples in shard order — each group is
        the job's records resident on one storage node.  Samples that
        failed their fetch are excluded — there is nothing to
        transform.
        """
        failed = set()
        for exc in job.errors:
            key = getattr(exc, "key", None)
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "s":
                failed.add(int(key[1]))
        layout = self.fs.layout
        sizes = self.fs.dataset.sizes
        k = self.boundary
        groups: dict[int, list[float]] = {}
        for idx in job.samples:
            idx = int(idx)
            if idx in failed:
                continue
            shard = layout.shard_of(idx)
            acc = groups.get(shard)
            if acc is None:
                acc = groups[shard] = [0.0, 0, 0.0, 0, 0]
            nbytes = self._scaled(int(sizes[idx]))
            cut_sizes = pipeline_bytes(self.stages, nbytes)
            costs = pipeline_cost(self.stages, nbytes)
            acc[0] += sum(costs[:k])
            acc[1] += cut_sizes[k]
            acc[2] += sum(costs[k:])
            acc[3] += cut_sizes[-1]
            acc[4] += 1
        plans = []
        for shard in sorted(groups):
            node_idx, _dev = self.fs.placement[shard]
            src = self.fs.cluster.node(node_idx)
            pd, ship, wc, out, n = groups[shard]
            plans.append((src, pd, int(ship), wc, int(out), n))
        return plans

    def _storage_core(self, node, key: int):
        """Content-keyed pick over the node's pushdown cores (FIFO
        contention on each core models storage-side CPU saturation;
        clients spread across cores by hash, not by arrival order)."""
        return node.cpu.core(_mix(key) % self.spec.storage_cores)

    # -- the per-job pipeline -------------------------------------------------
    def _pushdown_proc(self, src, cost: float, key: int):
        core = self._storage_core(src, key)
        yield from core.execute(cost)
        self.layers.add("xform.pushdown", cost)

    def _ship_proc(self, src, nbytes: int, dst: str):
        yield from self.engine.move(src.name, dst, nbytes)

    def process_job(self, job, dst: str, key: int, accounting=None):
        """Process helper: pushdown -> ship -> transform -> deliver.

        Runs one fetched job through the tier: the pushdown prefix on
        each group's storage node (groups in parallel — the nodes are
        distinct), the boundary ship (also per-group parallel), one
        lane task for the transform suffix, the output ship.  Callers
        serialize their jobs (one per client inside the tier at a
        time); each fan-out below is consumed only by its barrier, so
        sibling ordering can never leak into downstream timing.
        """
        tenant = job.tenant
        groups = self.plan_job(job)
        if not groups:
            return
        pushdowns = [
            self.env.process(
                self._pushdown_proc(src, pd, key),
                name=f"xform.pushdown.{src.name}",
            )
            for src, pd, _ship, _wc, _out, _n in groups if pd > 0
        ]
        if pushdowns:
            yield self.env.all_of(pushdowns)
        if self.boundary == len(self.stages):
            # Full pushdown: transformed bytes ship straight to the
            # trainer; the worker pool is not involved.
            ships = [
                self.env.process(
                    self._ship_proc(src, ship, dst),
                    name=f"xform.ship.{src.name}",
                )
                for src, _pd, ship, _wc, _out, _n in groups
            ]
            yield self.env.all_of(ships)
            self.direct_ships += len(groups)
            self.record_wait(tenant, 0.0, accounting)
            return
        task = _Task(
            tenant, accounting, dst,
            sum(g[3] for g in groups), sum(g[4] for g in groups),
        )
        task.ready_t = self.env.now
        tries = 0
        while True:
            w = self.route(key, tries)
            if w is None:
                ev = self.env.event()
                self._alive_waiters.append(ev)
                yield ev
                continue
            ok = yield from w.acquire_slot()
            if not ok:
                tries += 1
                continue
            w.routed += 1
            ships = [
                self.env.process(
                    self._ship_proc(src, ship, w.node.name),
                    name=f"xform.ship.{src.name}",
                )
                for src, _pd, ship, _wc, _out, _n in groups
            ]
            yield self.env.all_of(ships)
            if not w.alive:
                # Crashed while the bytes were on the wire; the crash
                # reset the slot accounting, so just re-route.
                self.redispatches += 1
                tries += 1
                continue
            attempt = w.dispatch(task)
            result = yield attempt.done
            if result == "ok":
                return
            self.redispatches += 1
            tries += 1

    def _crash_proc(self, worker: TransformWorker, t1: float, t2):
        yield self.env.timeout(t1)
        worker.crash()
        if t2 is not None:
            yield self.env.timeout(t2 - t1)
            worker.rejoin()

    # -- reporting ------------------------------------------------------------
    def counters(self) -> dict:
        return {
            "tasks": self.tasks_done,
            "direct_ships": self.direct_ships,
            "redispatches": self.redispatches,
            "crashes": self.crashes,
            "rejoins": self.rejoins,
            "boundary": self.boundary,
            "stages": len(self.stages),
        }

    def routed(self) -> dict:
        return {w.index: w.routed for w in self.workers}

    def utilization_rows(self) -> list[dict]:
        """Per-tier CPU utilization over the cores each tier spends on
        transforms (the obs per-tier panel)."""
        rows = []
        storage_nodes = sorted(
            {n for n, _d in self.fs.placement}
        )
        for node_idx in storage_nodes:
            node = self.fs.cluster.node(node_idx)
            cores = self.spec.storage_cores
            util = sum(
                node.cpu.core(i).utilization() for i in range(cores)
            ) / cores
            rows.append({
                "tier": "storage", "node": node.name,
                "cores": cores, "cpu": util,
            })
        for w in self.workers:
            cores = self.spec.worker_cores
            util = sum(
                w.node.cpu.core(i).utilization() for i in range(cores)
            ) / cores
            rows.append({
                "tier": "xform", "node": w.node.name,
                "cores": cores, "cpu": util,
            })
        return rows

    def __repr__(self) -> str:
        return (
            f"<XformTier workers={len(self.workers)} "
            f"boundary={self.boundary}/{len(self.stages)}>"
        )


class XformRuntime:
    """Tenant-runtime facade that splices the transform tier into the
    job path.

    The traffic engine submits jobs here; each job's fetch runs through
    the *inner* runtime (tenancy SFQ or cluster balancer) as a shadow
    job, and the original ``job.done`` only fires after the transform
    pipeline delivers.  A bounded number of jobs is in flight through
    the tier; the overflow parks FIFO *before* the fetch is submitted,
    which is what pushes transform-tier saturation back into the
    fair-queue scheduler's arrival stream.

    Transforms are strictly serialized per client, in submission order:
    a single loop waits each job's fetch, runs it through the tier, and
    only then fires its ``done``.  Fetches still overlap transforms
    (and each other, up to the inflight bound) — the DLFS reader's
    fetch/decode pipelining — but the tier never sees two jobs from the
    same client at once, which is what keeps its shared queues off the
    event-queue tiebreak (see the module docstring).
    """

    def __init__(self, env, inner, tier: XformTier, client_name: str,
                 rank: int = 0) -> None:
        self.env = env
        self.inner = inner
        self.tier = tier
        self.client_name = client_name
        self.rank = rank
        self._inflight = 0
        self._pending: deque = deque()
        #: (job, shadow) pairs in submission order, consumed by the
        #: transform loop.
        self._fetches = Store(env, name=f"xform.{client_name}.fetched")
        env.process(self._transform_loop(), name=f"xform.{client_name}.loop")

    @property
    def accounting(self):
        return self.inner.accounting

    @property
    def records(self):
        return self.inner.records

    def submit(self, job) -> bool:
        if self._inflight < self.tier.spec.max_inflight_jobs:
            self._inflight += 1
            self._forward(job)
        else:
            self._pending.append(job)
        return True

    def _forward(self, job) -> None:
        from ..core.reader import ReadJob

        shadow = ReadJob(
            samples=job.samples, done=self.env.event(), tenant=job.tenant
        )
        self._fetches.put_nowait((job, shadow))
        self.inner.submit(shadow)

    def _transform_loop(self):
        from ..errors import AdmissionRejected

        while True:
            job, shadow = yield self._fetches.get()
            yield shadow.done  # no-op if the fetch already completed
            job.errors.extend(shadow.errors)
            job.retained = shadow.retained
            rejected = any(
                isinstance(exc, AdmissionRejected) for exc in job.errors
            )
            if not rejected:
                yield from self.tier.process_job(
                    job, self.client_name, self.rank,
                    getattr(self.inner, "accounting", None),
                )
            job.done.succeed(job)
            if self._pending:
                self._forward(self._pending.popleft())
            else:
                self._inflight -= 1
