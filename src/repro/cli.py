"""Command-line interface: regenerate paper figures without pytest.

Usage::

    python -m repro list
    python -m repro figure fig09 [--scale 0.5] [--out results/]
    python -m repro all [--scale 1.0] [--out results/]
    python -m repro claims [--scale 0.5]

``figure``/``all`` print each figure's data table and headline block
(the same rendering the benchmarks produce) and optionally write them
to files.  ``claims`` prints only the paper-vs-measured headlines —
the quickest way to check the reproduction end to end.

``chaos`` runs a fault-injected epoch sweep (not a paper figure)::

    python -m repro chaos --fault-plan media=0.01,reset_period=0.002
    python -m repro chaos --fault-plan '{"media_error_rate": 0.05}' --epochs 3

``trace`` runs one observed workload and exports the observability
artifacts: a Perfetto-loadable Chrome trace, the JSON metrics dump, and
the per-layer latency attribution / percentile tables::

    python -m repro trace --samples 2000
    python -m repro trace --fault-plan media=0.02,reset_period=0.002 --out results/trace

``serve`` runs the multi-tenant serving demo — the seeded traffic
engine driving weighted tenants through admission control and the
fair-queued datapath — and prints the per-tenant SLO/fairness tables::

    python -m repro serve
    python -m repro serve --horizon 0.1 --seed 7 --out results/serve.json

``lint`` and ``sanitize`` are the determinism gates (both used by CI)::

    python -m repro lint src/repro              # AST rules, exit 1 on findings
    python -m repro sanitize --runs 5           # tiebreak-perturbation sweep

``perfcheck`` is the fast-path equivalence gate: it runs the fig06 and
fig08 workloads under both the reference and the optimized kernel and
asserts sim_time, the sample-order digest, and the metrics snapshot are
bit-identical (exit 1 on divergence)::

    python -m repro perfcheck
    python -m repro perfcheck --quick --out results/perfcheck.json

``cluster`` runs the replicated serving tier — rendezvous-hashed
replica placement, the cache-aware front-end balancer, and the full
node crash/failover/rejoin lifecycle — under live multi-tenant
traffic, and prints per-lane routing plus recovery/lifecycle counters::

    python -m repro cluster
    python -m repro cluster --crash 1=0.004:0.012 --replicas 2
    python -m repro cluster --quick --crash 1=0.004:0.008 --out results/cluster.json

``xform`` runs the disaggregated fetch/transform tier: decode/transform
stages with pushdown placement (storage node vs transform workers), the
chunked fabric transfer engine, and per-tier utilization reporting::

    python -m repro xform --stages parse,augment:0.5
    python -m repro xform --stages parse,decompress:2 --placement storage
    python -m repro xform --stages parse --crash 0=0.002:0.005 --out results/xform.json

``scenario`` is the golden-master regression harness: named, seeded
traffic/fault scenarios (flash crowds, tenant churn, dataset hot-swap,
rolling upgrades, regional failover, diurnal fleet days) compiled onto
the engines above, with bit-exact drift checking against committed
baselines under ``scenarios/golden/``::

    python -m repro scenario list
    python -m repro scenario run flash-crowd --quick
    python -m repro scenario record rolling-upgrade --label "why this baseline is right"
    python -m repro scenario check                    # exit 1 on drift, with attribution
    python -m repro scenario check --quick --perturb 0.01   # must FAIL (gate self-check)
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable

from .bench import figures as F
from .bench.report import render_figure, render_headline

__all__ = ["main", "FIGURES"]

#: name -> (callable, description)
FIGURES: dict[str, tuple[Callable, str]] = {
    "fig01": (F.fig01_size_distribution, "sample-size distributions"),
    "fig06": (F.fig06_single_node_throughput, "single-node throughput"),
    "fig07a": (F.fig07a_core_scaling, "CPU core scaling"),
    "fig07b": (F.fig07b_compute_overlap, "compute/I-O overlap"),
    "fig08": (F.fig08_throughput_16_nodes, "16-node throughput"),
    "fig09": (F.fig09_scalability, "scalability 2-16 nodes"),
    "fig10": (F.fig10_lookup_time, "sample lookup time"),
    "fig11": (F.fig11_disaggregation, "disaggregation effectiveness"),
    "fig12": (F.fig12_tensorflow, "TensorFlow ingest"),
    "fig13": (F.fig13_training_accuracy, "training accuracy"),
}

#: Figures whose drivers accept a ``scale`` parameter.
_UNSCALED = {"fig01"}


def _run_figure(name: str, scale: float):
    fn, _ = FIGURES[name]
    if name in _UNSCALED:
        return fn()
    return fn(scale=scale)


def _parse_crash(spec: str) -> tuple:
    """Parse a ``LANE=T1[:T2]`` crash spec into a node_crashes tuple."""
    lane_s, sep, times = spec.partition("=")
    if not sep:
        raise ValueError(f"{spec!r}: expected LANE=T1[:T2]")
    try:
        lane = int(lane_s)
    except ValueError:
        raise ValueError(f"{spec!r}: lane must be an integer") from None
    t1_s, sep, t2_s = times.partition(":")
    try:
        t1 = float(t1_s)
        t2 = float(t2_s) if sep else None
    except ValueError:
        raise ValueError(f"{spec!r}: times must be numbers") from None
    return (lane, t1, t2)


def _common_parent() -> argparse.ArgumentParser:
    """Shared flags for every workload subcommand.

    ``chaos``/``serve``/``cluster``/``xform``/``scale``/``scenario`` all
    inherit ``--seed``/``--quick``/``--json``/``--out`` from this parent
    so the flags mean the same thing everywhere.  ``--seed`` defaults to
    ``None`` and each command resolves its own default (42 for the
    traffic engines; ``chaos`` keeps the fault plan's seed), preserving
    the historical per-command semantics.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=None,
                        help="deterministic seed (default: per-command)")
    parent.add_argument("--quick", action="store_true",
                        help="downscaled run (CI smoke)")
    parent.add_argument("--json", action="store_true",
                        help="print the JSON summary to stdout instead of "
                             "the human tables")
    parent.add_argument("--out", type=pathlib.Path, default=None,
                        help="write a JSON summary here")
    return parent


def _write_json(out: pathlib.Path | None, blob, as_json: bool) -> None:
    """Honor the shared ``--json`` / ``--out`` flags for one summary."""
    import json

    if as_json:
        print(json.dumps(blob, indent=2, default=str))
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(blob, indent=2, default=str) + "\n")
        if not as_json:
            print(f"\nwrote {out}")


def _emit(result, out_dir: pathlib.Path | None, headline_only: bool) -> None:
    text = render_headline(result) if headline_only else render_figure(result)
    print(f"\n== {result.figure}: {result.title} ==" if headline_only else "")
    print(text)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{result.figure}.txt").write_text(
            render_figure(result) + "\n"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the DLFS (CLUSTER 2019) evaluation figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _common_parent()

    sub.add_parser("list", help="list available figures")

    p_fig = sub.add_parser("figure", help="run one figure")
    p_fig.add_argument("name", choices=sorted(FIGURES))
    p_fig.add_argument("--scale", type=float, default=1.0,
                       help="workload scale factor (default 1.0)")
    p_fig.add_argument("--out", type=pathlib.Path, default=None,
                       help="directory to write the rendered table to")

    p_all = sub.add_parser("all", help="run every figure")
    p_all.add_argument("--scale", type=float, default=1.0)
    p_all.add_argument("--out", type=pathlib.Path, default=None)

    p_claims = sub.add_parser(
        "claims", help="print only the paper-vs-measured headlines"
    )
    p_claims.add_argument("--scale", type=float, default=0.5)

    p_chaos = sub.add_parser(
        "chaos", parents=[common],
        help="fault-injected run with recovery accounting",
    )
    p_chaos.add_argument(
        "--fault-plan", default="media=0.01,reset_period=0.002",
        help="JSON or key=value,... fault plan; 'zero' disables injection "
             "(keys: media, hiccup, timeout, drop, nvmf_drop, reset_period, "
             "reset_jitter, seed)",
    )
    p_chaos.add_argument("--nodes", type=int, default=2)
    p_chaos.add_argument("--samples", type=int, default=1024)
    p_chaos.add_argument("--epochs", type=int, default=2)
    p_chaos.add_argument("--size", type=int, default=4096,
                         help="sample size in bytes (default 4096)")
    p_chaos.add_argument("--batching", default="chunk",
                         choices=("none", "sample", "chunk"))

    p_trace = sub.add_parser(
        "trace", help="observed run: Chrome trace + latency attribution"
    )
    p_trace.add_argument("--samples", type=int, default=2000,
                         help="total sample reads to drive (default 2000)")
    p_trace.add_argument("--size", type=int, default=16 * 1024,
                         help="sample size in bytes (default 16384)")
    p_trace.add_argument("--nodes", type=int, default=1)
    p_trace.add_argument("--batching", default="chunk",
                         choices=("none", "sample", "chunk"))
    p_trace.add_argument(
        "--fault-plan", default="zero",
        help="fault plan as for 'chaos'; default 'zero' (healthy run)",
    )
    p_trace.add_argument("--snapshot-period", type=float, default=0.0,
                         help="metrics time-series period in sim seconds")
    p_trace.add_argument("--out", type=pathlib.Path,
                         default=pathlib.Path("results/trace"),
                         help="output directory (default results/trace)")

    p_serve = sub.add_parser(
        "serve", parents=[common],
        help="multi-tenant serving demo: traffic engine + admission + "
             "weighted-fair scheduling, with per-tenant SLO tables",
    )
    p_serve.add_argument("--horizon", type=float, default=0.05,
                         help="arrival window in sim seconds (default 0.05)")
    p_serve.add_argument("--warmup", type=float, default=0.01,
                         help="service-share window start (default 0.01)")
    p_serve.add_argument("--queue-depth", type=int, default=32)
    p_serve.add_argument(
        "--fault-plan", default="zero",
        help="fault plan as for 'chaos'; supports tenant.NAME=rate keys",
    )

    p_lint = sub.add_parser(
        "lint", help="simlint: static determinism analysis (exit 1 on findings)"
    )
    p_lint.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src/repro)")
    p_lint.add_argument("--rules", action="store_true",
                        help="print the rule table and exit")
    p_lint.add_argument("--flow", action="store_true",
                        help="run simflow (whole-program dataflow + "
                             "lifecycle protocols, SF2xx/SF3xx)")
    p_lint.add_argument("--changed", nargs="*", default=None,
                        metavar="FILE",
                        help="[--flow] pre-commit mode: analyze only the "
                             "import-closure of these changed files "
                             "(default: git diff vs HEAD)")
    p_lint.add_argument("--baseline", type=pathlib.Path, default=None,
                        metavar="JSON",
                        help="[--flow] fail only on findings absent from "
                             "this baseline file")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="[--flow] rewrite the baseline from current "
                             "findings (keeps existing reasons)")
    p_lint.add_argument("--sarif", type=pathlib.Path, default=None, metavar="JSON",
                        help="[--flow] also write findings as SARIF 2.1.0")

    p_san = sub.add_parser(
        "sanitize",
        help="SimSanitizer: rerun the default workload under perturbed "
             "same-timestamp tiebreaks and assert invariant results",
    )
    p_san.add_argument("--runs", type=int, default=5,
                       help="perturbed tiebreak seeds to sweep (default 5)")
    p_san.add_argument("--seed", type=int, default=2019,
                       help="base perturbation seed (default 2019)")
    p_san.add_argument(
        "--scenario",
        choices=("default", "cluster", "xform", "scale", "scenario", "all"),
        default="all",
        help="workload(s) to sweep: the flat datapath smoke, the "
             "cluster crash-during-handoff scenario, the transform-tier "
             "crash scenario, the hybrid-fidelity scale scenario, the "
             "golden-master scenario pack, or all (default all)",
    )
    p_san.add_argument("--out", type=pathlib.Path, default=None,
                       help="write the JSON report here")

    p_perf = sub.add_parser(
        "perfcheck",
        help="prove fast-path kernel results are bit-identical to the "
             "reference kernel on the fig06/fig08 workloads",
    )
    p_perf.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    p_perf.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here")

    p_cluster = sub.add_parser(
        "cluster", parents=[common],
        help="replicated serving tier demo: rendezvous placement, "
             "crash/rejoin failover, hedged reads under live traffic",
    )
    p_cluster.add_argument("--storage", type=int, default=8,
                           help="storage nodes in the fleet (default 8)")
    p_cluster.add_argument("--clients", type=int, default=2,
                           help="client nodes driving traffic (default 2)")
    p_cluster.add_argument("--replicas", type=int, default=2,
                           help="replication factor R (default 2)")
    p_cluster.add_argument(
        "--crash", action="append", default=[], metavar="LANE=T1[:T2]",
        help="seeded node crash: lane index, crash time, optional rejoin "
             "time (sim seconds); repeatable",
    )
    p_cluster.add_argument("--hedge", type=float, default=0.0,
                           help="hedged-read delay in sim seconds (0 = off)")
    p_cluster.add_argument("--read-cache", type=int, default=0,
                           help="per-node read-cache chunks (default 0)")
    p_cluster.add_argument("--samples", type=int, default=8192,
                           help="dataset samples (default 8192)")
    p_cluster.add_argument("--horizon", type=float, default=0.02,
                           help="arrival window in sim seconds (default 0.02)")

    p_xform = sub.add_parser(
        "xform", parents=[common],
        help="disaggregated fetch/transform tier: pushdown placement, "
             "chunked fabric transfers, per-tier utilization",
    )
    p_xform.add_argument(
        "--stages", default="parse,augment:0.5",
        help="comma list of kind[:arg][@placement] stages — parse "
             "(arg = payload bytes), decompress (arg = ratio), augment "
             "(arg = selectivity); @storage/@worker pin a stage "
             "(default parse,augment:0.5); 'none' disables the tier",
    )
    p_xform.add_argument("--placement", default="cost",
                         choices=("cost", "storage", "worker"),
                         help="pushdown policy for auto stages (default cost)")
    p_xform.add_argument("--packed", type=float, default=1.0,
                         help="FanStore-style packed-format ratio (>= 1; "
                              "adds an unpack stage, default 1 = off)")
    p_xform.add_argument("--workers", type=int, default=2,
                         help="transform worker nodes (default 2)")
    p_xform.add_argument("--storage", type=int, default=2,
                         help="storage nodes (default 2)")
    p_xform.add_argument("--clients", type=int, default=2,
                         help="client nodes driving traffic (default 2)")
    p_xform.add_argument(
        "--crash", action="append", default=[], metavar="WORKER=T1[:T2]",
        help="seeded transform-worker crash: worker index, crash time, "
             "optional rejoin time (sim seconds); repeatable",
    )
    p_xform.add_argument("--samples", type=int, default=2048,
                         help="dataset samples (default 2048)")
    p_xform.add_argument("--size", type=int, default=64 * 1024,
                         help="sample size in bytes (default 65536)")
    p_xform.add_argument("--horizon", type=float, default=0.01,
                         help="arrival window in sim seconds (default 0.01)")

    p_scale = sub.add_parser(
        "scale", parents=[common],
        help="hybrid-fidelity fleet day: fluid bulk lanes + event-accurate "
             "tagged flows over a 1M-user diurnal workload",
    )
    p_scale.add_argument("--users", type=int, default=1_000_000,
                         help="fleet size (default 1000000)")
    p_scale.add_argument("--cohorts", type=int, default=8,
                         help="tenant cohorts (default 8)")
    p_scale.add_argument("--day", type=float, default=86400.0,
                         help="simulated day length in seconds (default 86400)")
    p_scale.add_argument("--lanes", type=int, default=8,
                         help="fluid lanes / storage paths (default 8)")
    p_scale.add_argument("--rate", type=float, default=0.02,
                         help="midline requests/s per user (default 0.02)")
    p_scale.add_argument("--size", type=int, default=262144,
                         help="sample size in bytes (default 262144)")
    p_scale.add_argument("--tagged", type=int, default=4,
                         help="event-accurate tagged flows per cohort "
                              "(default 4)")
    p_scale.add_argument("--slice-users", type=int, default=2000,
                         help="equivalence-slice fleet size (default 2000)")
    p_scale.add_argument("--slice-day", type=float, default=600.0,
                         help="equivalence-slice day length (default 600)")
    p_scale.add_argument("--no-check", dest="check", action="store_false",
                         help="skip the slice equivalence gate")

    p_scn = sub.add_parser(
        "scenario", parents=[common],
        help="scenario DSL + golden-master harness: run named traffic "
             "scenarios, record reviewed baselines, check for drift",
    )
    p_scn.add_argument("action", choices=("list", "run", "record", "check"),
                       help="list scenarios; run and print a fingerprint; "
                            "record golden masters; check against goldens")
    p_scn.add_argument("names", nargs="*",
                       help="scenario names (default: the whole pack)")
    p_scn.add_argument("--label", default="",
                       help="[record] reviewed one-line justification for "
                            "the new baseline (required)")
    p_scn.add_argument("--perturb", type=float, default=0.0,
                       help="[run/check] scale open-loop rates by "
                            "1+PERTURB — the drift self-check's injected "
                            "divergence (default 0)")
    p_scn.add_argument("--golden-root", type=pathlib.Path, default=None,
                       help="directory holding scenarios/golden/ "
                            "(default: the repo root)")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name, (_, desc) in sorted(FIGURES.items()):
            print(f"{name:<8} {desc}")
        return 0

    if args.command == "figure":
        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        result = _run_figure(args.name, args.scale)
        _emit(result, args.out, headline_only=False)
        print(f"\n[{args.name} in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0

    if args.command == "chaos":
        import dataclasses

        from .bench.workloads import dlfs_chaos
        from .errors import ConfigError
        from .faults import parse_fault_plan

        try:
            plan = parse_fault_plan(args.fault_plan)
        except ConfigError as exc:
            print(f"error: --fault-plan: {exc}", file=sys.stderr)
            return 2
        if args.seed is not None:
            plan = dataclasses.replace(plan, seed=args.seed)
        samples = 512 if args.quick else args.samples
        epochs = 1 if args.quick else args.epochs
        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        r = dlfs_chaos(
            plan,
            num_nodes=args.nodes,
            sample_bytes=args.size,
            num_samples=samples,
            epochs=epochs,
            mode=args.batching,
        )
        if not args.json:
            print(f"== chaos: {args.nodes} nodes, {epochs} epochs, "
                  f"{samples} x {args.size} B samples ==")
            print(f"plan              {plan}")
            print(f"throughput        {r.sample_throughput:,.0f} samples/s")
            print(f"delivered         {r.delivered}")
            print(f"failed            {r.failed}")
            print(f"expected          {r.expected}  "
                  f"({'accounted' if r.accounted else 'MISMATCH'})")
            print(f"sim time          {r.sim_time * 1e3:.3f} ms")
            for key, value in sorted(r.fault_counts.items()):
                print(f"injected {key:<17} {value}")
            for key, value in sorted(r.recovery.items()):
                if key == "degraded_time":
                    print(f"recovery degraded_time     {value * 1e3:.3f} ms")
                else:
                    print(f"recovery {key:<17} {value}")
        _write_json(args.out, {
            "delivered": r.delivered,
            "failed": r.failed,
            "expected": r.expected,
            "accounted": r.accounted,
            "sim_time": r.sim_time,
            "sample_throughput": r.sample_throughput,
            "fault_counts": dict(r.fault_counts),
            "recovery": dict(r.recovery),
        }, args.json)
        if not args.json:
            print(f"\n[chaos in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0 if r.accounted else 1

    if args.command == "trace":
        from .bench.workloads import dlfs_observed
        from .errors import ConfigError
        from .faults import parse_fault_plan
        from .obs import (
            render_breakdown,
            render_percentiles,
            write_chrome_trace,
            write_metrics,
        )

        try:
            plan = parse_fault_plan(args.fault_plan)
        except ConfigError as exc:
            print(f"error: --fault-plan: {exc}", file=sys.stderr)
            return 2
        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        r = dlfs_observed(
            samples=args.samples,
            sample_bytes=args.size,
            num_nodes=args.nodes,
            mode=args.batching,
            fault_plan=None if plan.is_zero else plan,
            snapshot_period=args.snapshot_period,
        )
        trace_path = write_chrome_trace(r.obs.tracer, args.out / "trace.json")
        metrics_path = write_metrics(r.obs.metrics, args.out / "metrics.json")
        tables = []
        for name in r.reactor_names:
            tables.append(
                render_breakdown(r.obs.metrics.layers(name), r.sim_time)
            )
        tables.append(render_percentiles(r.obs.metrics))
        breakdown_text = "\n\n".join(tables)
        (args.out / "breakdown.txt").write_text(breakdown_text + "\n")
        print(f"== trace: {args.nodes} node(s), {r.delivered} samples "
              f"x {args.size} B ==")
        print(f"throughput        {r.sample_throughput:,.0f} samples/s")
        print(f"sim time          {r.sim_time * 1e3:.3f} ms")
        print(f"spans             {len(r.obs.tracer.spans)}")
        if r.failed:
            print(f"failed samples    {r.failed}")
        for key, value in sorted(r.recovery.items()):
            if not value:
                continue
            if key == "degraded_time":
                print(f"recovery degraded_time     {value * 1e3:.3f} ms")
            else:
                print(f"recovery {key:<17} {value}")
        print()
        print(breakdown_text)
        print(f"\nwrote {trace_path} (load in https://ui.perfetto.dev)")
        print(f"wrote {metrics_path}")
        print(f"wrote {args.out / 'breakdown.txt'}")
        print(f"[trace in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0

    if args.command == "serve":
        from .bench.workloads import dlfs_tenancy
        from .errors import ConfigError
        from .faults import parse_fault_plan
        from .obs import render_tenants

        try:
            plan = parse_fault_plan(args.fault_plan)
        except ConfigError as exc:
            print(f"error: --fault-plan: {exc}", file=sys.stderr)
            return 2
        seed = 42 if args.seed is None else args.seed
        horizon = 0.02 if args.quick else args.horizon
        warmup = min(args.warmup, horizon / 5)
        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        r = dlfs_tenancy(
            horizon=horizon, warmup=warmup, seed=seed,
            queue_depth=args.queue_depth,
            fault_plan=None if plan.is_zero else plan,
        )
        if not args.json:
            print(f"== serve: 3 tenants, horizon {horizon * 1e3:.0f} ms, "
                  f"seed {seed} ==")
            print(f"throughput        {r.sample_throughput:,.0f} samples/s")
            print(f"delivered         {r.delivered}")
            if r.failed:
                print(f"failed            {r.failed}")
            if r.rejected_jobs:
                print(f"rejected jobs     {r.rejected_jobs}")
            print(f"sim time          {r.sim_time * 1e3:.3f} ms")
            print(f"preemptions       {r.preemptions}  "
                  f"(forced anti-starvation serves: {r.forced_serves})")
            print()
            print(render_tenants(
                r.window_rows,
                title="saturation window (arrival-horizon edge)",
                service_shares=r.service_shares,
            ))
            print()
            print(render_tenants(r.per_tenant, title="full run (after drain)"))
        _write_json(args.out, {
            "delivered": r.delivered,
            "failed": r.failed,
            "rejected_jobs": r.rejected_jobs,
            "sim_time": r.sim_time,
            "service_shares": r.service_shares,
            "preemptions": r.preemptions,
            "forced_serves": r.forced_serves,
            "window_rows": list(r.window_rows),
            "per_tenant": list(r.per_tenant),
        }, args.json)
        if not args.json:
            print(f"[serve in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0

    if args.command == "lint":
        from .analysis import RULES, lint_paths, render_findings

        if args.rules:
            from .analysis.rules import FLOW_RULES

            for rule in RULES + FLOW_RULES:
                print(f"{rule.id} [{rule.name}] {rule.summary}")
                print(f"    fix: {rule.hint}")
            return 0
        paths = args.paths or ["src/repro"]
        if not args.flow:
            findings = lint_paths(paths)
            print(render_findings(findings))
            return 1 if findings else 0

        import json

        from .analysis.simflow import (
            diff_against_baseline,
            load_baseline,
            run_simflow,
            to_sarif,
            write_baseline,
        )

        changed = args.changed
        if changed is not None and not changed:
            # Bare --changed: ask git for the modified files.
            import subprocess

            out = subprocess.run(
                ["git", "diff", "--name-only", "HEAD", "--", "*.py"],
                capture_output=True, text=True, check=False,
            ).stdout
            changed = [ln for ln in out.splitlines() if ln.strip()]
            if not changed:
                print("flow: no changed python files")
                return 0
        report = run_simflow(paths, changed=changed)
        for path, err in report.parse_errors:
            print(f"{path}: parse error: {err}", file=sys.stderr)
        if args.sarif is not None:
            args.sarif.parent.mkdir(parents=True, exist_ok=True)
            args.sarif.write_text(
                json.dumps(to_sarif(report.findings), indent=2) + "\n"
            )
            print(f"wrote {args.sarif}", file=sys.stderr)
        if args.update_baseline:
            target = args.baseline or pathlib.Path("simflow-baseline.json")
            prev = load_baseline(target)
            n = write_baseline(target, report.findings, prev)
            print(f"flow: baseline rewritten: {n} findings -> {target}")
            return 0
        baseline = load_baseline(args.baseline) if args.baseline else {}
        new, stale = diff_against_baseline(report.findings, baseline)
        for fp, f in new:
            print(f.render())
            print(f"    fingerprint: {fp}")
        known = len(report.findings) - len(new)
        print(
            f"flow: {len(report.analyzed_files)} files, "
            f"{len(report.findings)} findings "
            f"({len(new)} new, {known} baselined, "
            f"{report.suppressed} suppressed)"
        )
        if changed is None:
            # Pruned runs can't see the whole tree, so absence there
            # does not mean an entry went stale.
            for fp in stale:
                entry = baseline[fp]
                print(
                    f"flow: stale baseline entry {fp} "
                    f"({entry.get('rule')} {entry.get('path')}) — "
                    "remove it", file=sys.stderr,
                )
        return 1 if new else 0

    if args.command == "sanitize":
        import json

        from .analysis import run_sanitizer
        from .analysis.sanitizer import (
            cluster_crash_workload,
            default_workload,
            scale_hybrid_workload,
            scenario_pack_workload,
            xform_crash_workload,
        )

        scenarios = {
            "default": default_workload,
            "cluster": cluster_crash_workload,
            "xform": xform_crash_workload,
            "scale": scale_hybrid_workload,
            "scenario": scenario_pack_workload,
        }
        selected = (
            list(scenarios) if args.scenario == "all" else [args.scenario]
        )
        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        reports = {}
        for name in selected:
            reports[name] = run_sanitizer(
                workload=scenarios[name],
                runs=args.runs, base_seed=args.seed,
                progress=lambda msg, name=name: print(
                    f"  .. [{name}] {msg}", file=sys.stderr
                ),
            )
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            blob = {name: r.to_dict() for name, r in reports.items()}
            args.out.write_text(json.dumps(blob, indent=2, default=str) + "\n")
            print(f"wrote {args.out}")
        for name, report in reports.items():
            print(f"== scenario: {name} ==")
            print(report.render())
        print(f"[sanitize in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0 if all(r.ok for r in reports.values()) else 1

    if args.command == "perfcheck":
        from .analysis import run_perfcheck

        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        report = run_perfcheck(
            quick=args.quick,
            progress=lambda msg: print(f"  .. {msg}", file=sys.stderr),
        )
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(report.to_json() + "\n")
            print(f"wrote {args.out}")
        print(report.render())
        print(f"[perfcheck in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0 if report.ok else 1

    if args.command == "cluster":
        from .bench.workloads import dlfs_cluster
        from .errors import ConfigError
        from .obs import render_cluster

        try:
            crashes = tuple(_parse_crash(spec) for spec in args.crash)
        except ValueError as exc:
            print(f"error: --crash: {exc}", file=sys.stderr)
            return 2
        seed = 42 if args.seed is None else args.seed
        storage = 4 if args.quick else args.storage
        clients = 1 if args.quick else args.clients
        samples = 2048 if args.quick else args.samples
        horizon = 0.01 if args.quick else args.horizon
        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        try:
            r = dlfs_cluster(
                num_storage=storage, num_clients=clients,
                replicas=args.replicas, num_samples=samples,
                horizon=horizon, seed=seed, node_crashes=crashes,
                hedge_delay=args.hedge, read_cache_chunks=args.read_cache,
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            print(f"== cluster: {storage} storage nodes, {clients} "
                  f"client(s), R={args.replicas}, horizon "
                  f"{horizon * 1e3:.0f} ms, seed {seed} ==")
            print(f"throughput        {r.sample_throughput:,.0f} samples/s")
            print(f"delivered         {r.delivered}")
            if r.failed:
                print(f"failed            {r.failed}")
            print(f"jobs              {r.jobs}")
            print(f"sim time          {r.sim_time * 1e3:.3f} ms")
            print()
            print(render_cluster(
                r.balancer.get("routed", {}), r.recovery, r.lifecycle,
            ))
            if r.per_tenant:
                from .obs import render_tenants

                print()
                print(render_tenants(
                    r.per_tenant, title="per-tenant (merged)"
                ))
        _write_json(args.out, {
            "storage": storage,
            "clients": clients,
            "replicas": args.replicas,
            "delivered": r.delivered,
            "failed": r.failed,
            "jobs": r.jobs,
            "sim_time": r.sim_time,
            "sample_throughput": r.sample_throughput,
            "balancer": r.balancer,
            "recovery": r.recovery,
            "lifecycle": r.lifecycle,
            "per_tenant": list(r.per_tenant),
        }, args.json)
        if not args.json:
            print(f"[cluster in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0

    if args.command == "xform":
        from .bench.workloads import dlfs_xform
        from .errors import ConfigError
        from .obs import render_tenants, render_xform
        from .xform import XformSpec, parse_stages

        try:
            crashes = tuple(_parse_crash(spec) for spec in args.crash)
        except ValueError as exc:
            print(f"error: --crash: {exc}", file=sys.stderr)
            return 2
        seed = 42 if args.seed is None else args.seed
        samples = 1024 if args.quick else args.samples
        horizon = 0.005 if args.quick else args.horizon
        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        try:
            stages = (
                () if args.stages.strip() in ("", "none")
                else parse_stages(args.stages)
            )
            spec = (
                XformSpec(
                    stages=stages, workers=args.workers,
                    placement=args.placement, packed_ratio=args.packed,
                )
                if stages else None
            )
            r = dlfs_xform(
                num_storage=args.storage, num_clients=args.clients,
                num_samples=samples, sample_bytes=args.size,
                horizon=horizon, seed=seed, spec=spec,
                xform_crashes=crashes,
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            print(f"== xform: {args.storage} storage + "
                  f"{args.workers if spec else 0} transform nodes, "
                  f"{args.clients} client(s), stages '{args.stages}', "
                  f"placement {args.placement}, horizon "
                  f"{horizon * 1e3:.0f} ms, seed {seed} ==")
            print(f"throughput        {r.sample_throughput:,.0f} samples/s")
            print(f"delivered         {r.delivered}")
            if r.failed:
                print(f"failed            {r.failed}")
            print(f"jobs              {r.jobs}")
            print(f"sim time          {r.sim_time * 1e3:.3f} ms")
            print()
            print(render_xform(r.tier, r.utilization, r.links, r.routed))
            if r.per_tenant:
                print()
                print(render_tenants(
                    r.per_tenant, title="per-tenant (merged)"
                ))
        _write_json(args.out, {
            "storage": args.storage,
            "workers": args.workers if spec else 0,
            "clients": args.clients,
            "stages": args.stages,
            "placement": args.placement,
            "packed": args.packed,
            "delivered": r.delivered,
            "failed": r.failed,
            "jobs": r.jobs,
            "sim_time": r.sim_time,
            "sample_throughput": r.sample_throughput,
            "tier": r.tier,
            "links": list(r.links),
            "utilization": list(r.utilization),
            "routed": r.routed,
            "per_tenant": list(r.per_tenant),
        }, args.json)
        if not args.json:
            print(f"[xform in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0

    if args.command == "scale":
        import dataclasses

        from .errors import ConfigError
        from .sim.fluid import ScaleSpec, equivalence_check, run_scale

        def say(*a, **k):
            if not args.json:
                print(*a, **k)

        users = 50_000 if args.quick else args.users
        day = 7200.0 if args.quick else args.day
        spec = ScaleSpec(
            users=users, cohorts=args.cohorts, day=day, lanes=args.lanes,
            rate_per_user=args.rate, sample_bytes=args.size,
            tagged_per_cohort=args.tagged,
            seed=42 if args.seed is None else args.seed,
        )
        try:
            spec.validate()
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        say(f"== scale: {spec.users:,} users, {spec.cohorts} cohorts, "
            f"{spec.lanes} lanes, {spec.day:,.0f} s day, "
            f"seed {spec.seed} ==")
        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        hybrid = run_scale(spec, mode="hybrid")
        hybrid_wall = time.time() - t0  # simlint: disable=SL101 -- CLI progress timing, not sim state
        total_requests = hybrid.bulk_requests + len(hybrid.tagged)
        say(f"hybrid wall       {hybrid_wall:.2f} s")
        say(f"events scheduled  {hybrid.events_scheduled:,}")
        say(f"bulk requests     {hybrid.bulk_requests:,} "
            f"({hybrid.bulk_bytes / 1e12:.2f} TB)")
        say(f"events elided     {hybrid.elide_ratio:.4f} of bulk requests")
        pct = hybrid.tagged_percentiles()
        if pct.get("count"):
            say(f"tagged flows      {pct['count']:,} requests | "
                f"p50 {pct['p50'] * 1e3:.3f} ms  "
                f"p90 {pct['p90'] * 1e3:.3f} ms  "
                f"p99 {pct['p99'] * 1e3:.3f} ms  "
                f"p999 {pct['p999'] * 1e3:.3f} ms")
            say(f"SLO violations    {pct['slo_violations']:,} "
                f"(bound {spec.slo * 1e3:.1f} ms)")
        # Extrapolate the all-event cost from a downscaled slice: measure
        # its event throughput, scale by the full run's request count.
        slice_spec = spec.sliced(
            min(args.slice_users, spec.users),
            min(args.slice_day, spec.day),
        )
        t1 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
        ev = run_scale(slice_spec, mode="event")
        slice_wall = max(time.time() - t1, 1e-9)  # simlint: disable=SL101 -- CLI progress timing, not sim state
        ev_requests = ev.bulk_requests + len(ev.tagged)
        events_per_req = ev.events_scheduled / max(ev_requests, 1)
        events_per_s = ev.events_scheduled / slice_wall
        est_event_wall = events_per_req * total_requests / events_per_s
        speedup = est_event_wall / max(hybrid_wall, 1e-9)
        say(f"slice (all-event) {slice_spec.users:,} users / "
            f"{slice_spec.day:,.0f} s: {ev.events_scheduled:,} events "
            f"in {slice_wall:.2f} s")
        say(f"extrapolated all-event wall  {est_event_wall:,.0f} s")
        say(f"speedup vs all-event         {speedup:,.0f}x")
        check = None
        if args.check:
            t2 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
            check = equivalence_check(slice_spec)
            verdict = "PASS" if check["ok"] else "FAIL"
            say(f"equivalence gate  {verdict} "
                f"(order {check['order_digest'][:12]}, "
                f"latency {check['latency_digest'][:12]}, "
                f"eps {check['epsilon']:g})")
            for f in check["failures"]:
                say(f"  FAIL: {f}")
            say(f"[equivalence in {time.time() - t2:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        ok = (check is None or check["ok"]) and speedup >= 20.0
        _write_json(args.out, {
            "ok": ok,
            "spec": dataclasses.asdict(spec),
            "hybrid": hybrid.summary(),
            "hybrid_wall_s": hybrid_wall,
            "slice": {
                "users": slice_spec.users,
                "day": slice_spec.day,
                "events": ev.events_scheduled,
                "wall_s": slice_wall,
                "events_per_s": events_per_s,
                "events_per_request": events_per_req,
            },
            "extrapolated_event_wall_s": est_event_wall,
            "speedup": speedup,
            "equivalence": check,
        }, args.json)
        say(f"[scale in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0 if ok else 1

    if args.command == "scenario":
        from .errors import ConfigError
        from .scenarios import (
            SCENARIOS,
            compare_fingerprints,
            fingerprint_digest,
            get_scenario,
            golden_path,
            load_golden,
            render_drifts,
            run_scenario,
            write_golden,
        )

        root = (
            str(args.golden_root) if args.golden_root is not None else None
        )
        try:
            names = list(args.names) if args.names else sorted(SCENARIOS)
            scns = [get_scenario(n) for n in names]
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

        if args.action == "list":
            rows = []
            for scn in scns:
                has_golden = pathlib.Path(golden_path(scn.name, root)).exists()
                rows.append({
                    "name": scn.name,
                    "engine": scn.engine,
                    "title": scn.title,
                    "tenants": len(scn.tenants),
                    "phases": [p.name for p in scn.phases],
                    "events": len(scn.events),
                    "golden": has_golden,
                })
            if not args.json:
                for row in rows:
                    mark = "golden" if row["golden"] else "no golden"
                    print(f"{row['name']:<18} {row['engine']:<8} "
                          f"[{mark:<9}] {row['title']}")
            _write_json(args.out, rows, args.json)
            return 0

        t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state

        if args.action == "run":
            blob = {}
            for scn in scns:
                fp = run_scenario(
                    scn, quick=args.quick, seed=args.seed,
                    perturb=args.perturb,
                )
                blob[scn.name] = fp
                if not args.json:
                    print(f"{scn.name:<18} [{fp['mode']}] "
                          f"digest {fingerprint_digest(fp)[:16]}  "
                          f"sim_time {fp['sim_time']:.6g} s")
            _write_json(args.out, blob, args.json)
            if not args.json:
                print(f"[scenario run in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
            return 0

        if args.action == "record":
            try:
                for scn in scns:
                    recorded = {}
                    for mode in ("quick", "full"):
                        recorded[mode] = run_scenario(
                            scn, quick=(mode == "quick"), seed=args.seed,
                        )
                    path = write_golden(scn.name, args.label, recorded, root)
                    if not args.json:
                        print(f"recorded {scn.name} -> {path}")
            except ConfigError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if not args.json:
                print(f"[scenario record in {time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
            return 0

        # check: rerun and diff against the committed goldens.
        report: dict = {}
        failures = 0
        for scn in scns:
            try:
                doc = load_golden(scn.name, root)
            except ConfigError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            modes = ("quick",) if args.quick else ("quick", "full")
            for mode in modes:
                golden = doc["recorded"].get(mode)
                if golden is None:
                    print(f"error: golden for {scn.name!r} has no "
                          f"{mode!r} fingerprint — re-record it",
                          file=sys.stderr)
                    return 2
                fp = run_scenario(
                    scn, quick=(mode == "quick"), seed=args.seed,
                    perturb=args.perturb,
                )
                drifts = compare_fingerprints(golden, fp)
                if drifts:
                    failures += 1
                if not args.json:
                    print(render_drifts(
                        scn.name, mode, drifts,
                        label=doc.get("label", ""),
                    ))
                report.setdefault(scn.name, {})[mode] = {
                    "ok": not drifts,
                    "label": doc.get("label", ""),
                    "drifts": [d.as_dict() for d in drifts],
                }
        _write_json(args.out, report, args.json)
        if not args.json:
            verdict = "FAIL" if failures else "PASS"
            print(f"scenario check: {verdict} "
                  f"({len(scns)} scenario(s), {failures} drifted run(s)) "
                  f"[{time.time() - t0:.1f}s]")  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 1 if failures else 0

    if args.command in ("all", "claims"):
        headline_only = args.command == "claims"
        out = getattr(args, "out", None)
        for name in sorted(FIGURES):
            t0 = time.time()  # simlint: disable=SL101 -- CLI progress timing, not sim state
            result = _run_figure(name, args.scale)
            _emit(result, out, headline_only=headline_only)
            print(f"[{name} in {time.time() - t0:.1f}s]", file=sys.stderr)  # simlint: disable=SL101 -- CLI progress timing, not sim state
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
