"""Deterministic fault injection for the simulated DLFS datapath.

The subsystem has two halves:

* :class:`FaultPlan` + :class:`FaultInjector` — *what goes wrong*:
  seeded per-site fault decisions (NVMe media errors, latency hiccups,
  wedged commands, fabric drops, forced qpair resets) with a
  reproducible event trace.
* :class:`RecoveryPolicy` — *how the client survives it*: per-request
  deadlines, capped exponential backoff with seeded jitter, a bounded
  retry budget, qpair reset/reconnect/requeue, and per-sample graceful
  degradation (:class:`repro.errors.SampleReadError`).

Install a plan through ``DLFSConfig(fault_plan=...)`` (the mount wires
the injector into every device, target, and reactor) or drive the hooks
directly for component-level chaos tests.
"""

from .injector import FaultEvent, FaultInjector
from .plan import ZERO_PLAN, FaultPlan, RecoveryPolicy, parse_fault_plan

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "RecoveryPolicy",
    "parse_fault_plan",
    "ZERO_PLAN",
]
