"""The deterministic fault injector.

One :class:`FaultInjector` is shared by every component of a simulated
testbed (NVMe devices, the fabric, NVMe-oF targets, reactors).  Each
*fault site* — e.g. ``nvme.nvme0.media`` or ``link.c0->s1`` — draws from
its own RNG substream derived from ``(plan.seed, site name)``, so the
decision sequence at one site never depends on what other sites did or
on the order in which components were wired up.  Same plan + same
workload => bit-identical fault event trace.

Components hold the injector behind an ``injector`` attribute that
defaults to ``None``; with no injector installed (or a zero-rate site)
they take their original fast path and consume no randomness, keeping
fault machinery strictly pay-for-use.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sim.rng import rng as sim_rng
from ..sim.stats import Counter
from .plan import FaultPlan

__all__ = ["FaultInjector", "FaultEvent"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the injector's trace."""

    time: float
    site: str
    kind: str


class FaultInjector:
    """Seeded per-site fault decisions plus a reproducible event trace."""

    def __init__(self, plan: FaultPlan) -> None:
        plan.validate()
        self.plan = plan
        self.trace: list[FaultEvent] = []
        self.counts = Counter()
        self._streams: dict[str, np.random.Generator] = {}
        self._tenant_rates: dict[str, float] = dict(plan.tenant_faults)

    # -- substreams ---------------------------------------------------------
    def _stream(self, site: str) -> np.random.Generator:
        rng = self._streams.get(site)
        if rng is None:
            rng = sim_rng(
                f"fault.{site}", [self.plan.seed, zlib.crc32(site.encode())]
            )
            self._streams[site] = rng
        return rng

    def _roll(self, site: str, rate: float) -> bool:
        if rate <= 0.0:
            return False  # zero-rate sites consume no randomness
        return bool(self._stream(site).random() < rate)

    def record(self, now: float, site: str, kind: str) -> None:
        self.trace.append(FaultEvent(now, site, kind))
        self.counts.incr(kind)

    # -- NVMe device sites --------------------------------------------------------
    def nvme_fault(self, device: str, now: float) -> Optional[tuple[str, float]]:
        """Fault decision for one NVMe command on ``device``.

        Returns ``None`` (healthy) or ``(kind, extra_delay)`` where kind
        is ``media_error`` (fails, no data), ``timeout`` (wedges for
        ``extra_delay`` seconds before completing TIMEOUT), or
        ``hiccup`` (completes OK after ``extra_delay`` extra latency).
        """
        p = self.plan
        if self._roll(f"nvme.{device}.media", p.media_error_rate):
            self.record(now, f"nvme.{device}", "media_error")
            return ("media_error", 0.0)
        if self._roll(f"nvme.{device}.timeout", p.timeout_rate):
            self.record(now, f"nvme.{device}", "timeout")
            return ("timeout", p.timeout_stall)
        if self._roll(f"nvme.{device}.hiccup", p.hiccup_rate):
            self.record(now, f"nvme.{device}", "hiccup")
            return ("hiccup", p.hiccup_duration)
        return None

    # -- fabric sites -------------------------------------------------------------
    def link_fault(self, src: str, dst: str, now: float) -> Optional[float]:
        """Stall (seconds) for one transfer on ``src->dst``, or ``None``."""
        if self._roll(f"link.{src}->{dst}", self.plan.link_drop_rate):
            self.record(now, f"link.{src}->{dst}", "link_drop")
            return self.plan.link_stall
        return None

    def nvmf_fault(self, target: str, now: float) -> Optional[float]:
        """Capsule-loss stall at an NVMe-oF target front-end, or ``None``."""
        if self._roll(f"nvmf.{target}.drop", self.plan.nvmf_drop_rate):
            self.record(now, f"nvmf.{target}", "nvmf_drop")
            return self.plan.link_stall
        return None

    # -- tenant-keyed sites ---------------------------------------------------------
    @property
    def has_tenant_faults(self) -> bool:
        return any(rate > 0.0 for rate in self._tenant_rates.values())

    def tenant_fault(self, tenant: Optional[str], now: float) -> bool:
        """Extra media-error roll for one completion of ``tenant``'s span.

        Tenants absent from the plan (and untagged spans) consume no
        randomness, so targeting one tenant perturbs nothing else.
        """
        if tenant is None:
            return False
        rate = self._tenant_rates.get(tenant, 0.0)
        if self._roll(f"tenant.{tenant}.media", rate):
            self.record(now, f"tenant.{tenant}", "tenant_media_error")
            return True
        return False

    # -- forced qpair resets --------------------------------------------------------
    @property
    def resets_enabled(self) -> bool:
        return self.plan.qpair_reset_period > 0.0

    def next_reset_delay(self, qpair: str) -> float:
        """Delay until the next forced reset of ``qpair`` (jittered period)."""
        p = self.plan
        jitter = p.qpair_reset_jitter * self._stream(f"reset.{qpair}").random()
        return p.qpair_reset_period * (1.0 + jitter)

    # -- reporting -------------------------------------------------------------------
    def trace_signature(self) -> list[tuple[float, str, str]]:
        """Hashable view of the trace, for determinism checks."""
        return [(e.time, e.site, e.kind) for e in self.trace]

    def __repr__(self) -> str:
        return f"<FaultInjector events={len(self.trace)} {self.counts.as_dict()!r}>"
