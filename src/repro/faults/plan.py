"""Fault plans and recovery policies.

A :class:`FaultPlan` is a declarative, fully-seeded description of the
faults to inject into one simulation run: per-command probabilities for
NVMe media errors, latency hiccups, and command stalls; per-transfer
probabilities for fabric drops; and a period for forced qpair resets.
Because every random draw flows from ``plan.seed`` through per-site
substreams (see :class:`repro.faults.FaultInjector`), a chaos run is
exactly reproducible: same plan, same workload, same event trace.

A :class:`RecoveryPolicy` is the client-side counterpart: how the DLFS
reactor detects and survives those faults (deadlines, capped exponential
backoff with seeded jitter, a bounded retry budget, reconnect pacing).

``parse_fault_plan`` turns the CLI's ``--fault-plan`` argument — either
a ``key=value,key=value`` string or a path to a JSON file — into a plan.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, fields, replace

from ..errors import ConfigError

__all__ = ["FaultPlan", "RecoveryPolicy", "parse_fault_plan", "ZERO_PLAN"]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of every fault site's behaviour."""

    #: Root seed; every fault site derives an independent substream.
    seed: int = 0

    # -- NVMe device fault sites (per command) ------------------------------
    #: P(read completes with an unrecoverable media error).
    media_error_rate: float = 0.0
    #: P(command pays an extra media-latency spike — a "hiccup").
    hiccup_rate: float = 0.0
    #: Extra latency of one hiccup, seconds.
    hiccup_duration: float = 2e-3
    #: P(command wedges in the controller far past any sane deadline).
    timeout_rate: float = 0.0
    #: How long a wedged command takes before surfacing TIMEOUT, seconds.
    timeout_stall: float = 50e-3

    # -- fabric / NVMe-oF fault sites ----------------------------------------
    #: P(one fabric transfer is dropped and must be re-driven: a stall).
    link_drop_rate: float = 0.0
    #: Stall paid when a transfer or capsule is dropped, seconds.
    link_stall: float = 5e-3
    #: P(an NVMe-oF command capsule is lost at the target front-end).
    nvmf_drop_rate: float = 0.0

    # -- forced qpair resets ---------------------------------------------------
    #: Mean period between forced per-qpair resets, seconds (0 = never).
    qpair_reset_period: float = 0.0
    #: Uniform jitter fraction applied to each reset period.
    qpair_reset_jitter: float = 0.25

    # -- tenant-keyed faults ----------------------------------------------------
    #: Per-tenant media-error rates, as ``((tenant, rate), ...)``: each
    #: completion delivered for that tenant's spans rolls an extra
    #: media-error chance from a per-tenant substream.  Lets chaos runs
    #: target one tenant and check its retries cannot starve a neighbor.
    tenant_faults: tuple = ()

    # -- node crash/rejoin schedule (cluster serving tier) ---------------------
    #: Deterministic node-failure lifecycle, as
    #: ``((node_index, crash_time, rejoin_time), ...)``; ``rejoin_time``
    #: may be ``None`` for a crash the node never comes back from.
    #: Driven by :class:`repro.cluster.ClusterLifecycle` under a
    #: replicated :class:`~repro.core.DLFSConfig` (``config.cluster``).
    node_crashes: tuple = ()

    # -- transform-worker crash/rejoin schedule (xform tier) -------------------
    #: Deterministic transform-worker failures, as
    #: ``((worker_index, crash_time, rejoin_time), ...)``; a crashed
    #: worker loses its queued and in-service tasks (re-dispatched to
    #: surviving lanes) and ``rejoin_time`` may be ``None``.  Driven by
    #: :class:`repro.xform.XformTier` when a transform tier is built.
    xform_crashes: tuple = ()

    def __post_init__(self) -> None:
        # Up-front validation: a bad plan fails at construction with a
        # one-line ConfigError, never minutes into a chaos run.
        self.validate()

    def validate(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in ("seed", "tenant_faults", "node_crashes",
                          "xform_crashes"):
                continue
            if not math.isfinite(value):
                raise ConfigError(f"fault plan field {f.name} must be finite")
            if value < 0:
                raise ConfigError(f"fault plan field {f.name} must be >= 0")
        for entry in self.node_crashes:
            if len(entry) != 3:
                raise ConfigError(
                    "node_crashes entries must be (node, crash_time, rejoin_time)"
                )
            node, crash_time, rejoin_time = entry
            if not isinstance(node, int) or node < 0:
                raise ConfigError(
                    f"node_crashes node index must be an int >= 0, got {node!r}"
                )
            if not math.isfinite(crash_time) or crash_time < 0:
                raise ConfigError(
                    f"node_crashes crash_time for node {node} must be >= 0, "
                    f"got {crash_time!r}"
                )
            if rejoin_time is not None and (
                not math.isfinite(rejoin_time) or rejoin_time <= crash_time
            ):
                raise ConfigError(
                    f"node_crashes rejoin_time for node {node} must be "
                    f"> crash_time {crash_time}, got {rejoin_time!r}"
                )
        for entry in self.xform_crashes:
            if len(entry) != 3:
                raise ConfigError(
                    "xform_crashes entries must be (worker, crash_time, rejoin_time)"
                )
            worker, crash_time, rejoin_time = entry
            if not isinstance(worker, int) or worker < 0:
                raise ConfigError(
                    f"xform_crashes worker index must be an int >= 0, got {worker!r}"
                )
            if not math.isfinite(crash_time) or crash_time < 0:
                raise ConfigError(
                    f"xform_crashes crash_time for worker {worker} must be >= 0, "
                    f"got {crash_time!r}"
                )
            if rejoin_time is not None and (
                not math.isfinite(rejoin_time) or rejoin_time <= crash_time
            ):
                raise ConfigError(
                    f"xform_crashes rejoin_time for worker {worker} must be "
                    f"> crash_time {crash_time}, got {rejoin_time!r}"
                )
        for entry in self.tenant_faults:
            if len(entry) != 2:
                raise ConfigError("tenant_faults entries must be (tenant, rate)")
            tenant, rate = entry
            if not tenant:
                raise ConfigError("tenant_faults tenant name must be non-empty")
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"tenant_faults rate for {tenant!r} is a probability; got {rate}"
                )
        for rate in ("media_error_rate", "hiccup_rate", "timeout_rate",
                     "link_drop_rate", "nvmf_drop_rate"):
            if getattr(self, rate) > 1.0:
                raise ConfigError(f"{rate} is a probability; got {getattr(self, rate)}")

    @property
    def is_zero(self) -> bool:
        """True when the plan can never inject anything (pay-for-use)."""
        return (
            self.media_error_rate == 0.0
            and self.hiccup_rate == 0.0
            and self.timeout_rate == 0.0
            and self.link_drop_rate == 0.0
            and self.nvmf_drop_rate == 0.0
            and self.qpair_reset_period == 0.0
            and not any(rate > 0.0 for _tenant, rate in self.tenant_faults)
            and not self.node_crashes
            and not self.xform_crashes
        )


#: The no-op plan: machinery installed, nothing ever injected.
ZERO_PLAN = FaultPlan()


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a DLFS reactor detects faults and drives itself back healthy."""

    #: Per-request completion deadline, seconds; a miss resets the qpair.
    deadline: float = 20e-3
    #: Fault-retry budget per request (media errors / stalled commands).
    max_retries: int = 4
    #: First retry backoff, seconds; doubles per retry up to ``backoff_cap``.
    backoff_base: float = 0.5e-3
    backoff_cap: float = 8e-3
    #: Jitter fraction added to each backoff (seeded, deterministic).
    jitter: float = 0.25
    #: Delay before a reset qpair reconnects and requeued I/O reposts.
    reconnect_delay: float = 1e-3
    #: Jitter stream seed (combined with the reactor name).
    seed: int = 0

    def validate(self) -> None:
        if self.deadline <= 0 or self.reconnect_delay < 0:
            raise ConfigError("deadline must be > 0, reconnect_delay >= 0")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ConfigError("need 0 <= backoff_base <= backoff_cap")
        if self.jitter < 0:
            raise ConfigError("jitter must be >= 0")

    def backoff(self, retry: int) -> float:
        """Capped exponential backoff for the ``retry``-th attempt (1-based)."""
        if retry < 1:
            raise ConfigError(f"retry numbers are 1-based; got {retry}")
        return min(self.backoff_cap, self.backoff_base * 2.0 ** (retry - 1))


#: Short CLI aliases accepted by ``parse_fault_plan``.
_ALIASES = {
    "media": "media_error_rate",
    "hiccup": "hiccup_rate",
    "timeout": "timeout_rate",
    "drop": "link_drop_rate",
    "nvmf_drop": "nvmf_drop_rate",
    "reset_period": "qpair_reset_period",
    "reset_jitter": "qpair_reset_jitter",
}


def parse_fault_plan(text: str) -> FaultPlan:
    """Build a :class:`FaultPlan` from a CLI argument.

    Accepts an inline JSON object, a path to a JSON file, or an inline
    spec like ``"media=0.01,reset_period=0.05,seed=7"`` (full field
    names and the short aliases above both work).  ``"zero"``/``""``
    gives the no-op plan.
    """
    text = text.strip()
    if text in ("", "zero", "none"):
        return ZERO_PLAN
    if text.startswith("{"):
        raw = json.loads(text)
        if not isinstance(raw, dict):
            raise ConfigError("inline fault plan must be a JSON object")
        items = raw.items()
    elif text.endswith(".json") or os.path.exists(text):
        with open(text) as fh:
            raw = json.load(fh)
        if not isinstance(raw, dict):
            raise ConfigError(f"fault plan file {text!r} must hold a JSON object")
        items = raw.items()
    else:
        items = []
        for pair in text.split(","):
            if not pair.strip():
                continue
            if "=" not in pair:
                raise ConfigError(
                    f"bad fault-plan entry {pair!r} (expected key=value)"
                )
            key, value = pair.split("=", 1)
            items.append((key.strip(), value.strip()))

    valid = {f.name for f in fields(FaultPlan)}
    updates = {}
    tenant_faults = []
    node_crashes = []
    xform_crashes = []
    def _number(key, value, cast=float):
        try:
            return cast(value)
        except (TypeError, ValueError):
            raise ConfigError(
                f"bad fault-plan value for {key!r}: {value!r}"
            ) from None

    def _crash(key, node, value, into=node_crashes):
        # Inline crash schedule: "crash.3=0.01:0.03" (crash:rejoin) or
        # "crash.3=0.01" (never rejoins); "xcrash.N=..." targets
        # transform workers the same way.
        parts = str(value).split(":")
        if len(parts) not in (1, 2):
            raise ConfigError(
                f"bad fault-plan entry {key!r}: expected crash[:rejoin] times"
            )
        crash_time = _number(key, parts[0])
        rejoin_time = _number(key, parts[1]) if len(parts) == 2 else None
        into.append((node, crash_time, rejoin_time))

    for key, value in items:
        if key.startswith("tenant."):
            # Inline tenant-keyed media rate: "tenant.alice=0.02".
            tenant = key[len("tenant."):].strip()
            if not tenant:
                raise ConfigError(f"bad fault-plan entry {key!r}: empty tenant name")
            tenant_faults.append((tenant, _number(key, value)))
            continue
        if key.startswith("crash."):
            _crash(key, _number(key, key[len("crash."):].strip(), int), value)
            continue
        if key.startswith("xcrash."):
            _crash(key, _number(key, key[len("xcrash."):].strip(), int),
                   value, into=xform_crashes)
            continue
        name = _ALIASES.get(key, key)
        if name not in valid:
            raise ConfigError(f"unknown fault-plan field {key!r}")
        if name == "tenant_faults":
            # JSON form: {"tenant_faults": {"alice": 0.02}} or pair list.
            pairs = value.items() if isinstance(value, dict) else value
            tenant_faults.extend((t, _number(t, r)) for t, r in pairs)
            continue
        if name in ("node_crashes", "xform_crashes"):
            # JSON form: {"node_crashes": [[3, 0.01, 0.03], [5, 0.02, null]]}
            # (same shape for xform_crashes, indexing transform workers).
            into = node_crashes if name == "node_crashes" else xform_crashes
            for entry in value:
                if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                    raise ConfigError(
                        f"{name} entries must be [index, crash, rejoin|null]"
                    )
                node, crash_time, rejoin_time = entry
                into.append((
                    _number(name, node, int),
                    _number(name, crash_time),
                    None if rejoin_time is None
                    else _number(name, rejoin_time),
                ))
            continue
        updates[name] = _number(key, value, int if name == "seed" else float)
    if tenant_faults:
        updates["tenant_faults"] = tuple(tenant_faults)
    if node_crashes:
        updates["node_crashes"] = tuple(node_crashes)
    if xform_crashes:
        updates["xform_crashes"] = tuple(xform_crashes)
    # Construction validates (FaultPlan.__post_init__).
    return replace(FaultPlan(), **updates)
