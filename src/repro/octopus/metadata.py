"""Octopus distributed metadata service.

Octopus (Lu et al., ATC'17) hash-partitions its namespace across server
nodes; every file lookup is an RPC to the owning node.  The DLFS paper
attributes Octopus's losses to exactly this: "frequent inter-node
communication for sample lookup" (§IV-B1) and a serialized metadata
service that cannot exploit added nodes linearly (Fig 10).  The model
keeps both structural properties: ownership by path hash, and a
capacity-1 metadata processor per server.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..cluster import Cluster
from ..errors import ConfigError, FileNotFound
from ..hw.platform import USEC
from ..sim import Event, Resource, Tally

__all__ = ["OctopusSpec", "FileMeta", "DistributedMetadata"]


@dataclass(frozen=True)
class OctopusSpec:
    """Calibration constants for the Octopus client/metadata path."""

    #: Client-library dispatch per operation (request marshalling,
    #: completion handling).
    client_overhead: float = 2.0 * USEC
    #: Server-side metadata service per lookup (hash bucket walk, inode
    #: read from persistent memory, permission check) — serialized per
    #: server.  Octopus metadata involves several dependent PM reads.
    metadata_service_time: float = 38.0 * USEC
    #: Wire size of a lookup request / reply.
    lookup_msg_bytes: int = 64
    #: Extra round trips in the lookup protocol beyond the main RPC
    #: (Octopus resolves directory entry and inode separately).
    extra_round_trips: int = 2
    #: Ablation knob: pretend the metadata were replicated on every
    #: node (DLFS-style), turning each lookup into a local table probe —
    #: isolates how much of Octopus's loss is metadata locality.
    replicated: bool = False
    #: Delay injected on every data access so remote memory behaves like
    #: an NVMe device — the paper's own emulation method (§IV): the
    #: device's media latency, without a flash bandwidth pipe (payload
    #: streams at fabric speed).
    emulated_nvme_delay: float = 10.0 * USEC

    def validate(self) -> None:
        if self.client_overhead < 0 or self.metadata_service_time < 0:
            raise ConfigError("Octopus overheads must be >= 0")
        if self.lookup_msg_bytes < 1:
            raise ConfigError("lookup_msg_bytes must be >= 1")
        if self.extra_round_trips < 0:
            raise ConfigError("extra_round_trips must be >= 0")


@dataclass(frozen=True)
class FileMeta:
    """Resolved location of one file's data."""

    path: str
    data_node: int
    offset: int
    length: int


class DistributedMetadata:
    """Hash-partitioned metadata over all nodes of a cluster."""

    def __init__(self, cluster: Cluster, spec: Optional[OctopusSpec] = None) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.spec = spec or OctopusSpec()
        self.spec.validate()
        self.num_servers = len(cluster)
        self._tables: list[dict[str, FileMeta]] = [
            {} for _ in range(self.num_servers)
        ]
        self._service = [
            Resource(cluster.env, capacity=1, name=f"octopus.md{n}")
            for n in range(self.num_servers)
        ]
        self.lookup_latency = Tally("octopus.lookup_latency")
        self.remote_lookups = 0
        self.local_lookups = 0

    # -- placement ----------------------------------------------------------
    def owner_of(self, path: str) -> int:
        """Which server owns the metadata of ``path``."""
        return zlib.crc32(path.encode()) % self.num_servers

    def insert(self, meta: FileMeta) -> None:
        """Populate (mount-time; not a timed operation)."""
        self._tables[self.owner_of(meta.path)][meta.path] = meta

    @property
    def num_files(self) -> int:
        return sum(len(t) for t in self._tables)

    # -- timed lookup --------------------------------------------------------
    def lookup(
        self, client_rank: int, path: str
    ) -> Generator[Event, Any, FileMeta]:
        """Resolve ``path`` from ``client_rank`` (process helper).

        Pays the client dispatch, the RPC to the owner (plus the extra
        protocol round trips), and the serialized server-side service.
        """
        t0 = self.env.now
        spec = self.spec
        owner = self.owner_of(path)
        meta = self._tables[owner].get(path)
        if meta is None:
            raise FileNotFound(path)
        yield self.env.timeout(spec.client_overhead)
        if spec.replicated:
            # Ablation: replicated metadata -> a local hash probe.
            self.local_lookups += 1
            yield self.env.timeout(1e-6)
            self.lookup_latency.observe(self.env.now - t0)
            return meta
        fabric = self.cluster.fabric
        client = self.cluster.node(client_rank).name
        server = self.cluster.node(owner).name
        if owner == client_rank:
            self.local_lookups += 1
        else:
            self.remote_lookups += 1

        def served() -> Generator[Event, Any, None]:
            yield from self._service[owner].hold(spec.metadata_service_time)

        # Preliminary round trips (directory entry, then inode).
        for _ in range(spec.extra_round_trips):
            yield from fabric.rpc(
                client, server, spec.lookup_msg_bytes, spec.lookup_msg_bytes
            )
        # Main lookup RPC with serialized server-side work.
        yield from fabric.rpc(
            client,
            server,
            spec.lookup_msg_bytes,
            spec.lookup_msg_bytes,
            server_work=served,
        )
        self.lookup_latency.observe(self.env.now - t0)
        return meta

    def __repr__(self) -> str:
        return (
            f"<DistributedMetadata servers={self.num_servers} "
            f"files={self.num_files}>"
        )
