"""Octopus baseline: RDMA distributed FS with hash-partitioned metadata."""

from .fs import OctopusFS
from .metadata import DistributedMetadata, FileMeta, OctopusSpec

__all__ = ["OctopusFS", "DistributedMetadata", "FileMeta", "OctopusSpec"]
