"""Octopus-style RDMA distributed file system client.

The comparison target of §IV: a general-purpose distributed FS over
RDMA with memory emulating NVMe devices (delay injected on data access,
exactly the paper's methodology).  Reads are synchronous and per-file:

    lookup (RPC to metadata owner)  ->  one-sided RDMA data read
    (+ emulated NVMe delay at the data node)  ->  done.

RDMA lands data directly in the client buffer (no extra copy — the
reason Octopus beats Ext4 on small samples in Fig 8), but there is no
sample batching and every lookup crosses the fabric, which is why DLFS
wins everywhere.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from ..cluster import Cluster
from ..data import Dataset, DatasetLayout
from ..errors import NotMounted
from ..sim import Event, Tally, ThroughputMeter
from ..spdk.request import aligned_span
from .metadata import DistributedMetadata, FileMeta, OctopusSpec

__all__ = ["OctopusFS"]


class OctopusFS:
    """One Octopus namespace spanning a cluster (data on every node)."""

    def __init__(self, cluster: Cluster, spec: Optional[OctopusSpec] = None) -> None:
        # Data lives in each node's (persistent) memory; the injected
        # delay in the spec emulates NVMe, so no block devices are
        # required — matching the paper's Octopus configuration.
        self.cluster = cluster
        self.env = cluster.env
        self.metadata = DistributedMetadata(cluster, spec)
        self.spec = self.metadata.spec
        self.dataset: Optional[Dataset] = None
        self.layout: Optional[DatasetLayout] = None
        self.read_meter = ThroughputMeter(cluster.env, name="octopus.reads")
        self.read_latency = Tally("octopus.read_latency")

    # -- mount ----------------------------------------------------------------
    def mount(self, dataset: Dataset, interleaved: bool = False) -> DatasetLayout:
        """Distribute ``dataset`` over all nodes and register metadata.

        Untimed (mount cost is not part of any figure); one shard per
        node, data packed on each node's first device.
        """
        layout = DatasetLayout(dataset, num_shards=len(self.cluster),
                               interleaved=interleaved)
        for i in range(dataset.num_samples):
            loc = layout.location(i)
            self.metadata.insert(
                FileMeta(
                    path=dataset.sample_name(i),
                    data_node=loc.shard,
                    offset=loc.offset,
                    length=loc.length,
                )
            )
        self.dataset = dataset
        self.layout = layout
        return layout

    def _require_mounted(self) -> None:
        if self.dataset is None:
            raise NotMounted("OctopusFS.mount() has not been called")

    # -- reads ----------------------------------------------------------------
    def lookup(
        self, client_rank: int, sample_index: int
    ) -> Generator[Event, Any, FileMeta]:
        """Timed metadata lookup of one sample."""
        self._require_mounted()
        path = self.dataset.sample_name(sample_index)
        meta = yield from self.metadata.lookup(client_rank, path)
        return meta

    def read_sample(
        self, client_rank: int, sample_index: int
    ) -> Generator[Event, Any, int]:
        """Synchronous full-sample read from ``client_rank``."""
        t0 = self.env.now
        meta = yield from self.lookup(client_rank, sample_index)
        yield from self._read_data(client_rank, meta)
        self.read_meter.record(nbytes=meta.length)
        self.read_latency.observe(self.env.now - t0)
        return meta.length

    def _read_data(
        self, client_rank: int, meta: FileMeta
    ) -> Generator[Event, Any, None]:
        """One-sided RDMA data read with the emulated-NVMe delay.

        Octopus keeps data in (persistent) memory; the paper injects a
        delay on each access so the memory behaves like an NVMe device.
        The payload itself streams at fabric speed through the data
        node's NIC — which is where multi-client contention shows up.
        """
        yield self.env.timeout(self.spec.client_overhead)
        data_node = self.cluster.node(meta.data_node)
        yield self.env.timeout(self.spec.emulated_nvme_delay)
        offset, nbytes = aligned_span(meta.offset, meta.length)
        # RDMA the payload back (no fabric cost when the data is local).
        client = self.cluster.node(client_rank).name
        yield from self.cluster.fabric.rdma_read(client, data_node.name, nbytes)

    def read_batch(
        self, client_rank: int, sample_indices: np.ndarray | list[int]
    ) -> Generator[Event, Any, int]:
        """Sequential batch read — Octopus has no batching optimization,
        so a mini-batch is simply one synchronous read after another."""
        total = 0
        for index in sample_indices:
            total += yield from self.read_sample(client_rank, int(index))
        return total

    def __repr__(self) -> str:
        state = "mounted" if self.dataset is not None else "unmounted"
        return f"<OctopusFS over {len(self.cluster)} nodes ({state})>"
