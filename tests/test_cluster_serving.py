"""Replicated cluster serving tier: placement, routing, failover.

Covers the tentpole surfaces (ShardMap placement, ClusterState address
translation, FrontEndBalancer routing, NodeReadCache, the end-to-end
crash/rejoin failover gates) plus the satellite edge cases: ChunkLedger
reclaim at exactly-full quota, the oversized-span escape under
concurrent reclaim pressure, and rejoin-from-empty-ledger.
"""

import hashlib

import numpy as np
import pytest

from repro.bench.workloads import cluster_tenants, dlfs_cluster
from repro.cluster import (
    Cluster,
    ClusterSpec,
    ClusterState,
    FrontEndBalancer,
    NodeReadCache,
    ShardMap,
    rendezvous_order,
)
from repro.core import DLFS, DLFSConfig
from repro.data import Dataset
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.hw import KB, Testbed
from repro.sim import Environment
from repro.tenancy import CachePartition, TenantSpec


# ---------------------------------------------------------------------------
# Rendezvous placement
# ---------------------------------------------------------------------------

class TestShardMap:
    def test_replicas_distinct_and_bounded(self):
        m = ShardMap(num_shards=16, nodes=range(8), replicas=3)
        for s in range(16):
            reps = m.replicas_of(s)
            assert len(reps) == 3
            assert len(set(reps)) == 3
            assert m.primary(s) == reps[0]

    def test_anchor_pins_primary(self):
        lanes = list(range(6))
        m = ShardMap(num_shards=6, nodes=lanes, replicas=2, anchors=lanes)
        for s in range(6):
            assert m.primary(s) == s

    def test_standby_outside_replica_set(self):
        m = ShardMap(num_shards=8, nodes=range(4), replicas=2)
        for s in range(8):
            standby = m.standby(s)
            assert standby is not None
            assert standby not in m.replicas_of(s)

    def test_standby_exhausted_when_all_nodes_replicate(self):
        m = ShardMap(num_shards=4, nodes=range(2), replicas=2)
        assert m.standby(0) is None

    def test_consistency_under_node_removal(self):
        """Removing a node only disturbs shards that ranked it."""
        before = ShardMap(num_shards=32, nodes=range(8), replicas=2)
        after = ShardMap(num_shards=32, nodes=range(7), replicas=2)
        for s in range(32):
            if 7 not in before.replicas_of(s):
                assert after.replicas_of(s) == before.replicas_of(s)

    def test_rendezvous_order_is_stable_permutation(self):
        order = rendezvous_order("shard:3", range(8))
        assert sorted(order) == list(range(8))
        assert order == rendezvous_order("shard:3", range(8))

    def test_shards_on_inverts_replicas_of(self):
        m = ShardMap(num_shards=12, nodes=range(5), replicas=2)
        for node in range(5):
            for s in m.shards_on(node):
                assert node in m.replicas_of(s)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardMap(num_shards=0, nodes=range(2))
        with pytest.raises(ConfigError):
            ShardMap(num_shards=2, nodes=())
        with pytest.raises(ConfigError):
            ShardMap(num_shards=2, nodes=(0, 0))
        with pytest.raises(ConfigError):
            ShardMap(num_shards=2, nodes=range(2), replicas=3)
        with pytest.raises(ConfigError):
            ShardMap(num_shards=2, nodes=range(2), anchors=(0,))
        with pytest.raises(ConfigError):
            ShardMap(num_shards=2, nodes=range(2), anchors=(0, 9))


# ---------------------------------------------------------------------------
# Cluster state: address translation, liveness, grafting
# ---------------------------------------------------------------------------

class _FakeLayout:
    """Just enough of DatasetLayout for ClusterState: per-shard sizes."""

    def __init__(self, shard_bytes, base_offset=4096):
        self._bytes = shard_bytes
        self.base_offset = base_offset

    def shard_bytes(self, shard):
        return self._bytes[shard]


def _state(num_shards=4, nodes=4, replicas=2, spec=None, shard_kb=64):
    lanes = list(range(nodes))
    m = ShardMap(
        num_shards=num_shards, nodes=lanes, replicas=replicas, anchors=lanes
    ) if num_shards == nodes else ShardMap(
        num_shards=num_shards, nodes=lanes, replicas=replicas
    )
    layout = _FakeLayout([shard_kb * KB] * num_shards)
    return ClusterState(m, layout, spec or ClusterSpec(replicas=replicas))


class TestClusterState:
    def test_regions_on_a_lane_never_overlap(self):
        state = _state()
        for lane in state.lanes:
            regions = sorted(
                (base, base + state._stride(s))
                for (s, l), base in state._base.items()
                if l == lane
            )
            for (_, end_a), (start_b, _) in zip(regions, regions[1:]):
                assert end_a <= start_b

    def test_delta_translates_layout_to_device_offset(self):
        state = _state()
        for (s, lane), base in state._base.items():
            off = state.layout.base_offset + 100
            assert off + state.delta(s, lane) == base + 100

    def test_alive_replicas_tracks_liveness(self):
        state = _state()
        s = 0
        full = state.alive_replicas(s)
        assert full == list(state.shard_map.replicas_of(s))
        state.mark_dead(full[0])
        assert state.alive_replicas(s) == full[1:]
        state.mark_alive(full[0])
        assert state.alive_replicas(s) == full

    def test_graft_and_standby_promotion(self):
        state = _state()
        s = 0
        standby = state.shard_map.standby(s)
        assert standby is not None
        end_before = state._devend[standby]
        base = state.graft(s, standby)
        assert base == end_before
        assert state.has_replica(s, standby)
        # Grafted but not yet promoted: not routable.
        assert standby not in state.alive_replicas(s)
        state.promote_standby(s, standby)
        assert state.alive_replicas(s)[-1] == standby
        # A replica rejoining retires the graft from routing.
        state.retire_standbys(state.shard_map.primary(s))
        assert standby not in state.alive_replicas(s)


# ---------------------------------------------------------------------------
# Front-end balancer
# ---------------------------------------------------------------------------

class _FakeFetch:
    def __init__(self, shard, offset=4096, nbytes=4096):
        self.shard = shard
        self.offset = offset
        self.nbytes = nbytes
        self.lane = None


class TestFrontEndBalancer:
    def test_route_least_loaded_with_lane_tiebreak(self):
        state = _state()
        fe = FrontEndBalancer(state)
        s = 0
        reps = state.shard_map.replicas_of(s)
        f1 = _FakeFetch(s)
        f1.lane = fe.route(f1)
        assert f1.lane == min(reps)  # all loads equal: lowest lane id
        f2 = _FakeFetch(s)
        f2.lane = fe.route(f2)
        assert f2.lane == [l for l in sorted(reps) if l != f1.lane][0]
        fe.fetch_done(f1)
        assert fe.loads[f1.lane] == 0

    def test_route_skips_dead_lane_and_reroute_fails_over(self):
        state = _state()
        fe = FrontEndBalancer(state)
        s = 0
        reps = list(state.shard_map.replicas_of(s))
        f = _FakeFetch(s)
        f.lane = fe.route(f)
        dead = f.lane
        fe.mark_dead(dead)
        assert fe.reroute(f)
        assert f.lane in reps and f.lane != dead
        assert fe.failovers == 1
        g = _FakeFetch(s)
        g.lane = fe.route(g)
        assert g.lane != dead

    def test_all_replicas_dead_parks_on_primary(self):
        state = _state()
        fe = FrontEndBalancer(state)
        s = 0
        for lane in state.shard_map.replicas_of(s):
            fe.mark_dead(lane)
        f = _FakeFetch(s)
        f.lane = fe.route(f)
        assert f.lane == state.shard_map.primary(s)
        assert not fe.reroute(f)  # nowhere to go

    def test_cache_aware_routing_prefers_resident_replica(self):
        state = _state(spec=ClusterSpec(replicas=2, read_cache_chunks=4))
        s = 0
        reps = state.shard_map.replicas_of(s)
        warm = max(reps)  # would lose the lane-id tiebreak if cold
        for lane in reps:
            state.read_caches[lane] = NodeReadCache(
                f"rc{lane}", capacity_chunks=4, chunk_size=256 * KB
            )
        fe = FrontEndBalancer(state)
        f = _FakeFetch(s, offset=8192, nbytes=4096)
        dev_off = f.offset + state.delta(s, warm)
        state.read_caches[warm].insert(dev_off, 4096)
        f.lane = fe.route(f)
        assert f.lane == warm
        assert fe.cache_routed == 1


# ---------------------------------------------------------------------------
# Node read cache (crash drops it; rejoin starts from an empty ledger)
# ---------------------------------------------------------------------------

class TestNodeReadCache:
    def test_lru_eviction_and_ledger_accounting(self):
        rc = NodeReadCache("rc", capacity_chunks=2, chunk_size=KB)
        assert rc.insert(0, KB) and rc.insert(KB, KB)
        assert rc.used_chunks == 2
        assert rc.lookup(0, KB)  # bumps LRU: (KB, KB) is now oldest
        assert rc.insert(2 * KB, KB)
        assert rc.evictions == 1
        assert not rc.peek(KB, KB)  # the bumped-past entry was evicted
        assert rc.peek(0, KB)
        assert rc.used_chunks == 2

    def test_oversized_span_served_uncached(self):
        rc = NodeReadCache("rc", capacity_chunks=2, chunk_size=KB)
        assert not rc.insert(0, 3 * KB)
        assert rc.used_chunks == 0

    def test_crash_empties_ledger_and_keeps_journal(self):
        """Satellite: rejoin starts from an empty ledger, then re-warms."""
        rc = NodeReadCache("rc", capacity_chunks=4, chunk_size=KB)
        rc.insert(0, KB)
        rc.insert(KB, 2 * KB)
        assert rc.used_chunks == 3
        rc.crash()
        assert rc.used_chunks == 0  # ledger fully uncharged
        assert rc.ledger.as_dict()["rc"]["used"] == 0
        assert not rc.peek(0, KB)
        assert rc.journal == ((0, KB), (KB, 2 * KB))
        # Rejoin-from-empty-ledger: the re-warm replay recharges cleanly.
        for offset, nbytes in rc.journal:
            assert rc.insert(offset, nbytes)
        assert rc.used_chunks == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            NodeReadCache("rc", capacity_chunks=0, chunk_size=KB)
        with pytest.raises(ConfigError):
            NodeReadCache("rc", capacity_chunks=1, chunk_size=0)


# ---------------------------------------------------------------------------
# Satellite: ChunkLedger reclaim edge cases (via CachePartition)
# ---------------------------------------------------------------------------

class _FakeCache:
    """Just enough of SampleCache for CachePartition: clean-slot LRU."""

    def __init__(self):
        self.clean = []
        self.on_free = None
        self.evictions = 0

    def clean_keys(self):
        return tuple(self.clean)

    def evict(self, key):
        self.clean.remove(key)
        self.evictions += 1
        self.on_free(key)


class TestReclaimEdgeCases:
    def test_quota_exactly_full_admits_via_exact_reclaim(self):
        """used == quota exactly: denied cold, admitted once the
        reservation can reclaim exactly the needed chunks."""
        cache = _FakeCache()
        part = CachePartition((TenantSpec(name="a", cache_share=0.5),))
        part.attach(cache, 8)  # quota = 4
        part.reserve("a", "k1", 2)
        part.reserve("a", "k2", 2)
        assert part.ledger.used("a") == part.ledger.quota("a")
        assert not part.can_admit("a", 2)
        cache.clean.append("k2")
        assert part.can_admit("a", 2)
        part.reserve("a", "k3", 2)
        assert cache.evictions == 1
        # Still exactly full, never over.
        assert part.ledger.used("a") == 4

    def test_oversized_span_escape_under_concurrent_reclaim(self):
        """A span bigger than the quota must drain *all* the tenant's
        clean slots before charging, and never double-evicts when the
        reservation loop and the oversized limit interact."""
        cache = _FakeCache()
        part = CachePartition((TenantSpec(name="a", cache_share=0.25),))
        part.attach(cache, 8)  # quota = 2
        part.reserve("a", "k1", 1)
        part.reserve("a", "k2", 1)
        cache.clean.extend(["k1", "k2"])
        # Oversized (5 > quota 2) and reclaimable-to-zero: admissible.
        assert part.can_admit("a", 5)
        part.reserve("a", "big", 5)
        # Both clean slots were reclaimed; only the big span is charged.
        assert cache.evictions == 2
        assert part.ledger.used("a") == 5
        # While the oversized span is resident nothing else fits ...
        assert not part.can_admit("a", 1)
        # ... and freeing it returns the ledger to exactly zero.
        part.on_free("big")
        assert part.ledger.used("a") == 0

    def test_oversized_span_denied_with_unreclaimable_residue(self):
        cache = _FakeCache()
        part = CachePartition((TenantSpec(name="a", cache_share=0.25),))
        part.attach(cache, 8)  # quota = 2
        part.reserve("a", "dirty", 1)  # referenced: not in clean_keys
        assert not part.can_admit("a", 5)
        assert part.denials == 1


# ---------------------------------------------------------------------------
# Config gates
# ---------------------------------------------------------------------------

def _mini_cluster(env, num_storage=2, devices_per_storage=1):
    cluster = Cluster(
        env, Testbed.paper_emulated(),
        num_nodes=1 + num_storage, devices_per_node=0,
    )
    placement = []
    for d in range(num_storage):
        node = cluster.node(1 + d)
        for i in range(devices_per_storage):
            node.add_device()
            placement.append((node.index, i))
    return cluster, placement


class TestConfigGates:
    def test_cluster_spec_validation(self):
        with pytest.raises(ConfigError):
            ClusterSpec(replicas=0).validate()
        with pytest.raises(ConfigError):
            ClusterSpec(hedge_delay=-1).validate()
        with pytest.raises(ConfigError):
            ClusterSpec(detect_delay=-1).validate()
        with pytest.raises(ConfigError):
            ClusterSpec(read_cache_chunks=-1).validate()
        with pytest.raises(ConfigError):
            ClusterSpec(handoff_chunk_bytes=100).validate()
        assert ClusterSpec(replicas=1, balancer=False).is_flat
        assert not ClusterSpec(replicas=2).is_flat

    def test_tenancy_sfq_and_cluster_mutually_exclusive(self):
        config = DLFSConfig(
            tenants=(TenantSpec(name="a"),), cluster=ClusterSpec(replicas=2)
        )
        with pytest.raises(ConfigError, match="mutually exclusive"):
            config.validate()
        # A flat spec is the plain datapath: tenancy stays allowed.
        DLFSConfig(
            tenants=(TenantSpec(name="a"),),
            cluster=ClusterSpec(replicas=1, balancer=False),
        ).validate()

    def test_node_crashes_require_cluster_spec(self):
        env = Environment()
        cluster, placement = _mini_cluster(env)
        ds = Dataset.fixed("gates", 64, 4 * KB, seed=1)
        config = DLFSConfig(
            batching="sample",
            fault_plan=FaultPlan(node_crashes=((0, 0.001, 0.002),)),
        )
        with pytest.raises(ConfigError, match="config.cluster"):
            DLFS.mount(cluster, ds, config, placement=placement)

    def test_cluster_rejects_placement_reusing_a_node(self):
        env = Environment()
        cluster, placement = _mini_cluster(
            env, num_storage=1, devices_per_storage=2
        )
        ds = Dataset.fixed("gates", 64, 4 * KB, seed=1)
        config = DLFSConfig(
            batching="sample", cluster=ClusterSpec(replicas=2)
        )
        with pytest.raises(ConfigError, match="reuses a node"):
            DLFS.mount(cluster, ds, config, placement=placement)

    def test_crash_on_unknown_lane_rejected(self):
        with pytest.raises(ConfigError):
            dlfs_cluster(
                num_storage=2, num_clients=1, num_samples=256,
                horizon=0.002, node_crashes=((9, 0.001, None),),
            )


# ---------------------------------------------------------------------------
# End-to-end: failover, determinism, pay-for-use
# ---------------------------------------------------------------------------

def _digest(samples: np.ndarray) -> str:
    return hashlib.sha1(bytes(samples.tobytes())).hexdigest()


def _flat_run(cluster_spec):
    """One small read_batch-driven run; returns the bit-identity witness."""
    env = Environment()
    cluster, placement = _mini_cluster(env, num_storage=2)
    ds = Dataset.fixed("flatid", 256, 4 * KB, seed=11)
    config = DLFSConfig(batching="sample", cluster=cluster_spec)
    fs = DLFS.mount(cluster, ds, config, placement=placement)
    client = fs.client(rank=0, num_ranks=1, node=cluster.node(0))

    def app(env):
        yield from client.read_batch(list(range(128)))
        yield from client.shutdown()
        return env.now

    t = env.run(until=env.process(app(env)))
    return t, client.reactor.samples_delivered


class TestEndToEnd:
    def test_flat_spec_bit_identical_to_no_spec(self):
        """Pay-for-use: replicas=1 + no balancer is the exact flat path."""
        assert _flat_run(None) == _flat_run(
            ClusterSpec(replicas=1, balancer=False)
        )

    def test_crash_rejoin_loses_zero_samples(self):
        r = dlfs_cluster(
            num_storage=4, num_clients=1, replicas=2, num_samples=2048,
            horizon=0.01, node_crashes=((1, 0.004, 0.008),),
        )
        assert r.failed == 0
        assert r.delivered == len(r.samples_read)
        assert r.lifecycle["crashes"] == 1
        assert r.lifecycle["rejoins"] == 1
        assert r.recovery["failovers"] > 0
        assert r.recovery["node_down"] >= 1
        assert r.recovery["node_up"] >= 1
        assert r.balancer["failovers"] == r.recovery["failovers"]

    def test_crash_rejoin_is_deterministic(self):
        runs = [
            dlfs_cluster(
                num_storage=4, num_clients=1, replicas=2, num_samples=2048,
                horizon=0.01, node_crashes=((1, 0.004, 0.008),),
            )
            for _ in range(2)
        ]
        a, b = runs
        assert a.sim_time == b.sim_time
        assert _digest(a.samples_read) == _digest(b.samples_read)
        assert a.lifecycle == b.lifecycle
        assert a.recovery == b.recovery

    def test_permanent_crash_survives_with_replicas(self):
        r = dlfs_cluster(
            num_storage=4, num_clients=1, replicas=2, num_samples=2048,
            horizon=0.008, node_crashes=((2, 0.003, None),),
        )
        assert r.failed == 0
        assert r.lifecycle["rejoins"] == 0
        # The dead lane's shards were handed off to ring standbys.
        assert r.lifecycle["handoffs_started"] > 0
        assert r.lifecycle["handoffs_completed"] > 0

    def test_crash_during_handoff_aborts_the_graft(self):
        # Rejoin at 8 ms races the 1 MiB-chunk handoff copy and wins.
        r = dlfs_cluster(
            num_storage=4, num_clients=1, replicas=2, num_samples=2048,
            horizon=0.01, node_crashes=((1, 0.004, 0.008),),
        )
        assert r.lifecycle["handoffs_started"] > 0
        assert r.lifecycle["handoffs_aborted"] == r.lifecycle["handoffs_started"]
        assert r.lifecycle["handoffs_completed"] == 0

    def test_hedged_reads_fire_and_dedupe(self):
        r = dlfs_cluster(
            num_storage=4, num_clients=1, replicas=2, num_samples=2048,
            horizon=0.006, hedge_delay=200e-6,
        )
        assert r.failed == 0
        assert r.recovery.get("hedges_posted", 0) > 0

    def test_read_cache_warms_and_routes(self):
        # Two clients: each client's own sample cache absorbs its
        # repeats, so node-cache residency hits come from the *other*
        # client having warmed the span.
        r = dlfs_cluster(
            num_storage=4, num_clients=2, replicas=2, num_samples=1024,
            horizon=0.008, read_cache_chunks=256,
        )
        assert r.failed == 0
        assert r.balancer["cache_routed"] > 0

    def test_tenant_accounting_merged_across_clients(self):
        specs, _ = cluster_tenants(2048)
        r = dlfs_cluster(
            num_storage=4, num_clients=2, replicas=2, num_samples=2048,
            horizon=0.006,
        )
        names = [row["tenant"] for row in r.per_tenant]
        assert names == sorted(s.name for s in specs)
        assert sum(row["samples"] for row in r.per_tenant) == r.delivered
        assert all(row["p99"] >= row["p50"] > 0 for row in r.per_tenant)


# ---------------------------------------------------------------------------
# The GC-pin regression: wedged service must survive garbage collection
# ---------------------------------------------------------------------------

class TestBlackHolePinning:
    def test_wedge_events_are_pinned_on_the_target(self):
        """A black-holed service process suspends on an event that only
        the process references back — an unreachable cycle unless the
        target pins it.  GC closing the generator would run the client
        qpair's ``finally`` slot-reclaim and silently drop the request
        at nondeterministic times (the deadlock this PR debugged)."""
        import gc

        from repro.hw import Fabric, NetworkSpec, NVMeDevice, NVMeSpec
        from repro.spdk.target import NVMeoFTarget

        env = Environment()
        fabric = Fabric(env, NetworkSpec())
        fabric.attach("client")
        fabric.attach("server")
        device = NVMeDevice(env, NVMeSpec(), name="nvme0")
        target = NVMeoFTarget(env, "server", device, fabric)
        target.fail()
        env.process(target.serve_read("client", 0, 4096))
        env.run()  # queue drains; the wedged process never completes
        assert len(target._wedged) == 1
        before = target._wedged[0]
        gc.collect()
        # Still pinned and still pending after a full collection.
        assert target._wedged[0] is before
        assert not before.triggered
