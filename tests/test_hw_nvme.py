"""Unit tests for the NVMe device model: latency, IOPS, bandwidth envelope."""

import pytest

from repro.errors import ConfigError, HardwareError, QueueFullError
from repro.hw import KB, MB, USEC, NVMeDevice, NVMeSpec
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def dev(env):
    return NVMeDevice(env, NVMeSpec.intel_optane_480g(), name="d0")


def drain(env, cmds):
    """Run until all commands complete; returns them."""
    done = env.all_of([c.completion for c in cmds])
    env.run(until=done)
    return cmds


class TestSoloLatency:
    def test_4k_read_latency_matches_model(self, env, dev):
        spec = dev.spec
        cmd = dev.read(0, 4 * KB)
        env.run(until=cmd.completion)
        expected = spec.cmd_overhead + spec.read_latency + spec.transfer_time(4 * KB)
        assert cmd.latency == pytest.approx(expected)

    def test_4k_read_latency_is_order_10us(self, env, dev):
        cmd = dev.read(0, 4 * KB)
        env.run(until=cmd.completion)
        assert 5 * USEC < cmd.latency < 30 * USEC

    def test_large_read_latency_dominated_by_transfer(self, env, dev):
        cmd = dev.read(0, 16 * MB)
        env.run(until=cmd.completion)
        transfer = dev.spec.transfer_time(16 * MB)
        assert cmd.latency == pytest.approx(transfer, rel=0.02)

    def test_latency_recorded_in_tally(self, env, dev):
        drain(env, [dev.read(0, 4 * KB) for _ in range(5)])
        assert dev.latency.count == 5


class TestThroughputEnvelope:
    def test_small_command_iops_near_ceiling(self, env, dev):
        """Sustained 512 B reads with deep queue approach 1/cmd_overhead."""
        n = 2000
        drain(env, [dev.read(i * 512, 512) for i in range(n)])
        iops = n / env.now
        ceiling = 1.0 / dev.spec.cmd_overhead
        assert iops > 0.9 * ceiling
        assert iops <= ceiling * 1.01

    def test_large_command_bandwidth_near_device_limit(self, env, dev):
        n = 50
        drain(env, [dev.read(i * MB, 1 * MB) for i in range(n)])
        bw = n * MB / env.now
        assert bw > 0.9 * dev.spec.read_bandwidth
        assert bw <= dev.spec.read_bandwidth * 1.01

    def test_bandwidth_utilization_under_load(self, env, dev):
        drain(env, [dev.read(i * MB, 1 * MB) for i in range(20)])
        assert dev.bandwidth_utilization() > 0.8

    def test_read_meter_counts_bytes(self, env, dev):
        drain(env, [dev.read(i * 4096, 4 * KB) for i in range(3)])
        assert dev.read_meter.bytes == 3 * 4 * KB
        assert dev.read_meter.completions == 3

    def test_concurrent_commands_overlap_media_latency(self, env, dev):
        """Two queued 4K reads must finish well before 2x solo latency."""
        solo_env = Environment()
        solo_dev = NVMeDevice(solo_env, dev.spec)
        solo = solo_dev.read(0, 4 * KB)
        solo_env.run(until=solo.completion)

        drain(env, [dev.read(0, 4 * KB), dev.read(8192, 4 * KB)])
        assert env.now < 2 * solo.latency * 0.9


class TestWrites:
    def test_write_completes_and_meters(self, env, dev):
        cmd = dev.write(0, 128 * KB)
        env.run(until=cmd.completion)
        assert dev.write_meter.bytes == 128 * KB
        assert dev.read_meter.bytes == 0


class TestValidation:
    def test_bad_opcode(self, dev):
        with pytest.raises(HardwareError):
            dev.submit("trim", 0, 4096)

    def test_zero_size(self, dev):
        with pytest.raises(HardwareError):
            dev.read(0, 0)

    def test_beyond_capacity(self, env):
        dev = NVMeDevice(env, capacity=1 * MB)
        with pytest.raises(HardwareError):
            dev.read(1 * MB - 512, 4096)

    def test_unaligned_offset(self, dev):
        with pytest.raises(HardwareError):
            dev.read(100, 4096)

    def test_queue_full(self, env):
        spec = NVMeSpec(max_outstanding=4)
        dev = NVMeDevice(env, spec)
        for i in range(4):
            dev.read(i * 4096, 4 * KB)
        with pytest.raises(QueueFullError):
            dev.read(5 * 4096, 4 * KB)

    def test_outstanding_drains(self, env, dev):
        cmds = [dev.read(i * 4096, 4 * KB) for i in range(8)]
        assert dev.outstanding == 8
        drain(env, cmds)
        assert dev.outstanding == 0

    def test_nonpositive_capacity_rejected(self, env):
        with pytest.raises(ConfigError):
            NVMeDevice(env, capacity=0)

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            NVMeSpec(read_bandwidth=-1).validate()
        with pytest.raises(ConfigError):
            NVMeSpec(max_outstanding=0).validate()


class TestEmulatedSpec:
    def test_emulated_keeps_envelope(self):
        real, emu = NVMeSpec.intel_optane_480g(), NVMeSpec.emulated_ramdisk()
        assert emu.emulated and not real.emulated
        assert emu.read_bandwidth == real.read_bandwidth
        assert emu.read_latency == real.read_latency

    def test_emulated_device_repr(self, env):
        dev = NVMeDevice(env, NVMeSpec.emulated_ramdisk())
        assert "emulated" in repr(dev)
