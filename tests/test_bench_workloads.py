"""Unit tests for the benchmark workload drivers (small parameters)."""

import pytest

from repro.bench.workloads import (
    Result,
    dlfs_disaggregated,
    dlfs_lookup_time,
    dlfs_multi_node,
    dlfs_single_node,
    ext4_multi_node,
    ext4_open_time,
    ext4_single_node,
    ideal_disaggregated_throughput,
    octopus_lookup_time,
    octopus_multi_node,
    tf_ingest_throughput,
)
from repro.errors import ConfigError
from repro.hw import GB, KB


SMALL = dict(batches=6, warmup_batches=2)


class TestSingleNodeDrivers:
    def test_dlfs_returns_result(self):
        r = dlfs_single_node(4 * KB, **SMALL)
        assert isinstance(r, Result)
        assert r.sample_throughput > 0
        assert r.bandwidth == pytest.approx(r.sample_throughput * 4 * KB, rel=0.01)
        assert 0 < r.cpu_utilization <= 1.0

    def test_dlfs_modes_ordered(self):
        chunk = dlfs_single_node(512, mode="chunk", **SMALL).sample_throughput
        base = dlfs_single_node(512, mode="none", **SMALL).sample_throughput
        assert chunk > 2 * base

    def test_dlfs_deterministic(self):
        a = dlfs_single_node(4 * KB, **SMALL)
        b = dlfs_single_node(4 * KB, **SMALL)
        assert a.sample_throughput == b.sample_throughput

    def test_dlfs_multi_core(self):
        r = dlfs_single_node(4 * KB, cores=2, **SMALL)
        assert r.sample_throughput > 0

    def test_ext4_threads_scale(self):
        one = ext4_single_node(4 * KB, threads=1, reads_per_thread=60)
        four = ext4_single_node(4 * KB, threads=4, reads_per_thread=40)
        assert four.sample_throughput > 2 * one.sample_throughput

    def test_ext4_cold_slower_than_warm(self):
        warm = ext4_single_node(4 * KB, reads_per_thread=60, warm_metadata=True)
        cold = ext4_single_node(4 * KB, reads_per_thread=60, warm_metadata=False)
        assert cold.sample_throughput < warm.sample_throughput


class TestMultiNodeDrivers:
    def test_dlfs_multi_node_aggregates(self):
        r2 = dlfs_multi_node(2, 4 * KB, batches_per_node=6)
        r4 = dlfs_multi_node(4, 4 * KB, batches_per_node=6)
        assert r4.sample_throughput > 1.4 * r2.sample_throughput

    def test_ext4_multi_node(self):
        r = ext4_multi_node(2, 4 * KB, reads_per_node=60)
        assert r.sample_throughput > 0

    def test_octopus_multi_node(self):
        r = octopus_multi_node(2, 4 * KB, reads_per_node=50)
        assert r.sample_throughput > 0

    def test_system_ordering_holds_at_small_scale(self):
        dlfs = dlfs_multi_node(2, 512, batches_per_node=10).sample_throughput
        ext4 = ext4_multi_node(2, 512, reads_per_node=80).sample_throughput
        octo = octopus_multi_node(2, 512, reads_per_node=60).sample_throughput
        assert dlfs > ext4 > octo


class TestLookupDrivers:
    def test_lookup_time_positive_and_ordered(self):
        total = 40_000
        dlfs = dlfs_lookup_time(2, total_samples=total,
                                measured_lookups_per_node=200)
        ext4 = ext4_open_time(2, total_samples=total,
                              measured_opens_per_node=100)
        octo = octopus_lookup_time(2, total_samples=total,
                                   measured_lookups_per_node=100)
        assert 0 < dlfs < ext4 < octo

    def test_dlfs_lookup_scales_with_share(self):
        total = 40_000
        t2 = dlfs_lookup_time(2, total_samples=total,
                              measured_lookups_per_node=200)
        t8 = dlfs_lookup_time(8, total_samples=total,
                              measured_lookups_per_node=200)
        assert t2 / t8 == pytest.approx(4.0, rel=0.4)


class TestDisaggregation:
    def test_more_devices_help_many_clients(self):
        r1 = dlfs_disaggregated(1, 4, batches_per_client=6)
        r4 = dlfs_disaggregated(4, 4, batches_per_client=6)
        assert r4.sample_throughput > 1.5 * r1.sample_throughput

    def test_ideal_model(self):
        # Device-bound region.
        one = ideal_disaggregated_throughput(1, 1, 128 * KB)
        assert one == pytest.approx(2.4 * GB / (128 * KB))
        # Network-bound region with one client.
        many = ideal_disaggregated_throughput(16, 1, 128 * KB)
        assert many == pytest.approx(6.0 * GB / (128 * KB))
        # With 16 clients the devices bind again.
        assert ideal_disaggregated_throughput(16, 16, 128 * KB) == pytest.approx(
            16 * 2.4 * GB / (128 * KB)
        )


class TestTFIngest:
    @pytest.mark.parametrize("system", ["dlfs", "ext4", "octopus"])
    def test_each_system_runs(self, system):
        r = tf_ingest_throughput(system, 2, 4 * KB, batches_per_node=4)
        assert r.sample_throughput > 0

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigError):
            tf_ingest_throughput("zfs", 2, 4 * KB)
