"""Tests for batched-file layouts and mounting (paper §III-B1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.core import ChunkPlan, DLFS
from repro.data import (
    BatchedFileLayout,
    CIFARBatchFormat,
    Dataset,
    TFRecordFormat,
)
from repro.data.formats import TFRECORD_HEADER_BYTES
from repro.errors import ConfigError, DirectoryError, FileNotFound
from repro.hw import KB, Testbed
from repro.sim import Environment


def make_layout(n=1000, size=2 * KB, shards=2, per_file=256, order=None):
    ds = Dataset.fixed("tfds", n, size)
    files = TFRecordFormat(samples_per_file=per_file).pack(ds, order=order)
    return ds, files, BatchedFileLayout(ds, files, num_shards=shards)


class TestBatchedFileLayout:
    def test_every_sample_located(self):
        ds, files, layout = make_layout()
        for i in range(0, 1000, 97):
            loc = layout.location(i)
            assert loc.length == ds.sizes[i]
            assert 0 <= loc.shard < 2

    def test_offsets_respect_file_framing(self):
        ds, files, layout = make_layout(per_file=1000, shards=1)
        f = files[0]
        first = int(f.sample_indices[0])
        assert layout.location(first).offset == TFRECORD_HEADER_BYTES

    def test_files_round_robin_over_shards(self):
        ds, files, layout = make_layout(shards=2, per_file=250)
        assert layout.file_extent(0)[0] == 0
        assert layout.file_extent(1)[0] == 1
        assert layout.file_extent(2)[0] == 0

    def test_files_packed_contiguously_per_shard(self):
        ds, files, layout = make_layout(shards=2, per_file=250)
        s0, off0, len0 = layout.file_extent(0)
        s2, off2, _ = layout.file_extent(2)
        assert s0 == s2 == 0
        assert off2 == off0 + len0

    def test_shard_bytes_include_framing(self):
        ds, files, layout = make_layout(shards=1, per_file=1000)
        assert layout.shard_bytes(0) == files[0].file_bytes

    def test_file_of_sample(self):
        ds, files, layout = make_layout(per_file=250)
        sample = int(files[2].sample_indices[3])
        assert layout.file_of_sample(sample) == 2

    def test_shuffled_on_disk_order_supported(self):
        order = np.random.default_rng(1).permutation(1000)
        ds, files, layout = make_layout(order=order)
        covered = np.concatenate(
            [layout.shard_samples(s) for s in range(2)]
        )
        assert sorted(covered.tolist()) == list(range(1000))

    def test_validation(self):
        ds = Dataset.fixed("d", 100, 1000)
        files = TFRecordFormat(samples_per_file=50).pack(ds)
        with pytest.raises(ConfigError):
            BatchedFileLayout(ds, files, num_shards=3)  # only 2 files
        with pytest.raises(ConfigError):
            BatchedFileLayout(ds, files[:1], num_shards=1)  # partial cover
        with pytest.raises(ConfigError):
            BatchedFileLayout(ds, files, num_shards=1, base_offset=100)

    @given(
        n=st.integers(60, 400),
        per_file=st.integers(20, 120),
        shards=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_samples_never_overlap_within_shard(self, n, per_file, shards):
        ds = Dataset.fixed("d", n, 777)
        files = TFRecordFormat(samples_per_file=per_file).pack(ds)
        if shards > len(files):
            return
        layout = BatchedFileLayout(ds, files, num_shards=shards)
        for s in range(shards):
            spans = sorted(
                (layout.location(int(i)).offset, layout.location(int(i)).end)
                for i in layout.shard_samples(s)
            )
            for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
                assert a1 <= b0


class TestChunkPlanOverBatchedLayout:
    def test_members_sorted_by_offset(self):
        order = np.random.default_rng(2).permutation(1000)
        ds, files, layout = make_layout(order=order)
        plan = ChunkPlan(layout, 64 * KB)
        for g in range(plan.num_chunks):
            members = plan.chunk_members[g]
            offs = layout.offsets[members]
            assert (np.diff(offs) > 0).all()

    def test_exact_cover_including_edges(self):
        ds, files, layout = make_layout()
        plan = ChunkPlan(layout, 64 * KB)
        interior = sum(len(plan.chunk_members[g]) for g in range(plan.num_chunks))
        assert interior + plan.num_edge_samples == 1000


class TestBatchedMount:
    def _mount(self, fmt=None, n=2000, size=2 * KB):
        env = Environment()
        cluster = Cluster(env, Testbed.paper_emulated(), num_nodes=2)
        ds = Dataset.fixed("tfds", n, size)
        fmt = fmt or TFRecordFormat(samples_per_file=512)
        files = fmt.pack(ds)
        fs = DLFS.mount_batched(cluster, ds, files)
        return env, cluster, ds, files, fs

    def test_file_entries_registered(self):
        env, cluster, ds, files, fs = self._mount()
        assert fs.directory.num_file_entries == len(files)

    def test_lookup_file_returns_whole_extent(self):
        env, cluster, ds, files, fs = self._mount()
        res = fs.directory.lookup_file(files[1].name)
        assert res.sample_index == -1
        assert res.length == files[1].file_bytes
        assert res.visits >= 1

    def test_lookup_missing_file(self):
        env, cluster, ds, files, fs = self._mount()
        with pytest.raises(FileNotFound):
            fs.directory.lookup_file("ghost.tfrecord")

    def test_duplicate_file_entry_rejected(self):
        env, cluster, ds, files, fs = self._mount()
        with pytest.raises(DirectoryError):
            fs.directory.register_file_entry(files[0].name, 0, 0, 10)

    def test_sample_lookup_unaffected_by_file_entries(self):
        env, cluster, ds, files, fs = self._mount()
        res = fs.directory.lookup_name(ds.sample_name(123))
        assert res.sample_index == 123

    def test_samples_readable_through_directory(self):
        """Direct access to any sample in a TFRecord file."""
        env, cluster, ds, files, fs = self._mount()
        client = fs.client(rank=0, num_ranks=1)

        def app(env):
            f = yield from client.open(ds.sample_name(77))
            n = yield from client.read(f)
            return n

        assert env.run(until=env.process(app(env))) == 2 * KB

    def test_bread_epoch_covers_everything(self):
        env, cluster, ds, files, fs = self._mount(n=1000)
        client = fs.client(rank=0, num_ranks=1)
        client.sequence(seed=4)

        def app(env):
            seen = []
            while client.epoch_remaining:
                batch = yield from client.bread(64)
                seen.extend(batch.tolist())
            return seen

        seen = env.run(until=env.process(app(env)))
        assert sorted(seen) == list(range(1000))

    def test_cifar_format_mount(self):
        env, cluster, ds, files, fs = self._mount(
            fmt=CIFARBatchFormat(record_bytes=2 * KB, samples_per_file=512),
        )
        assert fs.directory.num_file_entries == len(files)
