"""Multi-tenant serving: admission, fair scheduling, partitioning, traffic.

Covers the tenancy subsystem's acceptance properties:

* token-bucket conformance (unit and end-to-end, with rejection
  accounting);
* SFQ weighted fairness — exact at the unit level, within 5% of the
  configured weights end to end under saturation;
* priority classes with bounded bypass (no starvation);
* per-tenant qpair-depth caps and cache quotas with self-only reclaim;
* noisy-neighbor isolation (victim p99 within 2x of solo);
* traffic-engine determinism across runs, under the SimSanitizer's
  same-timestamp arrival shuffles, and across the fast-path kernels.
"""

import hashlib
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.perfcheck import run_perfcheck
from repro.analysis.sanitizer import run_sanitizer
from repro.bench.workloads import demo_tenants, dlfs_tenancy, fair_tenants
from repro.cluster import Cluster
from repro.core import DLFS, DLFSConfig
from repro.data import Dataset
from repro.errors import AllocationError, ConfigError
from repro.faults import FaultPlan
from repro.hw import Testbed
from repro.hw.memory import ChunkLedger
from repro.sim import Environment
from repro.tenancy import (
    CachePartition,
    FairScheduler,
    TenantSpec,
    TenantWorkload,
    TokenBucket,
)


def _fetch(tenant, nbytes, key=None):
    return SimpleNamespace(tenant=tenant, nbytes=nbytes, key=key)


def _part(tenant, nbytes):
    return SimpleNamespace(tag=SimpleNamespace(tenant=tenant), nbytes=nbytes)


def _row(report_rows, tenant):
    for row in report_rows:
        if row["tenant"] == tenant:
            return row
    raise AssertionError(f"no row for {tenant!r}")


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_starts_full_and_caps_at_burst(self):
        b = TokenBucket(rate=1000.0, burst=10.0)
        assert b.try_take(10, 0.0)
        assert not b.try_take(1, 0.0)
        # A long quiet period refills to burst, never beyond.
        assert b.try_take(10, 100.0)
        assert not b.try_take(1, 100.0)

    def test_lazy_refill_is_exact(self):
        b = TokenBucket(rate=1000.0, burst=10.0)
        assert b.try_take(10, 0.0)
        assert b.eta(5, 0.0) == pytest.approx(5e-3)
        assert not b.try_take(5, 4e-3)  # only 4 tokens so far
        assert b.try_take(5, 5.001e-3)

    def test_conformance_bound_end_to_end(self):
        # Offered 16,000 samples/s against a 4,000/s bucket: the
        # delivered total can never exceed burst + rate * sim_time.
        spec = TenantSpec(name="limited", rate=4000.0, burst=32.0,
                          max_queued_jobs=256)
        wl = TenantWorkload(name="limited", kind="poisson", rate=2000.0,
                            batch=8, sample_lo=0, sample_hi=1024)
        r = dlfs_tenancy(specs=(spec,), workloads=(wl,),
                         horizon=0.02, warmup=0.004)
        row = _row(r.per_tenant, "limited")
        assert row["samples"] == r.delivered > 0
        assert r.delivered <= 32.0 + 4000.0 * r.sim_time + wl.batch

    def test_queue_overflow_rejects_with_accounting(self):
        spec = TenantSpec(name="burst", rate=1000.0, burst=8.0,
                          max_queued_jobs=2)
        wl = TenantWorkload(name="burst", kind="poisson", rate=5000.0,
                            batch=8, sample_lo=0, sample_hi=1024)
        r = dlfs_tenancy(specs=(spec,), workloads=(wl,),
                         horizon=0.01, warmup=0.002)
        assert r.rejected_jobs > 0
        row = _row(r.per_tenant, "burst")
        assert row["rejected"] == r.rejected_jobs
        # Rejected jobs are not in the witness; completed ones all are.
        assert len(r.samples_read) == r.delivered
        assert r.failed == 0


# ---------------------------------------------------------------------------
# Fair scheduler (unit)
# ---------------------------------------------------------------------------

class TestFairScheduler:
    def test_backlogged_service_tracks_weights_exactly(self):
        sched = FairScheduler(
            (TenantSpec(name="a", weight=1.0), TenantSpec(name="b", weight=2.0)),
            queue_depth=64,
        )
        for _ in range(90):
            sched.enqueue_part_charged(0, _part("a", 1000))
            sched.enqueue_part_charged(0, _part("b", 1000))
        served = {"a": 0, "b": 0}
        for _ in range(60):
            entry = sched.select_part(0)
            sched.take(0, entry, "part")
            served[entry.tenant] += 1
        assert served == {"a": 20, "b": 40}
        assert sched.bytes_served["b"] == 2 * sched.bytes_served["a"]

    def test_priority_served_first_with_bounded_bypass(self):
        sched = FairScheduler(
            (
                TenantSpec(name="low", weight=1.0, priority=2),
                TenantSpec(name="high", weight=1.0, priority=1),
            ),
            queue_depth=64,
            max_bypass=3,
        )
        # The low-priority entry is the SFQ leader (enqueued first, so
        # the smallest start tag) but keeps being passed over ...
        sched.enqueue_part_charged(0, _part("low", 1000))
        for _ in range(10):
            sched.enqueue_part_charged(0, _part("high", 1000))
        order = []
        for _ in range(5):
            entry = sched.select_part(0)
            sched.take(0, entry, "part")
            order.append(entry.tenant)
        # ... until max_bypass forces it through (anti-starvation).
        assert order[:3] == ["high", "high", "high"]
        assert "low" in order
        assert order.index("low") == 3
        assert sched.forced_serves >= 1
        assert sched.preemptions >= 3

    def test_qpair_share_caps_inflight(self):
        sched = FairScheduler(
            (TenantSpec(name="a", weight=1.0, qpair_share=0.25),),
            queue_depth=8,
        )
        for _ in range(5):
            sched.enqueue_part_charged(0, _part("a", 1000))
        # cap = max(1, int(8 * 0.25)) = 2 concurrent posts.
        for _ in range(2):
            entry = sched.select_part(0)
            assert entry is not None
            sched.take(0, entry, "part")
            sched.on_posted("a", 0)
        assert sched.select_part(0) is None
        sched.on_complete("a", 0)
        assert sched.select_part(0) is not None

    def test_fetch_gate_filters_candidates(self):
        sched = FairScheduler((TenantSpec(name="a"), TenantSpec(name="b")),
                              queue_depth=8)
        sched.enqueue_fetch(0, _fetch("a", 1000, key="ka"))
        sched.enqueue_fetch(0, _fetch("b", 1000, key="kb"))
        sched.fetch_gate = lambda tenant, fetch: tenant != "a"
        entry = sched.select_fetch(0)
        assert entry.tenant == "b"

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            TenantSpec(name="").validate()
        with pytest.raises(ConfigError):
            TenantSpec(name="x", weight=0.0).validate()
        with pytest.raises(ConfigError):
            TenantSpec(name="x", qpair_share=0.0).validate()
        with pytest.raises(ConfigError):
            TenantSpec(name="x", cache_share=1.5).validate()
        with pytest.raises(ConfigError):
            FairScheduler((TenantSpec(name="x"), TenantSpec(name="x")), 8)


# ---------------------------------------------------------------------------
# Cache partitioning
# ---------------------------------------------------------------------------

class _FakeCache:
    """Just enough of SampleCache for CachePartition: clean-slot LRU."""

    def __init__(self):
        self.clean = []
        self.on_free = None
        self.evictions = 0

    def clean_keys(self):
        return tuple(self.clean)

    def evict(self, key):
        self.clean.remove(key)
        self.evictions += 1
        self.on_free(key)


class TestCachePartition:
    def test_chunk_ledger_accounting(self):
        ledger = ChunkLedger()
        ledger.set_quota("a", 4)
        assert ledger.quota("a") == 4
        assert ledger.quota("unknown") == 0  # 0 = unlimited
        ledger.charge("a", 3)
        assert ledger.used("a") == 3
        ledger.uncharge("a", 2)
        assert ledger.used("a") == 1
        with pytest.raises(AllocationError):
            ledger.uncharge("a", 2)

    def test_quota_denial_and_self_reclaim(self):
        cache = _FakeCache()
        part = CachePartition((TenantSpec(name="a", cache_share=0.5),))
        part.attach(cache, 8)  # quota = 4 chunks
        part.reserve("a", "k1", 2)
        part.reserve("a", "k2", 2)
        # At quota with nothing clean: denied.
        assert not part.can_admit("a", 1)
        assert part.denials == 1
        # A clean slot of its own makes the same request admissible ...
        cache.clean.append("k1")
        assert part.can_admit("a", 2)
        part.reserve("a", "k3", 2)  # ... by evicting k1 (self-reclaim)
        assert cache.evictions == 1
        assert part.reclaims == 1
        assert part.ledger.used("a") == 4

    def test_unlimited_and_oversized_escape_hatch(self):
        cache = _FakeCache()
        part = CachePartition((TenantSpec(name="a", cache_share=0.25),))
        part.attach(cache, 8)  # quota = 2
        # Tenants without a share are unlimited.
        assert part.can_admit("other", 100)
        # A span bigger than the whole quota admits solo (no wedge) ...
        assert part.can_admit("a", 5)
        part.reserve("a", "big", 5)
        assert part.ledger.used("a") == 5
        # ... but blocks everything else until it is freed.
        assert not part.can_admit("a", 1)
        part.on_free("big")
        assert part.ledger.used("a") == 0
        assert part.can_admit("a", 1)

    def test_cancel_undoes_reservation(self):
        cache = _FakeCache()
        part = CachePartition((TenantSpec(name="a", cache_share=0.5),))
        part.attach(cache, 8)
        part.reserve("a", "k", 3)
        part.cancel("k")
        assert part.ledger.used("a") == 0
        part.cancel("k")  # idempotent


# ---------------------------------------------------------------------------
# End-to-end: fairness, isolation, tenant faults, pay-for-use
# ---------------------------------------------------------------------------

class TestServing:
    def test_weighted_fairness_within_5_percent(self):
        specs, workloads = fair_tenants(weights=(1.0, 2.0, 4.0))
        r = dlfs_tenancy(specs=specs, workloads=workloads,
                         horizon=0.02, warmup=0.004)
        total_w = sum(s.weight for s in specs)
        for s in specs:
            want = s.weight / total_w
            got = r.service_shares[s.name]
            assert got == pytest.approx(want, rel=0.05), s.name

    def test_noisy_neighbor_isolation_p99_within_2x(self):
        specs = (
            TenantSpec(name="victim", weight=2.0),
            TenantSpec(name="noisy", weight=1.0, priority=2,
                       qpair_share=0.5, cache_share=0.25),
        )
        victim = TenantWorkload(name="victim", kind="train", batch=16,
                                concurrency=2, sample_lo=0, sample_hi=1024)
        noisy = TenantWorkload(name="noisy", kind="bursty", rate=2000.0,
                               batch=32, sample_lo=1024, sample_hi=3072)
        solo = dlfs_tenancy(specs=specs, workloads=(victim,),
                            horizon=0.02, warmup=0.004)
        duo = dlfs_tenancy(
            specs=specs, workloads=(victim, noisy),
            horizon=0.02, warmup=0.004,
            fault_plan=FaultPlan(seed=7, tenant_faults=(("noisy", 0.1),)),
        )
        p99_solo = _row(solo.window_rows, "victim")["p99"]
        p99_duo = _row(duo.window_rows, "victim")["p99"]
        assert p99_solo > 0
        assert p99_duo <= 2.0 * p99_solo

    def test_tenant_faults_stay_on_the_targeted_tenant(self):
        specs, workloads = demo_tenants()
        r = dlfs_tenancy(
            specs=specs, workloads=workloads, horizon=0.02, warmup=0.004,
            fault_plan=FaultPlan(seed=7, tenant_faults=(("scan", 0.9),)),
        )
        assert _row(r.per_tenant, "train_a")["failed"] == 0
        assert _row(r.per_tenant, "train_b")["failed"] == 0
        # At 90% per-delivery media errors the retry budget is overrun.
        assert _row(r.per_tenant, "scan")["failed"] > 0
        assert r.failed == _row(r.per_tenant, "scan")["failed"]

    def test_untagged_reads_coexist_with_tenants(self):
        # A plain bread() client on a tenancy-enabled mount rides the
        # UNTAGGED lane; nothing deadlocks or misaccounts.
        env = Environment()
        cluster = Cluster(env, Testbed.paper(), num_nodes=1,
                          devices_per_node=1)
        ds = Dataset.fixed("t", 512, 16 * 1024, seed=1)
        specs, _ = demo_tenants()
        fs = DLFS.mount(cluster, ds, DLFSConfig(batching="sample",
                                                tenants=specs))
        client = fs.client(rank=0, num_ranks=1)
        client.sequence(seed=3)

        def app(env):
            got = yield from client.bread(32)
            return got

        got = env.run(until=env.process(app(env)))
        assert len(got) == 32
        assert client.tenancy is not None
        assert client.tenancy.scheduler.bytes_served.get("_untagged", 0) > 0

    def test_tenancy_is_pay_for_use(self):
        env = Environment()
        cluster = Cluster(env, Testbed.paper(), num_nodes=1,
                          devices_per_node=1)
        ds = Dataset.fixed("t", 256, 16 * 1024, seed=1)
        fs = DLFS.mount(cluster, ds, DLFSConfig(batching="sample"))
        client = fs.client(rank=0, num_ranks=1)
        assert client.tenancy is None

    def test_config_rejects_duplicate_tenants(self):
        with pytest.raises(ConfigError):
            DLFSConfig(tenants=(TenantSpec(name="a"),
                                TenantSpec(name="a"))).validate()


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

def _digest(report):
    return hashlib.sha1(report.samples_read.tobytes()).hexdigest()


class TestDeterminism:
    def test_traffic_engine_identical_across_runs(self):
        a = dlfs_tenancy(horizon=0.02, warmup=0.004)
        b = dlfs_tenancy(horizon=0.02, warmup=0.004)
        assert a.sim_time == b.sim_time
        assert _digest(a) == _digest(b)
        assert a.window_rows == b.window_rows
        assert a.service_bytes == b.service_bytes

    def test_seed_changes_the_arrival_script(self):
        a = dlfs_tenancy(horizon=0.02, warmup=0.004, seed=1)
        b = dlfs_tenancy(horizon=0.02, warmup=0.004, seed=2)
        assert _digest(a) != _digest(b)

    def test_sanitizer_same_instant_arrivals_from_two_tenants(self):
        # Both tenants' first jobs arrive at the same simulated instant
        # (start_offset pins them); the sanitizer shuffles the engine's
        # same-timestamp tiebreaks and the witness must not move.
        specs = (TenantSpec(name="x", weight=1.0),
                 TenantSpec(name="y", weight=3.0))
        workloads = (
            TenantWorkload(name="x", kind="poisson", rate=8000.0, batch=8,
                           sample_lo=0, sample_hi=1024, start_offset=5e-4),
            TenantWorkload(name="y", kind="poisson", rate=8000.0, batch=8,
                           sample_lo=1024, sample_hi=2048, start_offset=5e-4),
        )
        report = run_sanitizer(
            workload=lambda: dlfs_tenancy(
                specs=specs, workloads=workloads, horizon=0.01, warmup=0.002,
            ),
            runs=3,
        )
        assert report.ok, report.render()

    def test_perfcheck_tenancy_bit_identity(self):
        report = run_perfcheck(workloads={
            "tenancy": lambda: dlfs_tenancy(
                horizon=0.01, warmup=0.002, metrics=True,
            ),
        })
        assert report.ok, report.render()
